"""A2: cost-aware Greedy-Dual-Size vs. baseline replacement policies.

§3: "A cache may wish to tailor its replacement policy to favor documents
with numerous or complicated active properties to increase the benefit
that caching provides"; §4 says the implementation runs Greedy-Dual-Size
over the property-supplied replacement costs.

The workload is designed so that cost-awareness matters: a Zipf trace
over a corpus whose documents differ wildly in refetch cost — repository
mix (memory-fast NFS vs. slow www) *and* property chains (an expensive
translation property on a third of the documents).  Under a cache far
smaller than the corpus, a cost-blind policy evicts expensive documents
as readily as cheap ones; GDS keeps the expensive ones and wins on total
latency even where hit *ratios* are close.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench.harness import format_table
from repro.cache.manager import DocumentCache
from repro.cache.replacement import make_policy
from repro.placeless.kernel import PlacelessKernel
from repro.properties.spellcheck import SpellingCorrectorProperty
from repro.properties.translate import TranslationProperty
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.trace import zipf_indices

__all__ = [
    "PolicyResult",
    "run_replacement",
    "run_capacity_sweep",
    "format_capacity_sweep",
    "main",
    "DEFAULT_POLICIES",
]

DEFAULT_POLICIES = (
    "gds",
    "gdsf",
    "gds-costblind",
    "gd",
    "lru",
    "lfu",
    "fifo",
    "size",
    "random",
)


@dataclass
class PolicyResult:
    """Metrics of one policy run."""

    policy: str
    hit_ratio: float
    total_latency_ms: float
    mean_latency_ms: float
    evictions: int
    latency_saved_vs_nocache_ms: float


def _build_world(n_documents: int, seed: int):
    """Corpus + heterogeneous chains, rebuilt identically per policy."""
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel,
        owner,
        CorpusSpec(n_documents=n_documents, ttl_ms=3_600_000.0, seed=seed),
    )
    rng = random.Random(seed + 1)
    for document in corpus:
        roll = rng.random()
        if roll < 0.33:
            document.reference.attach(TranslationProperty())
            document.property_names.append("translate-to-french")
        elif roll < 0.53:
            document.reference.attach(SpellingCorrectorProperty())
            document.property_names.append("spell-correct")
    return kernel, corpus


def run_replacement(
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    n_documents: int = 150,
    n_reads: int = 3000,
    capacity_fraction: float = 0.10,
    zipf_alpha: float = 0.8,
    seed: int = 11,
) -> list[PolicyResult]:
    """Replay the identical trace under each policy."""
    # Size the cache from one throwaway world so every run matches.
    _, sizing_corpus = _build_world(n_documents, seed)
    total_bytes = sum(d.size_bytes for d in sizing_corpus)
    capacity = max(4096, int(total_bytes * capacity_fraction))
    trace = zipf_indices(n_documents, n_reads, zipf_alpha, seed=seed + 2)

    results = []
    for policy_name in policies:
        kernel, corpus = _build_world(n_documents, seed)
        # Baseline: what the same trace costs with no cache at all.
        cache = DocumentCache(
            kernel,
            capacity_bytes=capacity,
            policy=make_policy(policy_name, seed=seed),
            name=f"a2-{policy_name}",
        )
        total_latency = 0.0
        no_cache_latency = 0.0
        for document_index in trace:
            document = corpus[document_index]
            outcome = cache.read(document.reference)
            total_latency += outcome.elapsed_ms
            # The counterfactual no-cache latency for the same access is
            # approximated by this document's first observed miss cost.
            no_cache_latency += _miss_cost(document, cache, outcome)
        results.append(
            PolicyResult(
                policy=policy_name,
                hit_ratio=cache.stats.hit_ratio,
                total_latency_ms=total_latency,
                mean_latency_ms=total_latency / n_reads,
                evictions=cache.stats.evictions,
                latency_saved_vs_nocache_ms=no_cache_latency - total_latency,
            )
        )
    return sorted(results, key=lambda r: r.total_latency_ms)


#: Per-document first-miss latency cache used for the counterfactual.
def _miss_cost(document, cache, outcome) -> float:
    state = document.__dict__.setdefault("_first_miss_ms", None)
    if not outcome.hit and state is None:
        document._first_miss_ms = outcome.elapsed_ms
    return document._first_miss_ms or outcome.elapsed_ms


def run_capacity_sweep(
    policies: tuple[str, ...] = ("gds", "gdsf", "lru", "size"),
    fractions: tuple[float, ...] = (0.03, 0.05, 0.10, 0.20, 0.40),
    n_documents: int = 120,
    n_reads: int = 1500,
    seed: int = 11,
) -> dict[float, list[PolicyResult]]:
    """The figure-style series: policy performance across cache sizes.

    Cao & Irani evaluate GDS across cache sizes; this regenerates that
    curve shape for our workload — the cost-aware policies' advantage is
    largest when the cache is small relative to the corpus and vanishes
    as everything fits.
    """
    return {
        fraction: run_replacement(
            policies=policies,
            n_documents=n_documents,
            n_reads=n_reads,
            capacity_fraction=fraction,
            seed=seed,
        )
        for fraction in fractions
    }


def format_capacity_sweep(sweep: dict[float, list[PolicyResult]]) -> str:
    """Render the sweep as one row per (capacity, policy)."""
    rows = []
    for fraction, results in sorted(sweep.items()):
        for result in results:
            rows.append(
                (
                    f"{fraction:.0%}",
                    result.policy,
                    result.hit_ratio,
                    result.mean_latency_ms,
                )
            )
    return format_table(
        ["capacity", "policy", "hit ratio", "mean latency (ms)"],
        rows,
        title="A2b. Policies across cache sizes (series; best policy per "
        "size reads top of each group).",
    )


def main() -> None:
    """Print the A2 table (policies sorted by total latency, best first)."""
    rows = run_replacement()
    print(
        format_table(
            [
                "policy",
                "hit ratio",
                "mean latency (ms)",
                "total latency (s)",
                "latency saved (s)",
                "evictions",
            ],
            [
                (
                    r.policy,
                    r.hit_ratio,
                    r.mean_latency_ms,
                    r.total_latency_ms / 1000.0,
                    r.latency_saved_vs_nocache_ms / 1000.0,
                    r.evictions,
                )
                for r in rows
            ],
            title="A2. Replacement policies under a 10%-of-corpus cache "
            "(cost-aware GDS should lead on latency).",
        )
    )
    print()
    print(
        format_capacity_sweep(
            run_capacity_sweep(
                fractions=(0.05, 0.10, 0.25),
                n_documents=80,
                n_reads=800,
            )
        )
    )


if __name__ == "__main__":
    main()
