"""A3: content-signature sharing between users' cache entries.

§3: tagging entries with (document, user) "enables no sharing of cached
entries even when the cached content for different users actually is the
same, such as when no active properties transform the content or when
all the transformations requested by the users are the same. ... content
entries could be shared if the cache maps a pair of document and user
identifiers to a content signature (e.g., MD5 hash) and in turn these
signatures map to the actual content."

We sweep the fraction of users with personalizing (content-transforming)
chains.  Every user reads every document; we report the bytes a naive
one-copy-per-entry cache would hold (*logical*) vs. what the
signature-indirected store holds (*physical*).  At 0% personalization
the dedup factor approaches the user count; it decays as personalization
rises — but identical chains still share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import format_table
from repro.cache.manager import DocumentCache
from repro.placeless.kernel import PlacelessKernel
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.users import build_population

__all__ = ["SharingResult", "run_sharing", "main"]


@dataclass
class SharingResult:
    """Metrics of one personalization level."""

    personalized_fraction: float
    n_entries: int
    distinct_contents: int
    logical_bytes: int
    physical_bytes: int

    @property
    def dedup_factor(self) -> float:
        """Logical over physical bytes (≥ 1; higher is better)."""
        if self.physical_bytes == 0:
            return 1.0
        return self.logical_bytes / self.physical_bytes

    @property
    def bytes_saved(self) -> int:
        """Bytes the signature indirection avoided storing."""
        return self.logical_bytes - self.physical_bytes


def run_sharing(
    fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    n_documents: int = 15,
    n_users: int = 16,
    seed: int = 23,
) -> list[SharingResult]:
    """Sweep personalization fraction, everyone reads everything."""
    results = []
    for fraction in fractions:
        kernel = PlacelessKernel()
        owner = kernel.create_user("owner")
        corpus = build_corpus(
            kernel,
            owner,
            CorpusSpec(n_documents=n_documents, ttl_ms=3_600_000.0, seed=seed),
        )
        population = build_population(
            kernel, corpus, n_users, personalized_fraction=fraction, seed=seed
        )
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 30, name=f"a3-{fraction}"
        )
        for user_index in range(n_users):
            for document_index in range(n_documents):
                cache.read(population.reference(user_index, document_index))
        results.append(
            SharingResult(
                personalized_fraction=fraction,
                n_entries=len(cache),
                distinct_contents=len(cache.store),
                logical_bytes=cache.store.logical_bytes,
                physical_bytes=cache.store.physical_bytes,
            )
        )
    return results


def main() -> None:
    """Print the A3 table."""
    rows = run_sharing()
    print(
        format_table(
            [
                "personalized",
                "entries",
                "distinct contents",
                "logical MB",
                "physical MB",
                "dedup factor",
            ],
            [
                (
                    f"{r.personalized_fraction:.0%}",
                    r.n_entries,
                    r.distinct_contents,
                    r.logical_bytes / 1e6,
                    r.physical_bytes / 1e6,
                    r.dedup_factor,
                )
                for r in rows
            ],
            title="A3. Content-signature sharing as personalization rises "
            "(16 users x 15 documents).",
        )
    )


if __name__ == "__main__":
    main()
