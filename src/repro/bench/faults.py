"""A12 — availability under injected faults, with graceful degradation.

The paper's consistency machinery presumes a misbehaving world (§3:
sources change out of band, repositories disappear, callbacks get lost)
but never measures what the cache *does* while the world misbehaves.
This experiment runs one Zipf trace against the same deployment under a
family of :class:`~repro.faults.plan.FaultPlan` scenarios and reports
availability (reads answered over reads attempted), retry volume, and
degraded-serve counts per scenario:

* ``baseline`` — healthy world, for reference;
* ``outage`` — a scheduled repository outage window in the middle of
  the trace; the cache retries with backoff, serves bounded stale bytes
  through the window, and recovers afterwards;
* ``lossy-bus`` — notifier deliveries dropped/delayed (the lost-callback
  problem); verifiers catch what the lost callbacks missed;
* ``flaky-fetch`` — intermittent ``ContentUnavailableError``; retries
  absorb most of it;
* ``combined`` — all of the above at once.

The experiment ends with a reproducibility check: the ``outage``
scenario is run twice with the same seed and must produce byte-identical
fault-injection traces and identical cache statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import format_table, write_artifact
from repro.cache.manager import DocumentCache
from repro.faults.plan import FaultPlan, OutageWindow
from repro.faults.retry import RetryPolicy
from repro.placeless.kernel import PlacelessKernel
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.runner import RunnerReport, TraceRunner
from repro.workload.trace import TraceSpec, generate_trace
from repro.workload.users import build_population

__all__ = ["SCENARIOS", "FaultRunResult", "run_scenario", "run_all", "main"]

#: Virtual span of the trace is roughly n_events * mean think time; the
#: outage window sits squarely in the middle of it.
_N_EVENTS = 600
_THINK_MS = 50.0
_OUTAGE_START_MS = 8_000.0
_OUTAGE_DURATION_MS = 4_000.0


def _scenario_plan(name: str, clock, seed: int) -> FaultPlan:
    """Build the named scenario's fault plan on *clock*."""
    outage = OutageWindow(
        _OUTAGE_START_MS, _OUTAGE_START_MS + _OUTAGE_DURATION_MS
    )
    if name == "baseline":
        return FaultPlan(clock, seed=seed)
    if name == "outage":
        return FaultPlan(clock, seed=seed, outages=(outage,))
    if name == "lossy-bus":
        return FaultPlan(
            clock,
            seed=seed,
            notifier_loss_probability=0.15,
            notifier_delay_probability=0.15,
            notifier_delay_ms=200.0,
        )
    if name == "flaky-fetch":
        return FaultPlan(clock, seed=seed, fetch_failure_probability=0.10)
    if name == "combined":
        return FaultPlan(
            clock,
            seed=seed,
            outages=(outage,),
            fetch_failure_probability=0.05,
            notifier_loss_probability=0.10,
            notifier_delay_probability=0.10,
            notifier_delay_ms=200.0,
            verifier_failure_probability=0.02,
        )
    raise ValueError(f"unknown scenario: {name!r}")


SCENARIOS = ("baseline", "outage", "lossy-bus", "flaky-fetch", "combined")


@dataclass
class FaultRunResult:
    """One scenario's outcome: the report, cache, and the fault plan."""

    scenario: str
    report: RunnerReport
    cache: DocumentCache
    plan: FaultPlan

    def stats_snapshot(self) -> dict:
        """Comparable snapshot of the run's cache statistics."""
        snapshot = dict(vars(self.cache.stats))
        snapshot["invalidations"] = dict(snapshot["invalidations"])
        return snapshot


def run_scenario(name: str, seed: int = 7) -> FaultRunResult:
    """Run one fault scenario; returns its result bundle."""
    kernel = PlacelessKernel()
    kernel.ctx.faults = _scenario_plan(name, kernel.ctx.clock, seed)
    owner = kernel.create_user("owner")
    # TTLs short enough to expire *inside* the outage window, so the
    # stale-serve degradation path is actually exercised.
    corpus = build_corpus(
        kernel, owner,
        CorpusSpec(n_documents=8, ttl_ms=6_000.0, seed=seed),
    )
    population = build_population(
        kernel, corpus, n_users=3, personalized_fraction=0.3, seed=seed
    )
    cache = DocumentCache(
        kernel,
        # Room for the whole working set: outage-window misses then come
        # from TTL invalidations (which leave stale bytes to serve) rather
        # than capacity evictions (which leave nothing).
        capacity_bytes=2 * sum(d.size_bytes for d in corpus),
        retry_policy=RetryPolicy(
            max_attempts=3, base_delay_ms=100.0, multiplier=2.0,
            max_delay_ms=1_000.0,
        ),
        serve_stale_on_error=True,
        stale_serve_max_age_ms=60_000.0,
        verifier_quarantine_threshold=5,
        name=f"faults-{name}",
    )
    runner = TraceRunner(
        kernel, corpus, population.references, caches=cache,
        writes_via_cache=False,
    )
    spec = TraceSpec(
        n_events=_N_EVENTS, n_documents=8, n_users=3,
        p_write=0.05, p_out_of_band=0.05,
        mean_think_time_ms=_THINK_MS,
        seed=seed,
    )
    report = runner.execute(generate_trace(spec))
    return FaultRunResult(
        scenario=name, report=report, cache=cache,
        plan=kernel.ctx.faults,
    )


def run_all(seed: int = 7) -> list[FaultRunResult]:
    """Every scenario, identical workload, fresh deployment each."""
    return [run_scenario(name, seed=seed) for name in SCENARIOS]


def reproducibility_check(seed: int = 7) -> bool:
    """Same seed twice → identical injection trace and identical stats."""
    first = run_scenario("combined", seed=seed)
    second = run_scenario("combined", seed=seed)
    return (
        first.plan.injection_trace() == second.plan.injection_trace()
        and first.stats_snapshot() == second.stats_snapshot()
        and first.report.availability == second.report.availability
    )


def main() -> None:
    """Print the A12 availability-under-faults table."""
    results = run_all()
    rows = []
    for result in results:
        stats = result.cache.stats
        bus = result.cache.bus.stats
        rows.append(
            (
                result.scenario,
                result.report.availability,
                result.report.hit_ratio,
                stats.retries,
                stats.degraded_serves,
                stats.stale_served_on_error,
                bus.lost,
                stats.dropped_notifier_detected,
                result.plan.stats.total,
            )
        )
    print(
        format_table(
            [
                "scenario", "availability", "hit ratio", "retries",
                "degraded", "stale-on-err", "bus lost", "lost-detected",
                "faults injected",
            ],
            rows,
            title=(
                "A12. Availability and degraded serves under injected "
                "faults (600-event Zipf trace, 3 users, 8 documents)"
            ),
        )
    )
    # Per-stage pipeline breakdown for the nastiest scenario: which
    # stages the reads traversed, how often each outcome occurred, and
    # what it cost in virtual time (from the instrumentation bus).
    combined = results[-1]
    print()
    print(
        combined.cache.stage_breakdown().render(
            title="combined scenario: pipeline stage breakdown"
        )
    )
    identical = reproducibility_check()
    print(
        "reproducibility: identical seed -> identical fault trace and "
        f"stats: {'OK' if identical else 'FAILED'}"
    )
    path = write_artifact(
        "a12",
        {
            "scenarios": [
                {
                    "scenario": result.scenario,
                    "availability": result.report.availability,
                    "hit_ratio": result.report.hit_ratio,
                    "retries": result.cache.stats.retries,
                    "degraded_serves": result.cache.stats.degraded_serves,
                    "faults_injected": result.plan.stats.total,
                }
                for result in results
            ],
            "reproducible": identical,
        },
        seed=7,
    )
    print(f"wrote {path.name}")


if __name__ == "__main__":
    main()
