"""A16: single-flight coalescing — stampede cost, chain executions per key.

The async read path (DESIGN.md §3.3) lets N concurrent misses on one
hot key land at the provider simultaneously; single-flight coalescing
elects one leader per ``(source signature, chain fingerprint)`` key and
parks every follower on its flight.  This bench drives open-loop waves
of cold stampedes — every wave invalidates the hot documents and
mutates their sources out of band, so each (document, wave) pair is one
*distinct* coalescing key — and reports, with coalescing off then on:

* chain executions per distinct key (the acceptance criterion: → 1.0
  under a 32-way stampede with coalescing on; = wave width without it);
* fetches saved (followers answered from the leader's fill) and the
  flight-table accounting (flights led, follows, promotions);
* virtual read latency mean/p50/p99 — a follower's latency includes its
  wait on the leader, the price of coalescing — and wall-clock reads/s
  for the simulator itself.

The run writes ``BENCH_A16.json`` through the shared artifact writer;
CI's concurrency job fails the build when the coalesced stampede saves
zero fetches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.harness import format_table, mean, percentile, write_artifact
from repro.cache.manager import DocumentCache
from repro.cache.policies import DefaultConcurrencyPolicy, DefaultMemoPolicy
from repro.placeless.kernel import PlacelessKernel
from repro.properties.translate import TranslationProperty
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.users import build_population

__all__ = ["StampedeResult", "run_stampede", "run_sweep", "main"]

_SEED = 47


@dataclass
class StampedeResult:
    """Metrics of one (wave width, coalescing on/off) stampede run."""

    wave_width: int
    n_documents: int
    n_waves: int
    coalesce: bool
    reads: int
    distinct_keys: int
    chain_executions: int
    flights_led: int
    follows: int
    promotions: int
    fetches_saved: int
    mean_ms: float
    p50_ms: float
    p99_ms: float
    wall_reads_per_s: float

    @property
    def chain_executions_per_key(self) -> float:
        """Chain runs per distinct (source, fingerprint) key (ideal 1.0)."""
        if not self.distinct_keys:
            return 0.0
        return self.chain_executions / self.distinct_keys


def run_stampede(
    wave_width: int,
    coalesce: bool,
    n_documents: int = 4,
    n_waves: int = 5,
    seed: int = _SEED,
) -> StampedeResult:
    """Open-loop waves of cold cross-user stampedes on a hot corpus.

    Each wave: invalidate every hot document and mutate its source out
    of band (one fresh coalescing key per document per wave), then land
    ``wave_width`` reads per document in a single concurrent batch —
    every arrival in the wave is in the pipeline before any fill
    completes, the open-loop regime a closed feedback loop never
    reaches.  Both arms run under the asyncio scheduler with the memo
    on; only the ``coalesce`` flag differs, so the delta is the
    single-flight machinery alone.
    """
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel,
        owner,
        CorpusSpec(n_documents=n_documents, ttl_ms=3_600_000.0, seed=seed),
    )
    for document in corpus:
        document.reference.base.attach(TranslationProperty())
    population = build_population(
        kernel, corpus, wave_width, personalized_fraction=0.0, seed=seed
    )
    cache = DocumentCache(
        kernel,
        capacity_bytes=1 << 30,
        concurrency_policy=DefaultConcurrencyPolicy(coalesce=coalesce),
        memo_policy=DefaultMemoPolicy(),
        name=f"a16-{wave_width}-{'on' if coalesce else 'off'}",
    )
    reads_before = kernel.stats.reads
    latencies: list[float] = []
    wall_started = time.perf_counter()
    for wave in range(n_waves):
        for document_index, document in enumerate(corpus):
            cache.invalidate_document(
                document.reference.base.document_id
            )
            document.provider.mutate_out_of_band(
                f"wave {wave} document {document_index}".encode() * 32
            )
        references = [
            population.reference(user_index, document_index)
            for user_index in range(wave_width)
            for document_index in range(n_documents)
        ]
        for outcome in cache.read_many(references):
            latencies.append(outcome.elapsed_ms)
    wall_s = time.perf_counter() - wall_started
    stats = cache.concurrency_stats
    assert stats is not None
    return StampedeResult(
        wave_width=wave_width,
        n_documents=n_documents,
        n_waves=n_waves,
        coalesce=coalesce,
        reads=len(latencies),
        distinct_keys=n_documents * n_waves,
        chain_executions=kernel.stats.reads - reads_before,
        flights_led=stats.flights_led,
        follows=stats.follows,
        promotions=stats.promotions,
        fetches_saved=stats.fetches_saved,
        mean_ms=mean(latencies),
        p50_ms=percentile(latencies, 50),
        p99_ms=percentile(latencies, 99),
        wall_reads_per_s=len(latencies) / wall_s if wall_s else 0.0,
    )


def run_sweep(
    wave_widths: tuple[int, ...] = (4, 8, 16, 32),
    n_documents: int = 4,
    n_waves: int = 5,
    seed: int = _SEED,
) -> list[StampedeResult]:
    """The A16 sweep: every wave width, coalescing off then on."""
    results = []
    for wave_width in wave_widths:
        for coalesce in (False, True):
            results.append(
                run_stampede(
                    wave_width,
                    coalesce,
                    n_documents=n_documents,
                    n_waves=n_waves,
                    seed=seed,
                )
            )
    return results


def main(smoke: bool = False) -> None:
    """Print the A16 table and write ``BENCH_A16.json``."""
    if smoke:
        wave_widths: tuple[int, ...] = (32,)
        n_documents = 2
        n_waves = 2
    else:
        wave_widths = (4, 8, 16, 32)
        n_documents = 4
        n_waves = 5
    results = run_sweep(
        wave_widths=wave_widths, n_documents=n_documents, n_waves=n_waves
    )
    print(
        format_table(
            [
                "wave", "coalesce", "reads", "keys", "chain execs",
                "execs/key", "saved", "mean ms", "p99 ms", "reads/s",
            ],
            [
                (
                    r.wave_width,
                    r.coalesce,
                    r.reads,
                    r.distinct_keys,
                    r.chain_executions,
                    r.chain_executions_per_key,
                    r.fetches_saved,
                    r.mean_ms,
                    r.p99_ms,
                    f"{r.wall_reads_per_s:.0f}",
                )
                for r in results
            ],
            title=(
                "A16. Single-flight stampedes: open-loop waves of "
                f"cold cross-user misses ({n_documents} documents x "
                f"{n_waves} waves; coalesced ideal execs/key = 1.0, "
                "uncoalesced = wave width)"
            ),
        )
    )
    widest_on = max(
        (r for r in results if r.coalesce), key=lambda r: r.wave_width
    )
    widest_off = next(
        r for r in results
        if not r.coalesce and r.wave_width == widest_on.wave_width
    )
    metrics = {
        "sweep": [
            {
                "wave_width": r.wave_width,
                "n_documents": r.n_documents,
                "n_waves": r.n_waves,
                "coalesce": r.coalesce,
                "reads": r.reads,
                "distinct_keys": r.distinct_keys,
                "chain_executions": r.chain_executions,
                "chain_executions_per_key": r.chain_executions_per_key,
                "flights_led": r.flights_led,
                "follows": r.follows,
                "promotions": r.promotions,
                "fetches_saved": r.fetches_saved,
                "mean_ms": r.mean_ms,
                "p50_ms": r.p50_ms,
                "p99_ms": r.p99_ms,
                "wall_reads_per_s": r.wall_reads_per_s,
            }
            for r in results
        ],
        "headline": {
            "wave_width": widest_on.wave_width,
            "chain_executions_per_key_coalesced": (
                widest_on.chain_executions_per_key
            ),
            "chain_executions_per_key_uncoalesced": (
                widest_off.chain_executions_per_key
            ),
            "fetches_saved": widest_on.fetches_saved,
            "mean_ms_coalesced": widest_on.mean_ms,
            "mean_ms_uncoalesced": widest_off.mean_ms,
        },
        "smoke": smoke,
    }
    path = write_artifact("a16", metrics, seed=_SEED)
    print(f"\nwrote {path.name}")


if __name__ == "__main__":
    main()
