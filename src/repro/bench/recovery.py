"""A13 — consistency recovery: bounded staleness and crash durability.

The notifier architecture keeps cached entries fresh only while every
notification arrives.  A12 showed verifiers catching *some* of what lost
callbacks miss; this experiment isolates the failure mode completely —
verifiers off, plain untransformed documents, a writer and a reader on
separate references — and measures what the consistency-recovery layer
(leased + sequenced notifier channels, gap detection, anti-entropy
resync, write-back journal) buys at each of its three seams:

* **staleness vs. notification loss** — one writer keeps updating a
  document while a reader polls it through the cache; the *staleness
  window* of one write is the virtual time from the write until the
  reader first observes it.  Without recovery, a write whose
  notifications are all lost is never observed (the window is unbounded
  — reported against the measurement horizon); with recovery, the
  renewal-time checkpoint comparison exposes the loss and the resync
  repairs it within one lease term.
* **partition convergence** — an invalidation-bus blackout swallows a
  mid-window write; the recovery cache must converge within one lease
  term of the partition healing, the baseline cache never converges.
* **crash durability** — a write-back cache takes acknowledged writes,
  flushes some, then a fault-plan-scheduled crash wipes its volatile
  state.  The journalled cache replays the unflushed suffix on restart
  (idempotently — a second replay restores nothing twice) and the final
  flush makes every acknowledged write byte-identical at the provider
  with zero duplicate flushes; the unjournalled cache silently loses
  every unflushed write.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import format_table, write_artifact
from repro.cache.manager import DocumentCache
from repro.cache.pipeline import WriteMode
from repro.cache.policies import DefaultRecoveryPolicy
from repro.faults.plan import FaultPlan, OutageWindow
from repro.placeless.kernel import PlacelessKernel
from repro.providers.memory import MemoryProvider
from repro.sim.context import SimContext

__all__ = [
    "LEASE_TERM_MS",
    "ConvergenceResult",
    "PartitionResult",
    "CrashResult",
    "run_convergence",
    "run_partition",
    "run_crash",
    "main",
]

#: Lease term used by every recovery-enabled cache in this experiment;
#: the headline claim is staleness bounded by (roughly) this.
LEASE_TERM_MS = 2_000.0
#: The reader polls the cache this often (virtual time).
_POLL_MS = 100.0
#: A write not observed within this horizon counts as unbounded.
_HORIZON_MS = 8_000.0
#: Idle gap between convergence rounds.
_SETTLE_MS = 250.0


def _deployment(
    seed: int,
    recovery: bool,
    loss_rate: float = 0.0,
    bus_outages: tuple[OutageWindow, ...] = (),
    name: str = "a13",
):
    """One writer/reader pair around a single plain document."""
    ctx = SimContext()
    ctx.faults = FaultPlan(
        ctx.clock,
        seed=seed,
        notifier_loss_probability=loss_rate,
        bus_outages=bus_outages,
    )
    kernel = PlacelessKernel(ctx)
    reader = kernel.create_user("reader")
    writer = kernel.create_user("writer")
    provider = MemoryProvider(ctx, b"v0")
    reader_ref = kernel.import_document(reader, provider, "doc")
    writer_ref = kernel.space(writer).add_reference(reader_ref.base, "doc-w")
    cache = DocumentCache(
        kernel,
        capacity_bytes=1 << 20,
        # Verifiers off: nothing but notifications (and the recovery
        # layer) can tell this cache its entry went stale.
        use_verifiers=False,
        recovery_policy=(
            DefaultRecoveryPolicy(lease_term_ms=LEASE_TERM_MS)
            if recovery else None
        ),
        name=name,
    )
    return kernel, cache, reader_ref, writer_ref


@dataclass
class ConvergenceResult:
    """Staleness-window statistics for one (loss rate, recovery) cell."""

    loss_rate: float
    recovery: bool
    rounds: int
    converged: int
    unbounded: int
    mean_staleness_ms: float
    max_staleness_ms: float
    gaps_detected: int
    checkpoint_gaps: int
    resyncs: int


def run_convergence(
    loss_rate: float, recovery: bool, seed: int = 7, rounds: int = 12
) -> ConvergenceResult:
    """Writer updates, reader polls; measure per-write staleness windows."""
    kernel, cache, reader_ref, writer_ref = _deployment(
        seed, recovery, loss_rate=loss_rate,
        name=f"a13-loss{int(loss_rate * 100)}-{'rec' if recovery else 'base'}",
    )
    clock = kernel.ctx.clock
    cache.read(reader_ref)  # initial fill
    windows: list[float] = []
    unbounded = 0
    for round_no in range(rounds):
        payload = f"round-{round_no}".encode()
        write_at = clock.now_ms
        kernel.write(writer_ref, payload)
        staleness = None
        while clock.now_ms - write_at < _HORIZON_MS:
            if cache.read(reader_ref).content == payload:
                staleness = clock.now_ms - write_at
                break
            clock.advance(_POLL_MS)
        if staleness is None:
            unbounded += 1
        else:
            windows.append(staleness)
        clock.advance(_SETTLE_MS)
    stats = cache.recovery_stats
    return ConvergenceResult(
        loss_rate=loss_rate,
        recovery=recovery,
        rounds=rounds,
        converged=len(windows),
        unbounded=unbounded,
        mean_staleness_ms=(
            sum(windows) / len(windows) if windows else float("nan")
        ),
        max_staleness_ms=max(windows) if windows else float("nan"),
        gaps_detected=stats.gaps_detected if stats else 0,
        checkpoint_gaps=stats.checkpoint_gaps if stats else 0,
        resyncs=stats.resyncs if stats else 0,
    )


@dataclass
class PartitionResult:
    """Convergence after a bus blackout swallowed a write."""

    recovery: bool
    partition_end_ms: float
    write_at_ms: float
    converged: bool
    staleness_ms: float | None
    #: The headline bound: observed within one lease term of the
    #: partition healing.
    within_one_lease_term: bool
    dropped_by_partition: int
    lease_lapses: int
    resyncs: int


def run_partition(recovery: bool, seed: int = 7) -> PartitionResult:
    """One write inside a bus blackout; does the reader ever see it?"""
    window = OutageWindow(2_000.0, 5_000.0)
    kernel, cache, reader_ref, writer_ref = _deployment(
        seed, recovery, bus_outages=(window,),
        name=f"a13-partition-{'rec' if recovery else 'base'}",
    )
    clock = kernel.ctx.clock
    cache.read(reader_ref)
    clock.advance_to(3_000.0)  # inside the blackout
    payload = b"written-during-partition"
    write_at = clock.now_ms
    kernel.write(writer_ref, payload)
    staleness = None
    horizon = window.end_ms + 4 * LEASE_TERM_MS
    while clock.now_ms < horizon:
        if cache.read(reader_ref).content == payload:
            staleness = clock.now_ms - write_at
            break
        clock.advance(_POLL_MS)
    stats = cache.recovery_stats
    plan = kernel.ctx.faults
    return PartitionResult(
        recovery=recovery,
        partition_end_ms=window.end_ms,
        write_at_ms=write_at,
        converged=staleness is not None,
        staleness_ms=staleness,
        within_one_lease_term=(
            staleness is not None
            and write_at + staleness <= window.end_ms + LEASE_TERM_MS
        ),
        dropped_by_partition=plan.stats.notifications_partition_dropped,
        lease_lapses=stats.lease_lapses if stats else 0,
        resyncs=stats.resyncs if stats else 0,
    )


@dataclass
class CrashResult:
    """Durability of acknowledged write-backs across an injected crash."""

    journal: bool
    acknowledged: int
    flushed_before_crash: int
    replayed: int
    replay_skipped_on_second_pass: int
    restored_byte_identical: int
    lost: int
    total_flushes: int
    duplicate_flushes: int


def run_crash(journal: bool, seed: int = 7, n_documents: int = 6) -> CrashResult:
    """Acknowledge writes, flush some, crash mid-run, replay, verify."""
    crash_at = 4_000.0
    ctx = SimContext()
    ctx.faults = FaultPlan(ctx.clock, seed=seed, cache_crashes=(crash_at,))
    kernel = PlacelessKernel(ctx)
    user = kernel.create_user("author")
    providers = []
    references = []
    for i in range(n_documents):
        provider = MemoryProvider(ctx, b"original")
        providers.append(provider)
        references.append(
            kernel.import_document(user, provider, f"wb-{i}")
        )
    cache = DocumentCache(
        kernel,
        capacity_bytes=1 << 20,
        write_mode=WriteMode.WRITE_BACK,
        use_verifiers=False,
        recovery_policy=(
            DefaultRecoveryPolicy(lease_term_ms=LEASE_TERM_MS)
            if journal else None
        ),
        name=f"a13-crash-{'journal' if journal else 'bare'}",
    )
    acknowledged = {}
    flushed_early = n_documents // 3
    for i, reference in enumerate(references):
        payload = f"acknowledged-write-{i}".encode()
        cache.write(reference, payload)  # returning == acknowledged
        acknowledged[i] = payload
        if i < flushed_early:
            cache.flush(reference)
    clock = ctx.clock
    clock.advance_to(crash_at + 1.0)  # fires the scheduled crash+restart
    skipped_before = (
        cache.recovery_stats.journal_replays_skipped
        if cache.recovery_stats else 0
    )
    if cache.recovery is not None:
        # Idempotency probe: a second replay must restore nothing twice.
        cache.recovery.replay_journal()
    skipped = (
        cache.recovery_stats.journal_replays_skipped - skipped_before
        if cache.recovery_stats else 0
    )
    cache.flush_all()
    restored = sum(
        1 for i, provider in enumerate(providers)
        if provider.peek() == acknowledged[i]
    )
    stats = cache.recovery_stats
    return CrashResult(
        journal=journal,
        acknowledged=n_documents,
        flushed_before_crash=flushed_early,
        replayed=stats.journal_replayed if stats else 0,
        replay_skipped_on_second_pass=skipped,
        restored_byte_identical=restored,
        lost=n_documents - restored,
        total_flushes=cache.stats.flushes,
        duplicate_flushes=max(0, cache.stats.flushes - n_documents),
    )


def main() -> None:
    """Print the A13 consistency-recovery tables."""
    loss_rates = (0.0, 0.25, 0.5)
    convergence_metrics = []
    rows = []
    for loss_rate in loss_rates:
        for recovery in (False, True):
            r = run_convergence(loss_rate, recovery)
            convergence_metrics.append(
                {
                    "loss_rate": loss_rate,
                    "recovery": recovery,
                    "converged": r.converged,
                    "unbounded": r.unbounded,
                    "mean_staleness_ms": r.mean_staleness_ms,
                    "max_staleness_ms": r.max_staleness_ms,
                    "resyncs": r.resyncs,
                }
            )
            rows.append(
                (
                    f"{loss_rate:.0%}",
                    r.recovery,
                    r.converged,
                    r.unbounded,
                    r.mean_staleness_ms,
                    r.max_staleness_ms,
                    r.gaps_detected,
                    r.checkpoint_gaps,
                    r.resyncs,
                )
            )
    print(
        format_table(
            [
                "loss rate", "recovery", "converged", "unbounded",
                "mean stale ms", "max stale ms", "gaps", "ckpt gaps",
                "resyncs",
            ],
            rows,
            title=(
                "A13a. Staleness window vs notification-loss rate "
                f"(12 writes, horizon {_HORIZON_MS:.0f}ms = unbounded, "
                f"lease term {LEASE_TERM_MS:.0f}ms, verifiers off)"
            ),
        )
    )
    print()
    rows = []
    for recovery in (False, True):
        r = run_partition(recovery)
        rows.append(
            (
                r.recovery,
                r.dropped_by_partition,
                r.converged,
                "-" if r.staleness_ms is None else f"{r.staleness_ms:.0f}",
                r.within_one_lease_term,
                r.lease_lapses,
                r.resyncs,
            )
        )
    print(
        format_table(
            [
                "recovery", "partition drops", "converged", "stale ms",
                "within 1 term", "lapses", "resyncs",
            ],
            rows,
            title=(
                "A13b. Convergence after a 3s invalidation-bus blackout "
                "swallows a write (recovery bound: partition end + one "
                "lease term)"
            ),
        )
    )
    print()
    rows = []
    crash_metrics = []
    for journal in (False, True):
        r = run_crash(journal)
        crash_metrics.append(
            {
                "journal": journal,
                "acknowledged": r.acknowledged,
                "replayed": r.replayed,
                "restored_byte_identical": r.restored_byte_identical,
                "lost": r.lost,
            }
        )
        rows.append(
            (
                r.journal,
                r.acknowledged,
                r.flushed_before_crash,
                r.replayed,
                r.replay_skipped_on_second_pass,
                r.restored_byte_identical,
                r.lost,
                r.duplicate_flushes,
            )
        )
    print(
        format_table(
            [
                "journal", "acked", "pre-flushed", "replayed",
                "2nd-replay skips", "byte-identical", "lost",
                "dup flushes",
            ],
            rows,
            title=(
                "A13c. Write-back durability across an injected cache "
                "crash (journal replays the unflushed suffix; double "
                "replay is a no-op)"
            ),
        )
    )
    path = write_artifact(
        "a13",
        {"convergence": convergence_metrics, "crash": crash_metrics},
    )
    print(f"wrote {path.name}")


if __name__ == "__main__":
    main()
