"""A14 — containment: availability under misbehaving active-property code.

The paper's caches serve content *produced by running arbitrary property
code* — stream transformers on every read path (§2), verifiers on every
hit (§3).  A single property that raises, runs away or corrupts its
output therefore poisons every access to its document.  This experiment
injects exactly that (the ``misbehave`` fault family: seed-deterministic
raise / runaway-cost / corrupt-output at the stream-wrapper seam) into a
small deployment and measures what the containment layer (per-(document,
code-site) circuit breakers, execution budgets, exception firewalls with
per-role fallbacks) buys:

* **access availability vs. misbehaving-property rate** — a writer keeps
  updating each document (forcing the reader's accesses to miss and
  re-run the wrapper chain) while the reader polls through the cache.
  Uncontained, every injected raise or mid-stream corruption fails the
  access outright; contained, raises are converted into the per-role
  fallback (skip the optional audit property / force-miss past the
  required translator), runaway cost is capped by the execution budget,
  and only the occasional *first* corruption at a site escapes before
  its breaker trips.
* **p99 access latency** — the runaway mode charges an extra
  ``property_runaway_cost_ms`` per invocation; the contained run's
  budget aborts those invocations at the cap, so the latency tail
  collapses.
* **breaker recovery** — after the faults clear, one probation window
  plus ``half_open_successes`` clean probes must close every tripped
  breaker and restore undegraded service.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import format_table, write_artifact
from repro.cache.manager import DocumentCache
from repro.cache.policies import DefaultContainmentPolicy
from repro.errors import ContainmentError, PropertyError, StreamError
from repro.faults.plan import FaultPlan
from repro.placeless.kernel import PlacelessKernel
from repro.properties.audit import ReadAuditTrailProperty
from repro.properties.translate import TranslationProperty
from repro.providers.memory import MemoryProvider
from repro.sim.context import SimContext

__all__ = [
    "FAILURE_THRESHOLD",
    "PROBATION_DELAY_MS",
    "HALF_OPEN_SUCCESSES",
    "BUDGET_MS",
    "AvailabilityResult",
    "RecoveryResult",
    "run_availability",
    "run_recovery",
    "main",
]

#: Breaker tuning used by every contained run in this experiment.
FAILURE_THRESHOLD = 1
PROBATION_DELAY_MS = 2_000.0
HALF_OPEN_SUCCESSES = 2
#: Per-invocation execution budget (virtual ms); the injected runaway
#: cost (25 ms) busts it, the translator's honest 2.5 ms does not.
BUDGET_MS = 5.0
#: Idle gap between workload rounds (virtual ms).
_THINK_MS = 50.0

#: Exceptions that count as a failed access (the availability metric).
_ACCESS_FAILURES = (PropertyError, StreamError, ContainmentError)


def _containment_policy() -> DefaultContainmentPolicy:
    return DefaultContainmentPolicy(
        failure_threshold=FAILURE_THRESHOLD,
        probation_delay_ms=PROBATION_DELAY_MS,
        half_open_successes=HALF_OPEN_SUCCESSES,
        max_cost_ms=BUDGET_MS,
    )


def _deployment(seed: int, rate: float, contained: bool, n_documents: int):
    """Reader + writer over *n_documents*, two wrapped properties each.

    Every document carries one *optional* property (the read-audit
    trail: observes the read path, transforms nothing) and one
    *required* transformer (translation), so both fallback roles are
    exercised at the wrapper seam.
    """
    ctx = SimContext()
    ctx.faults = FaultPlan(
        ctx.clock, seed=seed, property_failure_probability=rate
    )
    kernel = PlacelessKernel(ctx)
    reader = kernel.create_user("reader")
    writer = kernel.create_user("writer")
    pairs = []
    for i in range(n_documents):
        provider = MemoryProvider(ctx, b"hello world")
        reader_ref = kernel.import_document(reader, provider, f"doc-{i}")
        reader_ref.base.attach(
            ReadAuditTrailProperty(name=f"audit-{i}"), acting_user=reader
        )
        reader_ref.base.attach(
            TranslationProperty(name=f"translate-{i}"), acting_user=reader
        )
        writer_ref = kernel.space(writer).add_reference(
            reader_ref.base, f"doc-{i}-w"
        )
        pairs.append((reader_ref, writer_ref))
    cache = DocumentCache(
        kernel,
        capacity_bytes=1 << 20,
        containment_policy=_containment_policy() if contained else None,
        name=f"a14-{'contained' if contained else 'bare'}"
        f"-rate{int(rate * 100)}",
    )
    return kernel, cache, pairs


def _run_rounds(kernel, cache, pairs, rounds: int, round_base: int = 0):
    """Write-then-read every document per round; returns accounting.

    Each write (by the other user) invalidates the reader's entry, so
    the following read misses and re-runs the wrapper chain — the seam
    the ``misbehave`` faults target.
    """
    clock = kernel.ctx.clock
    latencies: list[float] = []
    failures = 0
    degraded = 0
    for round_no in range(round_base, round_base + rounds):
        for i, (reader_ref, writer_ref) in enumerate(pairs):
            payload = f"hello world round {round_no} doc {i}".encode()
            kernel.write(writer_ref, payload)
            started = clock.now_ms
            try:
                outcome = cache.read(reader_ref)
            except _ACCESS_FAILURES:
                failures += 1
            else:
                if outcome.degraded:
                    degraded += 1
            latencies.append(clock.now_ms - started)
        clock.advance(_THINK_MS)
    return latencies, failures, degraded


def _p99(latencies: list[float]) -> float:
    ordered = sorted(latencies)
    return ordered[int(0.99 * (len(ordered) - 1))] if ordered else float("nan")


@dataclass
class AvailabilityResult:
    """One (misbehaving-rate, containment) cell of the A14 sweep."""

    rate: float
    contained: bool
    reads: int
    failures: int
    availability: float
    degraded: int
    p99_latency_ms: float
    trips: int
    contained_raises: int
    budget_overruns: int
    escapes: int


def run_availability(
    rate: float,
    contained: bool,
    seed: int = 11,
    rounds: int = 30,
    n_documents: int = 8,
) -> AvailabilityResult:
    """Sweep one cell: write/read rounds under injected property faults."""
    kernel, cache, pairs = _deployment(seed, rate, contained, n_documents)
    latencies, failures, degraded = _run_rounds(kernel, cache, pairs, rounds)
    stats = cache.containment_stats
    reads = len(latencies)
    return AvailabilityResult(
        rate=rate,
        contained=contained,
        reads=reads,
        failures=failures,
        availability=(reads - failures) / reads if reads else float("nan"),
        degraded=degraded,
        p99_latency_ms=_p99(latencies),
        trips=stats.trips if stats else 0,
        contained_raises=stats.failures_contained if stats else 0,
        budget_overruns=stats.budget_overruns if stats else 0,
        escapes=stats.escapes if stats else 0,
    )


@dataclass
class RecoveryResult:
    """Breaker recovery once the property faults clear."""

    rate: float
    open_after_faults: int
    probation_delay_ms: float
    recovery_rounds: int
    open_after_recovery: int
    closes: int
    recovered_degraded_reads: int
    recovered_failures: int


def run_recovery(
    rate: float = 0.10,
    seed: int = 11,
    rounds: int = 30,
    n_documents: int = 8,
) -> RecoveryResult:
    """Faulted phase, then clear the faults and probe the breakers.

    The recovery bound under test: one probation window plus
    ``HALF_OPEN_SUCCESSES`` clean accesses per site closes every
    breaker and restores undegraded (non-fallback) service.
    """
    kernel, cache, pairs = _deployment(
        seed, rate, contained=True, n_documents=n_documents
    )
    latencies, failures, degraded = _run_rounds(kernel, cache, pairs, rounds)
    guard = cache.containment
    assert guard is not None
    open_after_faults = sum(len(k) for k in guard.open_sites().values())
    closes_before = guard.stats.closes
    # Faults clear; wait out one probation window, then run the
    # half-open probes (each clean read is one probe success per site).
    kernel.ctx.faults.property_failure_probability = 0.0
    kernel.ctx.clock.advance(PROBATION_DELAY_MS)
    recovery_rounds = HALF_OPEN_SUCCESSES
    _, rec_failures, _ = _run_rounds(
        kernel, cache, pairs, recovery_rounds, round_base=rounds
    )
    # One more round past the close shows service fully restored.
    _, post_failures, post_degraded = _run_rounds(
        kernel, cache, pairs, 1, round_base=rounds + recovery_rounds
    )
    return RecoveryResult(
        rate=rate,
        open_after_faults=open_after_faults,
        probation_delay_ms=PROBATION_DELAY_MS,
        recovery_rounds=recovery_rounds,
        open_after_recovery=sum(
            len(k) for k in guard.open_sites().values()
        ),
        closes=guard.stats.closes - closes_before,
        recovered_degraded_reads=post_degraded,
        recovered_failures=rec_failures + post_failures,
    )


def main() -> None:
    """Print the A14 containment tables."""
    rates = (0.0, 0.10, 0.25)
    rows = []
    availability_metrics = []
    baseline = None
    headline = None
    for rate in rates:
        for contained in (False, True):
            r = run_availability(rate, contained)
            availability_metrics.append(
                {
                    "misbehave_rate": rate,
                    "contained": contained,
                    "reads": r.reads,
                    "failures": r.failures,
                    "availability": r.availability,
                    "p99_latency_ms": r.p99_latency_ms,
                    "trips": r.trips,
                    "escapes": r.escapes,
                }
            )
            if rate == 0.0 and not contained:
                baseline = r.availability
            if rate == 0.10 and contained:
                headline = r.availability
            rows.append(
                (
                    f"{rate:.0%}",
                    r.contained,
                    r.reads,
                    r.failures,
                    f"{r.availability:.1%}",
                    r.degraded,
                    f"{r.p99_latency_ms:.1f}",
                    r.trips,
                    r.contained_raises,
                    r.budget_overruns,
                    r.escapes,
                )
            )
    print(
        format_table(
            [
                "misbehave rate", "contained", "reads", "failed",
                "availability", "degraded", "p99 ms", "trips",
                "contained", "budget kills", "escapes",
            ],
            rows,
            title=(
                "A14a. Access availability and p99 latency vs "
                "misbehaving-property rate (8 docs x 30 write+read "
                "rounds; breaker threshold "
                f"{FAILURE_THRESHOLD}, probation "
                f"{PROBATION_DELAY_MS:.0f}ms, budget {BUDGET_MS:.0f}ms)"
            ),
        )
    )
    if baseline is not None and headline is not None:
        print(
            f"\nheadline: contained availability at 10% misbehave rate "
            f"is {headline:.1%} vs fault-free baseline {baseline:.1%} "
            f"(delta {baseline - headline:+.1%})"
        )
    print()
    r = run_recovery()
    print(
        format_table(
            [
                "rate", "open after faults", "probation ms",
                "probe rounds", "open after", "closes",
                "degraded after", "failures after",
            ],
            [
                (
                    f"{r.rate:.0%}",
                    r.open_after_faults,
                    f"{r.probation_delay_ms:.0f}",
                    r.recovery_rounds,
                    r.open_after_recovery,
                    r.closes,
                    r.recovered_degraded_reads,
                    r.recovered_failures,
                )
            ],
            title=(
                "A14b. Breaker recovery after the faults clear (one "
                "probation window + "
                f"{HALF_OPEN_SUCCESSES} clean probes per site closes "
                "every circuit)"
            ),
        )
    )
    path = write_artifact(
        "a14",
        {
            "availability": availability_metrics,
            "recovery": {
                "rate": r.rate,
                "open_after_faults": r.open_after_faults,
                "open_after_recovery": r.open_after_recovery,
                "closes": r.closes,
                "recovered_failures": r.recovered_failures,
            },
        },
    )
    print(f"wrote {path.name}")


if __name__ == "__main__":
    main()
