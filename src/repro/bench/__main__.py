"""Run every experiment and print every table: ``python -m repro.bench``."""

from __future__ import annotations

from repro.bench import (
    cacheability,
    chains,
    cluster,
    collections,
    containment,
    external,
    faults,
    invalidation,
    memo,
    notifier_verifier,
    placement,
    qos,
    recovery,
    replacement,
    sharing,
    stampede,
    table1,
    writes,
)

_EXPERIMENTS = (
    ("Table 1", table1),
    ("A1 notifier/verifier", notifier_verifier),
    ("A2 replacement", replacement),
    ("A3 sharing", sharing),
    ("A4 cacheability", cacheability),
    ("A5 invalidation classes", invalidation),
    ("A6 QoS", qos),
    ("A7 chain latency", chains),
    ("A8 cache placement", placement),
    ("A9 collection prefetch", collections),
    ("A10 external-dependency placement", external),
    ("A11 write modes", writes),
    ("A12 fault injection", faults),
    ("A13 consistency recovery", recovery),
    ("A14 containment", containment),
    ("A15 transform memoization", memo),
    ("A16 single-flight stampedes", stampede),
    ("A17 cluster topology", cluster),
)


def main() -> None:
    """Run all experiments in DESIGN.md order."""
    for label, module in _EXPERIMENTS:
        print(f"\n{'=' * 72}\n{label}\n{'=' * 72}")
        module.main()


if __name__ == "__main__":
    main()
