"""A18 — persistent L2 tier: crash-warm restart and disk-fault degradation.

A cache process that crashes loses every byte it held; A13 showed the
write-back journal saving acknowledged *writes*, but the read working
set still came back cold.  This experiment measures what the durable L2
content tier buys at restart, and what a hostile disk costs it:

* **warm vs. cold restart** — the same skewed workload (a resident hot
  set plus rotating cold documents that demote to disk on eviction)
  runs across a fault-plan-scheduled mid-run crash, once without
  storage and once with it.  The cold cache refetches everything; the
  warm cache promotes its demoted copies back (chain-, source-, CRC-
  and verifier-gated, so recovered bytes are never served unverified).
  The headline is the post-restart hit ratio — warm strictly above
  cold — and the virtual time from the crash instant until read
  latency first falls back under the pre-crash p99.
* **disk-fault degradation** — the same warm arm under a hostile disk
  (failed writes, lying fsyncs, corrupted records, slow I/O).  The
  tier must absorb all of it: corrupted records are CRC-dropped at
  recovery rather than served, repeated write failures trip the
  storage breaker into L1-only fallback, and every byte served in the
  whole run remains ground-truth identical — zero wrong bytes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.bench.harness import format_table, percentile, write_artifact
from repro.cache.manager import DocumentCache
from repro.cache.policies import DefaultStoragePolicy
from repro.faults.plan import FaultPlan
from repro.placeless.kernel import PlacelessKernel
from repro.providers.memory import MemoryProvider
from repro.sim.context import SimContext

__all__ = ["ArmResult", "run_arm", "main"]

_SEED = 11
#: Virtual gap between successive reads in the scan loop.
_READ_GAP_MS = 15.0
#: Reads earlier than this are warm-up noise, excluded from the
#: pre-crash latency baseline.
_WARMUP_MS = 600.0
#: Dispositions that avoided a full backing-store fetch.
_WARM_DISPOSITIONS = frozenset(
    {"hit", "revalidated", "miss-promoted", "miss-memoized", "miss-adopted"}
)
#: Hostile-disk seam probabilities for the degradation arm.
_DISK_FAULTS = {
    "disk_write_fail_probability": 0.30,
    "disk_fsync_lost_probability": 0.10,
    "disk_corrupt_probability": 0.15,
    "disk_slow_io_probability": 0.10,
    "disk_slow_io_ms": 5.0,
}


@dataclass
class ArmResult:
    """One workload run across a scheduled crash, cold or warm."""

    label: str
    storage: bool
    hostile_disk: bool
    crash_at_ms: float
    reads_pre: int
    reads_post: int
    pre_p50_ms: float
    pre_p99_ms: float
    post_hit_ratio: float
    post_warm_hits: int
    #: Virtual ms from the crash instant until a post-restart read
    #: first comes in at or under the pre-crash p99 latency.
    restart_to_p99_ms: float | None
    post_mean_ms: float
    wrong_bytes_served: int
    dispositions: dict[str, int]
    demotions: int
    promotions: int
    recovered_entries: int
    recovered_promotions: int
    corrupt_records_recovered: int
    dropped_records: int
    write_failures: int
    fallback_skips: int
    breaker_trips: int
    breaker_closes: int


def _content(index: int, doc_bytes: int) -> bytes:
    prefix = f"document-{index}:".encode()
    body = bytes((index * 7 + j) % 251 for j in range(doc_bytes))
    return prefix + body


def _deployment(
    seed: int,
    storage: bool,
    crash_at: float,
    n_docs: int,
    doc_bytes: int,
    capacity: int,
    disk_faults: dict[str, float] | None,
    name: str,
):
    """One reader over *n_docs* plain documents, crash scheduled."""
    ctx = SimContext()
    ctx.faults = FaultPlan(
        ctx.clock,
        seed=seed,
        cache_crashes=(crash_at,),
        **(disk_faults or {}),
    )
    kernel = PlacelessKernel(ctx)
    user = kernel.create_user("reader")
    references = []
    truths = []
    for i in range(n_docs):
        content = _content(i, doc_bytes)
        provider = MemoryProvider(ctx, content)
        references.append(kernel.import_document(user, provider, f"doc-{i}"))
        truths.append(content)
    policy = None
    if storage:
        # The degradation arm runs a twitchier breaker: two consecutive
        # disk failures are enough to fall back to L1-only, the posture
        # an operator would pick for a disk this hostile.
        policy = (
            DefaultStoragePolicy(breaker_failure_threshold=2)
            if disk_faults else DefaultStoragePolicy()
        )
    cache = DocumentCache(
        kernel,
        capacity_bytes=capacity,
        storage_policy=policy,
        name=name,
    )
    return kernel, cache, references, truths


def run_arm(
    storage: bool,
    seed: int = _SEED,
    *,
    n_docs: int = 18,
    doc_bytes: int = 220,
    crash_at: float = 3_000.0,
    rounds_post: int = 8,
    hostile_disk: bool = False,
    label: str,
) -> ArmResult:
    """Run the skewed scan across the scheduled crash; measure recovery.

    The working set splits into a hot third (read every round, stays
    L1-resident) and a cold remainder (three per round, round-robin, so
    each cold read evicts — and with storage, demotes — an earlier
    one).  The capacity holds the hot set plus two cold documents, so
    by the crash instant nearly the whole cold set has been demoted to
    the L2 tier.  The crash fires mid-loop off the fault plan's clock
    callback; the loop just keeps reading.
    """
    n_hot = max(1, n_docs // 3)
    doc_size = len(_content(0, doc_bytes))
    # The hot set plus a round's cold reads fit (so hot stays resident
    # and hits), but the full cold rotation does not (so each cold doc
    # is evicted — demoted, with storage — before its next read).
    capacity = (n_hot + 4) * doc_size
    kernel, cache, references, truths = _deployment(
        seed, storage, crash_at, n_docs, doc_bytes, capacity,
        _DISK_FAULTS if hostile_disk else None,
        name=f"a18-{label}",
    )
    clock = kernel.ctx.clock
    cold_indices = list(range(n_hot, n_docs))
    cold_ptr = 0
    pre_latencies: list[float] = []
    post: list[tuple[float, float, str]] = []
    dispositions: Counter[str] = Counter()
    wrong = 0
    reads_pre = 0
    post_rounds = 0
    while post_rounds < rounds_post:
        plan = list(range(n_hot))
        for _ in range(min(3, len(cold_indices))):
            plan.append(cold_indices[cold_ptr % len(cold_indices)])
            cold_ptr += 1
        for i in plan:
            clock.advance(_READ_GAP_MS)  # crash callback fires in here
            started = clock.now_ms
            outcome = cache.read(references[i])
            dispositions[outcome.disposition] += 1
            if outcome.content != truths[i]:
                wrong += 1
            if started < crash_at:
                reads_pre += 1
                if started >= _WARMUP_MS:
                    pre_latencies.append(outcome.elapsed_ms)
            else:
                post.append((started, outcome.elapsed_ms, outcome.disposition))
        if clock.now_ms > crash_at:
            post_rounds += 1
    pre_p99 = percentile(pre_latencies, 99)
    restart_to_p99 = next(
        (t - crash_at for t, elapsed, _ in post if elapsed <= pre_p99),
        None,
    )
    warm_hits = sum(1 for _, _, d in post if d in _WARM_DISPOSITIONS)
    stats = cache.storage_stats
    return ArmResult(
        label=label,
        storage=storage,
        hostile_disk=hostile_disk,
        crash_at_ms=crash_at,
        reads_pre=reads_pre,
        reads_post=len(post),
        pre_p50_ms=percentile(pre_latencies, 50),
        pre_p99_ms=pre_p99,
        post_hit_ratio=warm_hits / len(post) if post else 0.0,
        post_warm_hits=warm_hits,
        restart_to_p99_ms=restart_to_p99,
        post_mean_ms=(
            sum(e for _, e, _ in post) / len(post) if post else 0.0
        ),
        wrong_bytes_served=wrong,
        dispositions=dict(dispositions),
        demotions=stats.demotions if stats else 0,
        promotions=stats.promotions if stats else 0,
        recovered_entries=stats.recovered_entries if stats else 0,
        recovered_promotions=stats.recovered_promotions if stats else 0,
        corrupt_records_recovered=(
            stats.corrupt_records_recovered if stats else 0
        ),
        dropped_records=stats.dropped_records if stats else 0,
        write_failures=stats.write_failures if stats else 0,
        fallback_skips=stats.fallback_skips if stats else 0,
        breaker_trips=stats.breaker_trips if stats else 0,
        breaker_closes=stats.breaker_closes if stats else 0,
    )


def main(smoke: bool = False) -> None:
    """Print the A18 persistence tables and write ``BENCH_A18.json``."""
    sizing = (
        dict(n_docs=9, crash_at=1_500.0, rounds_post=4)
        if smoke
        else dict(n_docs=18, crash_at=3_000.0, rounds_post=8)
    )
    cold = run_arm(False, label="cold", **sizing)
    warm = run_arm(True, label="warm", **sizing)
    chaos = run_arm(True, hostile_disk=True, label="diskchaos", **sizing)
    arms = (cold, warm, chaos)
    rows = [
        (
            arm.label,
            arm.storage,
            arm.hostile_disk,
            arm.reads_pre,
            arm.reads_post,
            arm.pre_p99_ms,
            f"{arm.post_hit_ratio:.0%}",
            (
                "-" if arm.restart_to_p99_ms is None
                else f"{arm.restart_to_p99_ms:.0f}"
            ),
            arm.post_mean_ms,
            arm.wrong_bytes_served,
        )
        for arm in arms
    ]
    print(
        format_table(
            [
                "arm", "storage", "hostile disk", "pre reads",
                "post reads", "pre p99 ms", "post hit ratio",
                "restart→p99 ms", "post mean ms", "wrong bytes",
            ],
            rows,
            title=(
                "A18a. Restart recovery, cold vs warm vs hostile disk "
                f"(crash at {arms[0].crash_at_ms:.0f}ms virtual; warm "
                "hit = served without a full backing fetch)"
            ),
        )
    )
    print()
    rows = [
        (
            arm.label,
            arm.demotions,
            arm.promotions,
            arm.recovered_entries,
            arm.recovered_promotions,
            arm.corrupt_records_recovered,
            arm.dropped_records,
            arm.write_failures,
            arm.fallback_skips,
            arm.breaker_trips,
            arm.breaker_closes,
        )
        for arm in arms
        if arm.storage
    ]
    print(
        format_table(
            [
                "arm", "demoted", "promoted", "recovered",
                "rec-promoted", "corrupt-dropped", "dropped",
                "write fails", "fallback skips", "trips", "closes",
            ],
            rows,
            title=(
                "A18b. Durable-tier accounting (recovered entries are "
                "verifier-gated on first serve; corrupt records are "
                "CRC-dropped at recovery, never served)"
            ),
        )
    )
    metrics = {
        "smoke": smoke,
        "arms": [
            {
                "label": arm.label,
                "storage": arm.storage,
                "hostile_disk": arm.hostile_disk,
                "crash_at_ms": arm.crash_at_ms,
                "reads_pre": arm.reads_pre,
                "reads_post": arm.reads_post,
                "pre_p50_ms": arm.pre_p50_ms,
                "pre_p99_ms": arm.pre_p99_ms,
                "post_hit_ratio": arm.post_hit_ratio,
                "post_warm_hits": arm.post_warm_hits,
                "restart_to_p99_ms": arm.restart_to_p99_ms,
                "post_mean_ms": arm.post_mean_ms,
                "wrong_bytes_served": arm.wrong_bytes_served,
                "dispositions": arm.dispositions,
                "demotions": arm.demotions,
                "promotions": arm.promotions,
                "recovered_entries": arm.recovered_entries,
                "recovered_promotions": arm.recovered_promotions,
                "corrupt_records_recovered": arm.corrupt_records_recovered,
                "dropped_records": arm.dropped_records,
                "write_failures": arm.write_failures,
                "fallback_skips": arm.fallback_skips,
                "breaker_trips": arm.breaker_trips,
                "breaker_closes": arm.breaker_closes,
            }
            for arm in arms
        ],
        "headline": {
            "warm_hits": warm.post_warm_hits,
            "cold_post_hit_ratio": cold.post_hit_ratio,
            "warm_post_hit_ratio": warm.post_hit_ratio,
            "warm_beats_cold": warm.post_hit_ratio > cold.post_hit_ratio,
            "recovered_promotions": warm.recovered_promotions,
            "corrupt_records_recovered": chaos.corrupt_records_recovered,
            "fallback_skips": chaos.fallback_skips,
            "wrong_bytes_served": sum(a.wrong_bytes_served for a in arms),
        },
    }
    path = write_artifact("a18", metrics, seed=_SEED)
    print(f"wrote {path.name}")


if __name__ == "__main__":
    main()
