"""A20: million-entry churn workloads and hot-path raw speed.

Two questions the virtual-time benches cannot answer:

1. **Raw speed** — how many reads per *wall-clock* second does the
   cache sustain on its hit path, and how much does the zero-allocation
   fast lane (:mod:`repro.cache.fastpath`) buy over the full pipeline?
2. **Scale** — does a catalog of 10^6 documents under publish/perish
   churn stay inside a bounded resident set, and how do the
   replacement policies (GDS, GDSF, LRU, and the reinforced-counter
   policy) compare when the entry table is large and the working set
   keeps shifting?

Three arms:

* ``hotpath`` — a small fully-cached corpus hammered with Zipf reads,
  once with the fast lane and once through the staged pipeline.  The
  two drivers are byte-identical loops, so the reads/sec ratio is the
  lane's speedup.  An allocation probe (``sys.getallocatedblocks``
  under a disabled GC) reports net heap blocks per hit.
* ``churn`` — one :class:`~repro.workload.churn.ChurnCatalog` per
  policy, lazily materialized by a shared churn trace with flash
  crowds and a day/night cycle.  Open loop: the driver never sleeps;
  think times advance only the virtual clock.  Reports wall reads/sec,
  wall p50/p99 per read, hit ratio, evictions, and how many documents
  the trace actually forced into existence.
* ``rss`` — ``ru_maxrss`` snapshots bracketing the arms; the final
  reading is the run's peak and is what CI gates.

CI runs ``--smoke`` and fails on a reads/sec floor, a fast-lane
speedup floor, an allocation budget, or an RSS ceiling (see
``.github/workflows/ci.yml``).  The full run drives the 10^6-document
catalog; the smoke run shrinks every axis but exercises the same code.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass
from time import perf_counter

from repro.bench.harness import format_table, percentile, write_artifact
from repro.bench.perf import allocation_probe, peak_rss_kb
from repro.cache.manager import DocumentCache
from repro.cache.replacement import make_policy
from repro.placeless.kernel import PlacelessKernel
from repro.workload.churn import (
    ChurnCatalog,
    ChurnEventKind,
    ChurnSpec,
    generate_churn,
)
from repro.workload.documents import CorpusSpec
from repro.workload.trace import zipf_indices

__all__ = [
    "HotPathResult",
    "ChurnArmResult",
    "run_hotpath",
    "run_churn_shootout",
    "main",
    "CHURN_POLICIES",
]

_SEED = 61

#: Shootout lineup: the two cost-aware paper policies, the classic
#: baseline, and the reinforced-counter policy added for this arm.
CHURN_POLICIES = ("gds", "gdsf", "lru", "rc")


@dataclass
class HotPathResult:
    """One hot-path arm: the same read loop, lane on or off."""

    lane: str
    reads: int
    wall_seconds: float
    reads_per_sec: float
    hit_ratio: float
    wall_p50_us: float
    wall_p99_us: float


@dataclass
class ChurnArmResult:
    """One policy's run over the shared churn trace."""

    policy: str
    events: int
    reads: int
    wall_seconds: float
    reads_per_sec: float
    hit_ratio: float
    wall_p50_us: float
    wall_p99_us: float
    evictions: int
    materialized: int
    rss_after_kb: float


def _hotpath_world(n_documents: int, *, fast_lane: bool):
    """A fully-cacheable corpus behind a fresh cache, lane on or off."""
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    catalog = ChurnCatalog(
        kernel, owner, CorpusSpec(n_documents=n_documents, seed=_SEED)
    )
    corpus = catalog.materialize_all()
    cache = DocumentCache(
        kernel,
        capacity_bytes=1 << 30,
        name=f"a20-hot-{'fast' if fast_lane else 'slow'}",
        fast_lane=fast_lane,
    )
    return cache, corpus


#: Reads given per-read lap timing for percentiles.  Kept separate
#: from the throughput loop: two extra ``perf_counter`` calls per read
#: are a fixed tax that flattens the fast/slow ratio.
_LATENCY_SAMPLE = 20_000


def _drive_reads(cache, corpus, trace) -> tuple[float, array]:
    """Replay *trace*; return (throughput-loop seconds, sampled lap µs).

    Two passes over the same reference sequence: a tight loop timed as
    a whole (the reads/sec number), then a lap-timed sample for
    p50/p99.  Both arms of the hot-path comparison run the identical
    driver, so the ratio is the cache's, not the harness's.
    """
    references = [corpus[index].reference for index in trace]
    read = cache.read
    started = perf_counter()
    for reference in references:
        read(reference)
    wall = perf_counter() - started
    laps = array("d")
    for reference in references[:_LATENCY_SAMPLE]:
        lap = perf_counter()
        read(reference)
        laps.append((perf_counter() - lap) * 1e6)
    return wall, laps


def run_hotpath(
    n_documents: int = 256,
    n_reads: int = 200_000,
    zipf_alpha: float = 0.8,
) -> list[HotPathResult]:
    """Fast lane vs. staged pipeline on an all-hits workload."""
    trace = zipf_indices(n_documents, n_reads, zipf_alpha, seed=_SEED + 1)
    results = []
    for lane, fast_lane in (("fast", True), ("pipeline", False)):
        cache, corpus = _hotpath_world(n_documents, fast_lane=fast_lane)
        for document in corpus:  # warm: every subsequent read is a hit
            cache.read(document.reference)
        wall, laps = _drive_reads(cache, corpus, trace)
        results.append(
            HotPathResult(
                lane=lane,
                reads=n_reads,
                wall_seconds=wall,
                reads_per_sec=n_reads / wall,
                hit_ratio=cache.stats.hit_ratio,
                wall_p50_us=percentile(laps, 50.0),
                wall_p99_us=percentile(laps, 99.0),
            )
        )
    return results


def run_allocation_probe(n_documents: int = 64) -> float:
    """Net heap blocks per steady-state fast-lane hit."""
    cache, corpus = _hotpath_world(n_documents, fast_lane=True)
    for document in corpus:
        cache.read(document.reference)
    rng = random.Random(_SEED + 2)
    references = [document.reference for document in corpus]

    def one_hit() -> None:
        cache.read(references[rng.randrange(len(references))])

    return allocation_probe(one_hit, iterations=256, warmup=64)


def _churn_capacity(catalog: ChurnCatalog, fraction: float) -> int:
    total = sum(catalog.size_of(index) for index in range(len(catalog)))
    return max(1 << 20, int(total * fraction))


def run_churn_shootout(
    policies: tuple[str, ...] = CHURN_POLICIES,
    n_documents: int = 1_000_000,
    n_events: int = 300_000,
    capacity_fraction: float = 0.02,
    zipf_alpha: float = 1.1,
) -> list[ChurnArmResult]:
    """Replay one churn trace per policy over a lazily-built catalog.

    Every policy sees an identical trace (same :class:`ChurnSpec`
    seed): publish/perish churn, a rare flash crowd, and a day/night
    think-time cycle.  The catalog materializes documents only when
    the trace first touches them, which is what keeps a 10^6-document
    run inside a bounded resident set.
    """
    spec = ChurnSpec(
        n_events=n_events,
        n_documents=n_documents,
        n_live_start=n_documents,
        n_users=4,
        zipf_alpha=zipf_alpha,
        p_write=0.02,
        p_publish=0.0,  # catalog starts fully live; perish-only churn
        p_perish=0.002,
        p_flash=0.0005,
        flash_duration=400,
        flash_share=0.6,
        cycle_period=max(1, n_events // 8),
        day_fraction=0.7,
        night_think_factor=4.0,
        mean_think_time_ms=1.0,
        seed=_SEED,
    )
    results = []
    for policy_name in policies:
        kernel = PlacelessKernel()
        owner = kernel.create_user("owner")
        catalog = ChurnCatalog(
            kernel, owner, CorpusSpec(n_documents=n_documents, seed=_SEED)
        )
        cache = DocumentCache(
            kernel,
            capacity_bytes=_churn_capacity(catalog, capacity_fraction),
            policy=make_policy(policy_name, seed=_SEED),
            name=f"a20-{policy_name}",
        )
        clock = kernel.ctx.clock
        laps = array("d")
        events = reads = 0
        started = perf_counter()
        for event in generate_churn(spec):
            events += 1
            if event.think_time_ms:
                clock.advance(event.think_time_ms)
            if event.kind is ChurnEventKind.READ:
                reference = catalog.document(event.document_index).reference
                lap = perf_counter()
                cache.read(reference)
                laps.append((perf_counter() - lap) * 1e6)
                reads += 1
            elif event.kind is ChurnEventKind.WRITE:
                reference = catalog.document(event.document_index).reference
                cache.write(reference, b"churn-update-%d" % event.detail)
            elif event.kind is ChurnEventKind.PERISH:
                document = catalog.peek(event.document_index)
                if document is not None:
                    cache.invalidate_document(
                        document.reference.base.document_id
                    )
            # PUBLISH is bookkeeping only: the catalog materializes the
            # newcomer lazily when a later READ first touches it.
        wall = perf_counter() - started
        results.append(
            ChurnArmResult(
                policy=policy_name,
                events=events,
                reads=reads,
                wall_seconds=wall,
                reads_per_sec=reads / wall if wall else 0.0,
                hit_ratio=cache.stats.hit_ratio,
                wall_p50_us=percentile(laps, 50.0),
                wall_p99_us=percentile(laps, 99.0),
                evictions=cache.stats.evictions,
                materialized=catalog.materialized_count,
                rss_after_kb=peak_rss_kb(),
            )
        )
    return results


def _format_hotpath(results: list[HotPathResult]) -> str:
    rows = [
        [
            r.lane,
            f"{r.reads}",
            f"{r.reads_per_sec:,.0f}",
            f"{r.wall_p50_us:.1f}",
            f"{r.wall_p99_us:.1f}",
            f"{r.hit_ratio:.3f}",
        ]
        for r in results
    ]
    return format_table(
        ["lane", "reads", "reads/s", "p50 µs", "p99 µs", "hit ratio"], rows
    )


def _format_churn(results: list[ChurnArmResult]) -> str:
    rows = [
        [
            r.policy,
            f"{r.reads}",
            f"{r.reads_per_sec:,.0f}",
            f"{r.wall_p50_us:.1f}",
            f"{r.wall_p99_us:.1f}",
            f"{r.hit_ratio:.3f}",
            f"{r.evictions}",
            f"{r.materialized}",
            f"{r.rss_after_kb / 1024.0:,.0f}",
        ]
        for r in results
    ]
    return format_table(
        [
            "policy",
            "reads",
            "reads/s",
            "p50 µs",
            "p99 µs",
            "hit ratio",
            "evict",
            "docs built",
            "rss MiB",
        ],
        rows,
    )


def main(smoke: bool = False) -> None:
    """Run all three arms, print the tables, write ``BENCH_A20.json``."""
    if smoke:
        hot = run_hotpath(n_documents=128, n_reads=60_000)
        blocks_per_hit = run_allocation_probe(n_documents=32)
        churn = run_churn_shootout(
            n_documents=5_000, n_events=4_000, zipf_alpha=0.9
        )
    else:
        hot = run_hotpath()
        blocks_per_hit = run_allocation_probe()
        churn = run_churn_shootout()

    fast = next(r for r in hot if r.lane == "fast")
    slow = next(r for r in hot if r.lane == "pipeline")
    speedup = fast.reads_per_sec / slow.reads_per_sec

    print("A20 hot path: fast lane vs. staged pipeline")
    print(_format_hotpath(hot))
    print(f"\nfast-lane speedup: {speedup:.2f}x")
    print(f"allocation probe: {blocks_per_hit:.1f} heap blocks per hit")
    print("\nA20 churn shootout (identical trace per policy)")
    print(_format_churn(churn))
    peak_kb = peak_rss_kb()
    print(f"\npeak RSS: {peak_kb / 1024.0:,.0f} MiB")

    metrics = {
        "smoke": smoke,
        "hotpath": {
            r.lane: {
                "reads": r.reads,
                "wall_seconds": round(r.wall_seconds, 4),
                "reads_per_sec": round(r.reads_per_sec, 1),
                "hit_ratio": round(r.hit_ratio, 4),
                "wall_p50_us": round(r.wall_p50_us, 2),
                "wall_p99_us": round(r.wall_p99_us, 2),
            }
            for r in hot
        },
        "fast_lane_speedup": round(speedup, 3),
        "blocks_per_hit": round(blocks_per_hit, 2),
        "churn": {
            r.policy: {
                "events": r.events,
                "reads": r.reads,
                "wall_seconds": round(r.wall_seconds, 4),
                "reads_per_sec": round(r.reads_per_sec, 1),
                "hit_ratio": round(r.hit_ratio, 4),
                "wall_p50_us": round(r.wall_p50_us, 2),
                "wall_p99_us": round(r.wall_p99_us, 2),
                "evictions": r.evictions,
                "materialized": r.materialized,
                "rss_after_kb": round(r.rss_after_kb, 1),
            }
            for r in churn
        },
        "catalog_documents": 5_000 if smoke else 1_000_000,
        "peak_rss_kb": round(peak_kb, 1),
    }
    path = write_artifact("a20", metrics, seed=_SEED)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
