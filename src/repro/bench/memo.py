"""A15: transform memoization — chain executions avoided, miss latency.

§3's signature sharing covers users with *live* identical entries; the
transform memo extends it across time: ``(source signature, chain
fingerprint) → output signature``, so the second user's cold miss
becomes a signature adoption instead of a provider fetch plus a full
active-property chain execution.  This bench sweeps the user count with
the memo on and off over a corpus whose base documents carry a shared
(expensive, buffered) translation chain, and reports:

* chain executions (kernel reads — each one runs the full chain) and
  the fraction the memo avoided (ideal for N users: ``1 - 1/N``);
* cold-read virtual latency mean/p50/p99 — memoized misses skip the
  repository hop and the chain's execution cost;
* the per-emit instrumentation overhead note for the satellite fast
  path (an unobserved bus skips ``StageEvent`` construction entirely).

The run writes ``BENCH_A15.json`` through the shared artifact writer;
CI's perf-smoke job fails the build when the shared-users scenario
avoids zero chain executions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.harness import format_table, mean, percentile, write_artifact
from repro.cache.instrumentation import InstrumentationBus, StageEvent
from repro.cache.manager import DocumentCache
from repro.cache.policies import DefaultMemoPolicy
from repro.placeless.kernel import PlacelessKernel
from repro.properties.translate import TranslationProperty
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.users import build_population

__all__ = ["MemoResult", "run_memo", "run_sweep", "run_overhead_probe", "main"]

_SEED = 31


@dataclass
class MemoResult:
    """Metrics of one (user count, memo on/off) cold-read run."""

    n_users: int
    n_documents: int
    memo: bool
    reads: int
    chain_executions: int
    mean_ms: float
    p50_ms: float
    p99_ms: float
    memo_adoptions: int

    @property
    def chain_executions_avoided(self) -> int:
        """Chain runs the memo saved versus one-per-read."""
        return self.reads - self.chain_executions

    @property
    def avoided_pct(self) -> float:
        """Fraction of reads that skipped the chain (0.0 when empty)."""
        if not self.reads:
            return 0.0
        return self.chain_executions_avoided / self.reads


def run_memo(
    n_users: int,
    memo: bool,
    n_documents: int = 8,
    seed: int = _SEED,
) -> MemoResult:
    """Cold-read every (user, document) pair once, memo on or off.

    Every base document carries the same translation chain, so all
    users' reads share one (source signature, chain fingerprint) pair
    per document — the memo's best case, and the workload §3 describes
    ("all the transformations requested by the users are the same").
    """
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel,
        owner,
        CorpusSpec(n_documents=n_documents, ttl_ms=3_600_000.0, seed=seed),
    )
    for document in corpus:
        document.reference.base.attach(TranslationProperty())
    population = build_population(
        kernel, corpus, n_users, personalized_fraction=0.0, seed=seed
    )
    cache = DocumentCache(
        kernel,
        capacity_bytes=1 << 30,
        memo_policy=DefaultMemoPolicy() if memo else None,
        name=f"a15-{n_users}-{'on' if memo else 'off'}",
    )
    reads_before = kernel.stats.reads
    latencies = []
    for user_index in range(n_users):
        for document_index in range(n_documents):
            outcome = cache.read(
                population.reference(user_index, document_index)
            )
            latencies.append(outcome.elapsed_ms)
    stats = cache.memo_stats
    return MemoResult(
        n_users=n_users,
        n_documents=n_documents,
        memo=memo,
        reads=len(latencies),
        chain_executions=kernel.stats.reads - reads_before,
        mean_ms=mean(latencies),
        p50_ms=percentile(latencies, 50),
        p99_ms=percentile(latencies, 99),
        memo_adoptions=stats.adoptions if stats is not None else 0,
    )


def run_sweep(
    user_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    n_documents: int = 8,
    seed: int = _SEED,
) -> list[MemoResult]:
    """The A15 sweep: every user count, memo off then on."""
    results = []
    for n_users in user_counts:
        for memo in (False, True):
            results.append(
                run_memo(n_users, memo, n_documents=n_documents, seed=seed)
            )
    return results


def run_overhead_probe(iterations: int = 100_000) -> dict[str, float]:
    """Wall-clock per-emit cost of the instrumentation fast path.

    Mirrors the emit site in :meth:`CacheCore.emit`: an unobserved bus
    costs one attribute load and a truth test; a subscribed bus builds
    the (slotted) :class:`StageEvent` and fans it out.  This is the one
    real-time measurement in the suite — it characterises simulator
    overhead, not virtual-clock behaviour, so it never touches the
    simulation results.
    """

    def emit_site(bus: InstrumentationBus) -> None:
        if not bus.has_subscribers:
            return
        bus.emit(StageEvent(stage="read", outcome="hit"))

    idle_bus = InstrumentationBus()
    started = time.perf_counter()
    for _ in range(iterations):
        emit_site(idle_bus)
    idle_s = time.perf_counter() - started

    observed_bus = InstrumentationBus()
    sink: list[StageEvent] = []
    observed_bus.subscribe(sink.append)
    started = time.perf_counter()
    for _ in range(iterations):
        emit_site(observed_bus)
    observed_s = time.perf_counter() - started
    sink.clear()
    return {
        "emits": float(iterations),
        "unobserved_ns_per_emit": idle_s / iterations * 1e9,
        "subscribed_ns_per_emit": observed_s / iterations * 1e9,
    }


def main(smoke: bool = False) -> None:
    """Print the A15 tables and write ``BENCH_A15.json``."""
    if smoke:
        user_counts: tuple[int, ...] = (1, 4)
        n_documents = 4
    else:
        user_counts = (1, 2, 4, 8, 16)
        n_documents = 8
    results = run_sweep(user_counts=user_counts, n_documents=n_documents)
    print(
        format_table(
            [
                "users", "memo", "reads", "chain execs", "avoided",
                "avoided %", "mean ms", "p50 ms", "p99 ms",
            ],
            [
                (
                    r.n_users,
                    r.memo,
                    r.reads,
                    r.chain_executions,
                    r.chain_executions_avoided,
                    f"{r.avoided_pct:.1%}",
                    r.mean_ms,
                    r.p50_ms,
                    r.p99_ms,
                )
                for r in results
            ],
            title=(
                "A15. Transform memoization: cold reads, every user "
                f"sharing one translation chain ({n_documents} "
                "documents; memo ideal avoided = 1 - 1/users)"
            ),
        )
    )
    overhead = run_overhead_probe()
    print(
        "\nInstrumentation fast path (wall clock, "
        f"{overhead['emits']:.0f} emits): "
        f"{overhead['unobserved_ns_per_emit']:.0f} ns/emit unobserved vs "
        f"{overhead['subscribed_ns_per_emit']:.0f} ns/emit subscribed — "
        "an unobserved bus skips StageEvent construction entirely."
    )
    shared = max(
        (r for r in results if r.memo), key=lambda r: r.n_users
    )
    baseline = next(
        r for r in results
        if not r.memo and r.n_users == shared.n_users
    )
    metrics = {
        "sweep": [
            {
                "n_users": r.n_users,
                "n_documents": r.n_documents,
                "memo": r.memo,
                "reads": r.reads,
                "chain_executions": r.chain_executions,
                "chain_executions_avoided": r.chain_executions_avoided,
                "avoided_pct": r.avoided_pct,
                "mean_ms": r.mean_ms,
                "p50_ms": r.p50_ms,
                "p99_ms": r.p99_ms,
            }
            for r in results
        ],
        "shared": {
            "n_users": shared.n_users,
            "reads": shared.reads,
            "chain_executions": shared.chain_executions,
            "chain_executions_avoided": shared.chain_executions_avoided,
            "avoided_pct": shared.avoided_pct,
            "mean_ms_memo_on": shared.mean_ms,
            "mean_ms_memo_off": baseline.mean_ms,
        },
        "overhead": overhead,
        "smoke": smoke,
    }
    path = write_artifact("a15", metrics, seed=_SEED)
    print(f"\nwrote {path.name}")


if __name__ == "__main__":
    main()
