"""A6: QoS properties inflate replacement costs to hold their targets.

§5: "Quality of Service (QoS) properties, like 'always available' or
'access time < .25 seconds', may need to specify caching requirements to
tailor cache replacement policies.  One possibility for QoS properties
to influence cache replacement is to inflate replacement costs."

The adversarial setup: the QoS-tagged documents sit in the *unpopular*
tail of a Zipf trace, under a cache an order of magnitude smaller than
the corpus.  A recency/size policy — or GDS without the inflation — keeps
the popular documents and evicts the QoS ones, blowing their access-time
target whenever they are read.  With inflation, their inflated
Greedy-Dual value keeps them resident.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import format_table
from repro.cache.manager import DocumentCache
from repro.cache.replacement import GreedyDualSizePolicy
from repro.placeless.kernel import PlacelessKernel
from repro.properties.qos import QoSProperty
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.trace import zipf_indices

__all__ = ["QoSResult", "run_qos", "main"]


@dataclass
class QoSResult:
    """Metrics of one configuration (inflation on/off)."""

    config: str
    qos_accesses: int
    qos_compliant: int
    qos_compliance: float
    qos_mean_latency_ms: float
    overall_hit_ratio: float


def _run_config(
    inflate: bool,
    n_documents: int,
    n_qos: int,
    n_reads: int,
    target_ms: float,
    capacity_fraction: float,
    seed: int,
) -> QoSResult:
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel,
        owner,
        CorpusSpec(n_documents=n_documents, ttl_ms=3_600_000.0, seed=seed),
    )
    # QoS documents: the least popular tail of the Zipf ordering.
    qos_indices = set(range(n_documents - n_qos, n_documents))
    qos_props: dict[int, QoSProperty] = {}
    for index in qos_indices:
        prop = QoSProperty(
            max_access_time_ms=target_ms,
            inflation_ms=None if inflate else 0.0,
        )
        corpus[index].reference.attach(prop)
        qos_props[index] = prop

    capacity = max(
        4096, int(sum(d.size_bytes for d in corpus) * capacity_fraction)
    )
    cache = DocumentCache(
        kernel,
        capacity_bytes=capacity,
        policy=GreedyDualSizePolicy(),
        name=f"a6-{'inflate' if inflate else 'flat'}",
    )
    trace = zipf_indices(n_documents, n_reads, alpha=0.9, seed=seed + 5)
    # Ensure every QoS document appears periodically even if the Zipf
    # tail missed it: interleave one QoS round per 100 steps.
    qos_cycle = sorted(qos_indices)
    for step, document_index in enumerate(trace):
        if step % 100 == 99:
            document_index = qos_cycle[(step // 100) % len(qos_cycle)]
        outcome = cache.read(corpus[document_index].reference)
        prop = qos_props.get(document_index)
        if prop is not None:
            prop.record_access(outcome.elapsed_ms)

    accesses = sum(len(p.observed_access_times_ms) for p in qos_props.values())
    violations = sum(p.violations for p in qos_props.values())
    latency = sum(
        sum(p.observed_access_times_ms) for p in qos_props.values()
    )
    return QoSResult(
        config="inflated" if inflate else "no-inflation",
        qos_accesses=accesses,
        qos_compliant=accesses - violations,
        qos_compliance=(accesses - violations) / accesses if accesses else 1.0,
        qos_mean_latency_ms=latency / accesses if accesses else 0.0,
        overall_hit_ratio=cache.stats.hit_ratio,
    )


def run_qos(
    n_documents: int = 120,
    n_qos: int = 12,
    n_reads: int = 3000,
    target_ms: float = 5.0,
    capacity_fraction: float = 0.08,
    seed: int = 41,
) -> list[QoSResult]:
    """Run with and without inflation over identical traces.

    The default target (5 virtual ms) means "must hit in cache": any
    full-path read of a www document blows it, mirroring the paper's
    "access time < .25 seconds" against 1999 WAN latencies.
    """
    return [
        _run_config(
            inflate,
            n_documents,
            n_qos,
            n_reads,
            target_ms,
            capacity_fraction,
            seed,
        )
        for inflate in (False, True)
    ]


def main() -> None:
    """Print the A6 table."""
    rows = run_qos()
    print(
        format_table(
            [
                "config",
                "qos accesses",
                "compliant",
                "compliance",
                "qos mean latency (ms)",
                "overall hit ratio",
            ],
            [
                (
                    r.config,
                    r.qos_accesses,
                    r.qos_compliant,
                    r.qos_compliance,
                    r.qos_mean_latency_ms,
                    r.overall_hit_ratio,
                )
                for r in rows
            ],
            title="A6. QoS replacement-cost inflation keeps tail documents "
            "resident under pressure.",
        )
    )


if __name__ == "__main__":
    main()
