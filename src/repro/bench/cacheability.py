"""A4: cacheability indicators and event forwarding vs. "make it uncacheable".

§3: the WWW's solution to operation-tracking "generally is to make those
pages for which operations are tracked uncacheable.  For Placeless that
seemed an unreasonable restriction."  Instead, properties vote
``CACHEABLE_WITH_EVENTS`` and the cache forwards operations as events.

Three configurations of the same read-audit scenario:

* **unrestricted** — no audit property (no tracking at all): the latency
  baseline, but the audit trail is empty;
* **with-events** — the audit property votes CACHEABLE_WITH_EVENTS: hits
  are served from the cache *and* forwarded, so the trail is complete;
* **uncacheable** — the WWW-style alternative: the audited document is
  simply not cached; the trail is complete but every read pays the full
  path.

The table shows event forwarding gets (nearly) unrestricted latency with
a complete audit trail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import format_table
from repro.cache.manager import DocumentCache
from repro.placeless.kernel import PlacelessKernel
from repro.properties.audit import ReadAuditTrailProperty
from repro.properties.uncacheable import UncacheableProperty
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.trace import zipf_indices

__all__ = ["CacheabilityResult", "run_cacheability", "main"]


@dataclass
class CacheabilityResult:
    """Metrics of one configuration."""

    config: str
    hit_ratio: float
    mean_latency_ms: float
    forwarded_reads: int
    reads_observed_by_audit: int
    total_reads: int

    @property
    def audit_complete(self) -> bool:
        """Did the audit trail see every read?"""
        if self.config == "unrestricted":
            return False  # there is no audit property at all
        return self.reads_observed_by_audit == self.total_reads


def _run_config(
    config: str, n_documents: int, n_reads: int, seed: int
) -> CacheabilityResult:
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel,
        owner,
        CorpusSpec(n_documents=n_documents, ttl_ms=3_600_000.0, seed=seed),
    )
    audits: list[ReadAuditTrailProperty] = []
    for document in corpus:
        if config == "with-events":
            audit = ReadAuditTrailProperty()
            document.reference.attach(audit)
            audits.append(audit)
        elif config == "uncacheable":
            audit = ReadAuditTrailProperty()
            document.reference.attach(audit)
            document.reference.attach(UncacheableProperty())
            audits.append(audit)
    cache = DocumentCache(
        kernel, capacity_bytes=1 << 30, name=f"a4-{config}"
    )
    total_latency = 0.0
    trace = zipf_indices(n_documents, n_reads, alpha=0.8, seed=seed)
    for document_index in trace:
        outcome = cache.read(corpus[document_index].reference)
        total_latency += outcome.elapsed_ms
    observed = sum(a.reads_observed for a in audits)
    return CacheabilityResult(
        config=config,
        hit_ratio=cache.stats.hit_ratio,
        mean_latency_ms=total_latency / n_reads,
        forwarded_reads=cache.stats.forwarded_reads,
        reads_observed_by_audit=observed,
        total_reads=n_reads,
    )


def run_cacheability(
    n_documents: int = 30, n_reads: int = 1200, seed: int = 31
) -> list[CacheabilityResult]:
    """Run the three configurations over identical traces."""
    return [
        _run_config(config, n_documents, n_reads, seed)
        for config in ("unrestricted", "with-events", "uncacheable")
    ]


def main() -> None:
    """Print the A4 table."""
    rows = run_cacheability()
    print(
        format_table(
            [
                "config",
                "hit ratio",
                "mean latency (ms)",
                "forwarded reads",
                "audit saw",
                "audit complete",
            ],
            [
                (
                    r.config,
                    r.hit_ratio,
                    r.mean_latency_ms,
                    r.forwarded_reads,
                    f"{r.reads_observed_by_audit}/{r.total_reads}",
                    r.audit_complete,
                )
                for r in rows
            ],
            title="A4. CACHEABLE_WITH_EVENTS keeps tracking complete at "
            "near-cache latency; the WWW alternative pays full latency.",
        )
    )


if __name__ == "__main__":
    main()
