"""A8: cache placement — application-level, server co-located, both.

§4: "We also experimented with caches co-located with the Placeless
server and on the machine where applications are run."

Three deployments over the same multi-user Zipf workload:

* **app-level** — each user machine runs its own cache (hits are local,
  but no cross-user sharing: every machine fills independently);
* **server** — one cache at the Placeless reference server (hits cross
  the app→server hop, but all users share one cache, so a document any
  user fetched is warm for everyone);
* **both** — per-user app-level caches backed by the shared server cache
  (the two-level hierarchy): local hits where possible, server hits
  where a sibling already fetched, full path only on a global miss;
* **server+adoption** / **both+adoption** — the same with §3's
  signature-adoption optimization enabled at the server cache, so a
  user's first access to a document another (identically-configured)
  user already fetched is served by establishing the signature mapping
  instead of running the full read path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import format_table
from repro.cache.manager import DocumentCache
from repro.cache.notifiers import InvalidationBus
from repro.placeless.kernel import PlacelessKernel
from repro.sim.topology import CachePlacement
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.trace import TraceSpec, generate_trace
from repro.workload.users import build_population

__all__ = ["PlacementResult", "run_placement", "main"]


@dataclass
class PlacementResult:
    """Metrics of one deployment."""

    deployment: str
    mean_latency_ms: float
    #: Fraction of reads answered without running the full read path.
    combined_hit_ratio: float
    l1_hit_ratio: float
    l2_hit_ratio: float
    kernel_reads: int
    bytes_cached: int


def _workload(n_documents: int, n_users: int, n_events: int, seed: int):
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel, owner,
        CorpusSpec(n_documents=n_documents, ttl_ms=3_600_000.0, seed=seed),
    )
    population = build_population(
        kernel, corpus, n_users, personalized_fraction=0.0, seed=seed
    )
    spec = TraceSpec(
        n_events=n_events, n_documents=n_documents, n_users=n_users,
        zipf_alpha=0.8, seed=seed + 3,
    )
    return kernel, corpus, population, list(generate_trace(spec))


def _run(deployment: str, n_documents: int, n_users: int, n_events: int,
         capacity: int, seed: int) -> PlacementResult:
    kernel, corpus, population, trace = _workload(
        n_documents, n_users, n_events, seed
    )
    bus = InvalidationBus(kernel.ctx)

    adoption = deployment.endswith("+adoption")
    tier = deployment.removesuffix("+adoption")
    server_cache = None
    if tier in ("server", "both"):
        server_cache = DocumentCache(
            kernel, capacity_bytes=capacity, bus=bus,
            placement=CachePlacement.SERVER_COLOCATED,
            share_across_users=adoption, name="a8-server",
        )
    app_caches: list[DocumentCache] = []
    if tier in ("app-level", "both"):
        app_caches = [
            DocumentCache(
                kernel, capacity_bytes=capacity, bus=bus,
                placement=CachePlacement.APPLICATION_LEVEL,
                backing=server_cache,
                name=f"a8-app-{user_index}",
            )
            for user_index in range(n_users)
        ]

    total_latency = 0.0
    for event in trace:
        reference = population.reference(event.user_index, event.document_index)
        if tier == "server":
            outcome = server_cache.read(reference)
        else:
            outcome = app_caches[event.user_index].read(reference)
        total_latency += outcome.elapsed_ms

    l1_hits = sum(c.stats.hits for c in app_caches)
    l1_lookups = sum(c.stats.lookups for c in app_caches)
    l2_hits = server_cache.stats.hits if server_cache else 0
    l2_lookups = server_cache.stats.lookups if server_cache else 0
    combined_hits = l1_hits + l2_hits
    bytes_cached = sum(c.used_bytes for c in app_caches)
    if server_cache is not None:
        bytes_cached += server_cache.used_bytes
    return PlacementResult(
        deployment=deployment,
        mean_latency_ms=total_latency / len(trace),
        combined_hit_ratio=combined_hits / len(trace),
        l1_hit_ratio=l1_hits / l1_lookups if l1_lookups else 0.0,
        l2_hit_ratio=l2_hits / l2_lookups if l2_lookups else 0.0,
        kernel_reads=kernel.stats.reads,
        bytes_cached=bytes_cached,
    )


def run_placement(
    n_documents: int = 60,
    n_users: int = 6,
    n_events: int = 2400,
    capacity: int = 64 << 20,
    seed: int = 19,
) -> list[PlacementResult]:
    """Run the three deployments over identical workloads."""
    return [
        _run(deployment, n_documents, n_users, n_events, capacity, seed)
        for deployment in (
            "app-level", "server", "server+adoption", "both", "both+adoption",
        )
    ]


def main() -> None:
    """Print the A8 table."""
    rows = run_placement()
    print(
        format_table(
            ["deployment", "mean latency (ms)", "combined hit ratio",
             "L1 hit ratio", "L2 hit ratio", "kernel reads", "cached MB"],
            [
                (r.deployment, r.mean_latency_ms, r.combined_hit_ratio,
                 r.l1_hit_ratio, r.l2_hit_ratio, r.kernel_reads,
                 r.bytes_cached / 1e6)
                for r in rows
            ],
            title="A8. Cache placement: application-level vs. server "
            "co-located vs. a two-level hierarchy (6 users, shared docs).",
        )
    )


if __name__ == "__main__":
    main()
