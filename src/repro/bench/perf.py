"""Wall-clock, RSS and allocation measurement for the perf benches.

Everything else in :mod:`repro.bench` measures *virtual* time — the
simulation's latency model.  The A20 scale bench measures the
*interpreter*: how many reads per wall-clock second the cache sustains,
how much resident memory a million-entry table costs, and how many
heap blocks one hit allocates.  The helpers here are the shared
instruments:

* :func:`timed` — monotonic wall-clock timing of a callable;
* :func:`peak_rss_kb` — the process high-water mark from ``getrusage``
  (kilobytes on Linux; normalized from bytes on macOS);
* :func:`allocation_probe` — heap blocks allocated per operation,
  measured with ``sys.getallocatedblocks`` under a disabled collector
  so a concurrent GC cannot turn a zero-allocation loop into a
  negative number;
* :func:`tracemalloc_breakdown` — optional top-N allocation-site
  attribution for diagnosing a budget regression (never used inside a
  timed section: tracemalloc multiplies allocation cost).
"""

from __future__ import annotations

import gc
import resource
import sys
import time
import tracemalloc
from typing import Any, Callable, TypeVar

__all__ = [
    "timed",
    "peak_rss_kb",
    "allocation_probe",
    "tracemalloc_breakdown",
]

T = TypeVar("T")


def timed(fn: Callable[[], T]) -> tuple[T, float]:
    """Run *fn*; return ``(result, elapsed_seconds)`` (monotonic)."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def peak_rss_kb() -> float:
    """The process's peak resident set size, in kilobytes.

    ``ru_maxrss`` is a high-water mark: it never decreases, so per-arm
    readings in a multi-arm bench are monotone and the *final* reading
    is the run's true peak.  Linux reports kilobytes, macOS bytes.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return rss / 1024.0
    return float(rss)


def allocation_probe(
    operation: Callable[[], Any],
    iterations: int = 128,
    warmup: int = 32,
) -> float:
    """Mean heap blocks allocated (net) per call of *operation*.

    The warmup laps populate caches (interned keys, memoized
    signatures, recorder cells) so the steady state is what gets
    measured.  The collector is disabled across the measured laps:
    ``sys.getallocatedblocks`` counts live blocks, and a GC pass in the
    middle of the window would deflate (or sign-flip) the delta.
    """
    for _ in range(warmup):
        operation()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        gc.collect()
        before = sys.getallocatedblocks()
        for _ in range(iterations):
            operation()
        after = sys.getallocatedblocks()
    finally:
        if was_enabled:
            gc.enable()
    return (after - before) / iterations


def tracemalloc_breakdown(
    operation: Callable[[], Any],
    iterations: int = 64,
    top: int = 10,
) -> list[str]:
    """Top allocation sites for *operation*, one formatted line each.

    Diagnostic only — run it when :func:`allocation_probe` exceeds a
    budget to see *where* the blocks come from; never inside a timed
    section.
    """
    tracemalloc.start()
    try:
        baseline = tracemalloc.take_snapshot()
        for _ in range(iterations):
            operation()
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    stats = snapshot.compare_to(baseline, "lineno")[:top]
    return [str(stat) for stat in stats]
