"""A5: the four consistency classes invalidate exactly the affected entries.

§3 enumerates four ways cached transformed content becomes invalid.  This
experiment scripts one mutation per class against a shared document
cached for three users (one personalizing, two plain) and verifies, per
mutation, *which* entries were invalidated and under which reason:

1a. in-band source write (another user, through Placeless) → all users;
1b. out-of-band repository update → caught per-user at next access by
    the verifier;
2.  personal transforming property added/upgraded/removed → that user;
2'. universal transforming property added → all users;
3.  property chain reordered → affected user;
4.  external data a property depends on changed → caught by a
    threshold/TTL verifier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import format_table
from repro.cache.manager import DocumentCache
from repro.placeless.kernel import PlacelessKernel
from repro.properties.spellcheck import SpellingCorrectorProperty
from repro.properties.summarize import SummaryProperty
from repro.properties.translate import TranslationProperty
from repro.providers.simfs import SimulatedFileSystem
from repro.providers.filesystem import FileSystemProvider
from repro.workload.documents import generate_text

__all__ = ["InvalidationStep", "run_invalidation_classes", "main"]


@dataclass
class InvalidationStep:
    """Outcome of one scripted mutation."""

    step: str
    consistency_class: str
    #: Which of the three users' next reads missed (entry invalidated).
    invalidated_users: tuple[str, ...]
    #: Which users' reads still hit (entries survived, as they should).
    survived_users: tuple[str, ...]
    #: Reasons recorded by the cache since the previous step.
    reasons: tuple[str, ...]


def run_invalidation_classes(seed: int = 3) -> list[InvalidationStep]:
    """Run the scripted scenario; every step re-warms the cache first."""
    kernel = PlacelessKernel()
    users = {name: kernel.create_user(name) for name in ("eyal", "paul", "doug")}
    filesystem = SimulatedFileSystem(kernel.ctx.clock)
    filesystem.write("/tilde/edelara/hotos.doc", generate_text(4000, seed))
    provider = FileSystemProvider(
        kernel.ctx, filesystem, "/tilde/edelara/hotos.doc"
    )
    base = kernel.create_document(users["eyal"], provider, "hotos.doc")
    refs = {
        name: kernel.space(user).add_reference(base, name)
        for name, user in users.items()
    }
    # Eyal personalizes with a spell-corrector (Figure 1).
    eyal_chain = [SpellingCorrectorProperty(), SummaryProperty(max_sentences=50)]
    for prop in eyal_chain:
        refs["eyal"].attach(prop)

    cache = DocumentCache(kernel, capacity_bytes=1 << 30, name="a5")

    def warm() -> None:
        for ref in refs.values():
            cache.read(ref)

    def probe(step: str, klass: str, seen: set) -> InvalidationStep:
        invalidated, survived = [], []
        for name, ref in refs.items():
            outcome = cache.read(ref)
            (invalidated if not outcome.hit else survived).append(name)
        new_reasons = tuple(
            sorted(
                reason.value
                for reason, count in cache.stats.invalidations.items()
                if count > seen.get(reason, 0)
            )
        )
        return InvalidationStep(
            step=step,
            consistency_class=klass,
            invalidated_users=tuple(sorted(invalidated)),
            survived_users=tuple(sorted(survived)),
            reasons=new_reasons,
        )

    steps: list[InvalidationStep] = []

    def snapshot() -> dict:
        return dict(cache.stats.invalidations)

    # -- class 1a: in-band write by Doug ---------------------------------------
    warm()
    seen = snapshot()
    kernel.write(refs["doug"], generate_text(4100, seed + 1))
    steps.append(probe("doug writes through Placeless", "1 (in-band)", seen))

    # -- class 1b: out-of-band repository update -------------------------------
    warm()
    seen = snapshot()
    filesystem.write("/tilde/edelara/hotos.doc", generate_text(4200, seed + 2))
    steps.append(probe("file changed on the filer", "1 (out-of-band)", seen))

    # -- class 2 (personal): Paul attaches a translator -------------------------
    warm()
    seen = snapshot()
    paul_translator = TranslationProperty()
    refs["paul"].attach(paul_translator)
    steps.append(probe("paul adds translate-to-french", "2 (personal add)", seen))

    # -- class 2 (modify): Eyal upgrades his spell-corrector -------------------
    warm()
    seen = snapshot()
    eyal_chain[0].upgrade_dictionary({"performance": "performance"})
    steps.append(probe("eyal upgrades spell-corrector", "2 (modify)", seen))

    # -- class 2 (universal): versioning-style transform added at base ---------
    warm()
    seen = snapshot()
    universal_summary = SummaryProperty(name="abstract-only")
    base.attach(universal_summary)
    steps.append(probe("universal summary added at base", "2 (universal add)", seen))

    # -- class 3: Eyal reorders his chain -----------------------------------------
    warm()
    seen = snapshot()
    chain_ids = [p.property_id for p in refs["eyal"].active_properties()
                 if not p.name.startswith("notify")]
    other_ids = [p.property_id for p in refs["eyal"].active_properties()
                 if p.name.startswith("notify")]
    refs["eyal"].reorder(list(reversed(chain_ids)) + other_ids)
    steps.append(probe("eyal reorders spell/summary", "3 (reorder)", seen))

    # -- class 4: external info (the TTL/mtime world) changes ------------------
    # The mtime verifier is the bit-provider's watch on external state;
    # an out-of-band touch models "information used by active properties
    # changes" for provider-level dependencies.
    warm()
    seen = snapshot()
    record = filesystem.stat("/tilde/edelara/hotos.doc")
    kernel.ctx.clock.advance(10.0)
    filesystem.write("/tilde/edelara/hotos.doc", record.content)  # same bytes, new mtime
    steps.append(probe("external metadata changed (mtime)", "4 (external)", seen))

    return steps


def main() -> None:
    """Print the A5 table."""
    steps = run_invalidation_classes()
    print(
        format_table(
            ["mutation", "class", "invalidated", "survived", "reasons"],
            [
                (
                    s.step,
                    s.consistency_class,
                    ",".join(s.invalidated_users) or "-",
                    ",".join(s.survived_users) or "-",
                    ",".join(s.reasons) or "-",
                )
                for s in steps
            ],
            title="A5. Each consistency class invalidates exactly the "
            "affected entries.",
        )
    )


if __name__ == "__main__":
    main()
