"""Benchmark harness: regenerates every table/figure and the ablations.

One module per experiment in DESIGN.md's index:

* :mod:`repro.bench.table1` — the paper's Table 1 (access times for
  no-cache / cache-miss / cache-hit on the three named documents);
* :mod:`repro.bench.notifier_verifier` — A1, the notifier/verifier
  trade-off §3 poses and §5 defers;
* :mod:`repro.bench.replacement` — A2, Greedy-Dual-Size with
  property-supplied costs vs. baselines;
* :mod:`repro.bench.sharing` — A3, content-signature sharing;
* :mod:`repro.bench.cacheability` — A4, the three cacheability levels
  and event forwarding vs. the WWW "make it uncacheable" alternative;
* :mod:`repro.bench.invalidation` — A5, the four consistency classes
  end-to-end;
* :mod:`repro.bench.qos` — A6, QoS cost inflation under pressure;
* :mod:`repro.bench.chains` — A7, latency vs. property-chain length;
* :mod:`repro.bench.faults` — A12, availability and degraded serves
  under injected faults (outages, lossy notifier bus, flaky fetches).

Each module exposes ``run_*`` returning structured rows and a ``main()``
that prints the paper-style table; ``python -m repro.bench`` runs all.
"""

from repro.bench.harness import format_table, mean

__all__ = ["format_table", "mean"]
