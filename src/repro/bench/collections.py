"""A9: tailored caching for related documents (collections, §5).

"mechanisms that tailor caching for related documents (e.g., contained
in a collection) have not been investigated" — we investigate the
obvious mechanism: a per-document active property that, when its
document is read, asks the cache to prefetch its collection siblings.

The workload models collection-correlated access (a user who opens one
document of a project soon opens others from the same project): reads
pick a collection by Zipf popularity and then walk ``burst`` of its
members.  We compare no-prefetch vs. prefetch on first-access latency of
the walked members and on the extra fill traffic prefetching costs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench.harness import format_table, mean
from repro.cache.manager import DocumentCache
from repro.placeless.collection import DocumentCollection
from repro.placeless.kernel import PlacelessKernel
from repro.properties.collection import attach_collection_prefetch
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.trace import zipf_indices

__all__ = ["CollectionResult", "run_collections", "main"]


@dataclass
class CollectionResult:
    """Metrics of one configuration."""

    config: str
    mean_read_latency_ms: float
    hit_ratio: float
    prefetch_fills: int
    #: Mean latency of the 2nd..nth member read within a burst — the
    #: reads prefetching is supposed to accelerate.
    mean_follow_latency_ms: float


def _run(prefetch: bool, n_collections: int, collection_size: int,
         n_bursts: int, burst: int, seed: int) -> CollectionResult:
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel, owner,
        CorpusSpec(
            n_documents=n_collections * collection_size,
            ttl_ms=3_600_000.0,
            seed=seed,
        ),
    )
    cache = DocumentCache(
        kernel, capacity_bytes=1 << 30,
        name=f"a9-{'prefetch' if prefetch else 'plain'}",
    )
    collections = []
    for group in range(n_collections):
        collection = DocumentCollection(f"project-{group}", owner)
        members = corpus[
            group * collection_size : (group + 1) * collection_size
        ]
        for document in members:
            collection.add(document.reference)
        if prefetch:
            attach_collection_prefetch(collection, cache)
        collections.append((collection, members))

    rng = random.Random(seed + 7)
    picks = zipf_indices(n_collections, n_bursts, alpha=0.9, seed=seed + 1)
    all_latencies = []
    follow_latencies = []
    for pick in picks:
        collection, members = collections[pick]
        walk = rng.sample(range(collection_size), min(burst, collection_size))
        for position, member_index in enumerate(walk):
            outcome = cache.read(members[member_index].reference)
            all_latencies.append(outcome.elapsed_ms)
            if position > 0:
                follow_latencies.append(outcome.elapsed_ms)

    return CollectionResult(
        config="prefetch" if prefetch else "no-prefetch",
        mean_read_latency_ms=mean(all_latencies),
        hit_ratio=cache.stats.hit_ratio,
        prefetch_fills=cache.stats.prefetch_fills,
        mean_follow_latency_ms=mean(follow_latencies),
    )


def run_collections(
    n_collections: int = 12,
    collection_size: int = 8,
    n_bursts: int = 150,
    burst: int = 4,
    seed: int = 29,
) -> list[CollectionResult]:
    """Run with and without collection prefetch over identical bursts."""
    return [
        _run(prefetch, n_collections, collection_size, n_bursts, burst, seed)
        for prefetch in (False, True)
    ]


def main() -> None:
    """Print the A9 table."""
    rows = run_collections()
    print(
        format_table(
            ["config", "mean read latency (ms)", "follow-read latency (ms)",
             "hit ratio", "prefetch fills"],
            [
                (r.config, r.mean_read_latency_ms,
                 r.mean_follow_latency_ms, r.hit_ratio, r.prefetch_fills)
                for r in rows
            ],
            title="A9. Collection-aware prefetch on burst (project-style) "
            "access patterns.",
        )
    )


if __name__ == "__main__":
    main()
