"""A19: overload robustness — deadlines, load shedding, hedged reads.

The overload layer (DESIGN.md §3.6) protects the read path at three
seams: end-to-end deadline budgets charged against the virtual clock,
an admission controller (token bucket + CoDel-style sojourn) shedding
the lowest QoS class first, and gray-shard hedged reads in the cluster.
This bench measures each knob where it matters:

* **Offered-load sweep** — open-loop waves of personalized cold misses
  at multiples of the admission rate, with the policy off, deadlines
  only, then deadlines + shedding.  Per arm: goodput (reads completed
  within the 250 ms deadline target per virtual second, measured from
  each wave's arrival instant), shed ratio and wave-relative p99.  The
  acceptance criterion: at 2× saturation the shedding arm's goodput
  stays within 10 % of the sweep's peak, while the unprotected arm
  collapses under its own backlog.
* **Gray-shard arm** — a two-shard cluster under ``--faults grayshard``
  chaos (one shard's fetches burn 150 extra virtual ms, erroring
  never), hedging off then on.  The acceptance criterion: hedging cuts
  in-window p99 by ≥ 3×, wins hedges, serves zero wrong bytes and
  records zero deadline violations.

The run writes ``BENCH_A19.json`` through the shared artifact writer;
CI's overload job fails the build when the 2× shedding arm sheds
nothing, the gray-shard arm wins no hedges, or any deadline violation
or wrong byte is recorded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.harness import format_table, mean, percentile, write_artifact
from repro.cache.manager import DocumentCache
from repro.cache.policies import DefaultOverloadPolicy
from repro.cluster import CacheCluster
from repro.errors import DeadlineExceededError, OverloadShedError
from repro.faults.scenarios import grayshard_chaos_scenario
from repro.placeless.kernel import PlacelessKernel
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.users import build_population

__all__ = [
    "LoadResult",
    "GrayShardResult",
    "run_load",
    "run_sweep",
    "run_grayshard",
    "main",
]

_SEED = 59

#: The sweep's end-to-end latency target (the paper's "access time
#: < .25 seconds" promise); goodput counts reads finishing inside it.
_DEADLINE_TARGET_MS = 250.0

#: One wave of arrivals per virtual second.
_WAVE_INTERVAL_MS = 1_000.0

#: Admission rate for the shedding arm, set just under the workload's
#: measured service capacity (~125 cold personalized misses per virtual
#: second on the nfs-only corpus) the way an operator would tune it.
_ADMISSION_RATE_PER_S = 100.0

_ARMS = ("off", "deadlines", "shed")


def _policy_for(arm: str) -> DefaultOverloadPolicy | None:
    if arm == "off":
        return None
    if arm == "deadlines":
        return DefaultOverloadPolicy(shedding=False, hedging=False)
    if arm == "shed":
        return DefaultOverloadPolicy(
            hedging=False, admission_rate_per_s=_ADMISSION_RATE_PER_S
        )
    raise ValueError(f"unknown arm: {arm!r}")


def _light_corpus_spec(n_documents: int, seed: int) -> CorpusSpec:
    """Small nfs-backed documents: a cold personalized miss costs ~8
    virtual ms, so the 250 ms target spans a meaningful queue and the
    gray shard's +150 ms stands clear of the fetch noise."""
    return CorpusSpec(
        n_documents=n_documents,
        repository_mix=(("nfs", 1.0),),
        size_mu=7.0,
        size_sigma=0.5,
        max_size=8_192,
        ttl_ms=3_600_000.0,
        seed=seed,
    )


@dataclass
class LoadResult:
    """Metrics of one (offered load, policy arm) open-loop run."""

    arm: str
    offered_per_s: float
    n_users: int
    n_documents: int
    n_waves: int
    offered: int
    completed: int
    within_deadline: int
    shed: int
    deadline_errors: int
    stale_serves: int
    mean_ms: float
    p50_ms: float
    p99_ms: float
    wall_reads_per_s: float

    @property
    def goodput_per_s(self) -> float:
        """Reads completed within the target, per virtual second."""
        duration_s = self.n_waves * _WAVE_INTERVAL_MS / 1_000.0
        return self.within_deadline / duration_s if duration_s else 0.0

    @property
    def shed_ratio(self) -> float:
        """Fraction of offered reads refused by admission."""
        return self.shed / self.offered if self.offered else 0.0


def run_load(
    n_users: int,
    arm: str,
    n_documents: int = 4,
    n_waves: int = 8,
    seed: int = _SEED,
) -> LoadResult:
    """One open-loop arm: waves of personalized cold misses.

    Every wave invalidates the corpus and mutates each source out of
    band, then lands one read per (user, document) pair — all arrivals
    stamped at the wave instant, served in sequence, so each read's
    wave-relative latency includes the queueing delay in front of it.
    A wave whose service outruns the interval leaves a backlog the next
    wave inherits; that metastable pile-up is exactly what the
    admission controller exists to cut short.
    """
    kernel = PlacelessKernel()
    clock = kernel.ctx.clock
    owner = kernel.create_user("owner")
    corpus = build_corpus(kernel, owner, _light_corpus_spec(n_documents, seed))
    population = build_population(
        kernel, corpus, n_users, personalized_fraction=1.0, seed=seed
    )
    cache = DocumentCache(
        kernel,
        capacity_bytes=1 << 30,
        overload_policy=_policy_for(arm),
        name=f"a19-{arm}-{n_users}",
    )
    scheduler = cache.core.scheduler
    offered = completed = within = shed = deadline_errors = stale = 0
    latencies: list[float] = []
    wall_started = time.perf_counter()
    start_ms = clock.now_ms
    for wave in range(n_waves):
        arrival_ms = start_ms + wave * _WAVE_INTERVAL_MS
        if clock.now_ms < arrival_ms:
            clock.advance(arrival_ms - clock.now_ms)
        for document_index, document in enumerate(corpus):
            cache.invalidate_document(document.reference.base.document_id)
            document.provider.mutate_out_of_band(
                f"wave {wave} document {document_index}".encode() * 24
            )
        for user_index in range(n_users):
            for document_index in range(n_documents):
                reference = population.reference(user_index, document_index)
                offered += 1
                try:
                    # Back-date the arrival to the wave instant so the
                    # sojourn gate and the deadline budget both see the
                    # queueing delay, exactly as read_many batches do.
                    outcome = scheduler.drive(
                        cache.iterate_read(
                            reference,
                            scheduler=scheduler,
                            enqueued_ms=arrival_ms,
                        )
                    )
                except OverloadShedError:
                    shed += 1
                    continue
                except DeadlineExceededError:
                    deadline_errors += 1
                    continue
                finally:
                    cache.drain_prefetch()
                completed += 1
                if outcome.disposition == "stale-on-error":
                    stale += 1
                latency_ms = clock.now_ms - arrival_ms
                latencies.append(latency_ms)
                if latency_ms <= _DEADLINE_TARGET_MS:
                    within += 1
    wall_s = time.perf_counter() - wall_started
    return LoadResult(
        arm=arm,
        offered_per_s=(
            n_users * n_documents / (_WAVE_INTERVAL_MS / 1_000.0)
        ),
        n_users=n_users,
        n_documents=n_documents,
        n_waves=n_waves,
        offered=offered,
        completed=completed,
        within_deadline=within,
        shed=shed,
        deadline_errors=deadline_errors,
        stale_serves=stale,
        mean_ms=mean(latencies),
        p50_ms=percentile(latencies, 50),
        p99_ms=percentile(latencies, 99),
        wall_reads_per_s=offered / wall_s if wall_s else 0.0,
    )


def run_sweep(
    user_counts: tuple[int, ...] = (6, 12, 25, 50),
    n_documents: int = 4,
    n_waves: int = 8,
    seed: int = _SEED,
) -> list[LoadResult]:
    """The A19 sweep: every offered level under each policy arm."""
    results = []
    for n_users in user_counts:
        for arm in _ARMS:
            results.append(
                run_load(
                    n_users,
                    arm,
                    n_documents=n_documents,
                    n_waves=n_waves,
                    seed=seed,
                )
            )
    return results


@dataclass
class GrayShardResult:
    """Metrics of one gray-shard cluster run (hedging off or on)."""

    hedging: bool
    reads: int
    window_reads: int
    hedges_launched: int
    hedges_won: int
    hedges_lost: int
    deadline_violations: int
    wrong_bytes_served: int
    gray_slow_fetches: int
    mean_ms: float
    p99_ms: float
    window_p99_ms: float


def run_grayshard(
    hedging: bool,
    n_documents: int = 8,
    n_users: int = 8,
    n_rounds: int = 20,
    seed: int = _SEED,
) -> GrayShardResult:
    """Paced reads against a two-shard cluster with one gray shard.

    The grayshard chaos scenario slows every fetch through ``cluster-0``
    by 150 virtual ms inside its window, without a single error — the
    failure mode breakers cannot see.  Each round invalidates two
    rotating documents cluster-wide (a steady trickle of misses on both
    shards) and lands one paced read per (user, document) pair.
    Sources never mutate, so every byte ever served must equal the
    first bytes seen for that reference — the wrong-bytes gate.
    """
    kernel = PlacelessKernel()
    ctx = kernel.ctx
    ctx.faults = grayshard_chaos_scenario(
        ctx.clock, seed=seed, duration_ms=120_000.0
    )
    window_start_ms = 2_000.0
    window_end_ms = window_start_ms + 120_000.0
    cluster = CacheCluster(
        kernel,
        2,
        capacity_bytes=1 << 30,
        # min_samples=4 keeps the detection bootstrap (the gray fetches
        # that must land before the EWMA can classify) to a handful of
        # slow reads, well under the in-window p99 rank.
        overload_policy=DefaultOverloadPolicy(
            hedging=hedging, health_min_samples=4
        ),
    )
    owner = kernel.create_user("owner")
    corpus = build_corpus(kernel, owner, _light_corpus_spec(n_documents, seed))
    population = build_population(
        kernel, corpus, n_users, personalized_fraction=0.0, seed=seed
    )
    references = [
        population.reference(user_index, document_index)
        for user_index in range(n_users)
        for document_index in range(n_documents)
    ]
    expected: dict[int, bytes] = {}
    wrong = 0
    latencies: list[float] = []
    window_latencies: list[float] = []
    for rnd in range(n_rounds):
        for offset in range(2):
            document = corpus[(2 * rnd + offset) % n_documents]
            cluster.invalidate_document(document.reference.base.document_id)
        for index, reference in enumerate(references):
            # ~125 paced requests/s, inside the default admission rate.
            ctx.clock.charge(8.0)
            outcome = cluster.read(reference)
            latencies.append(outcome.elapsed_ms)
            if window_start_ms <= ctx.clock.now_ms <= window_end_ms:
                window_latencies.append(outcome.elapsed_ms)
            first = expected.setdefault(index, outcome.content)
            if outcome.content != first:
                wrong += 1
    stats = cluster.overload_stats
    assert stats is not None
    assert ctx.faults is not None
    return GrayShardResult(
        hedging=hedging,
        reads=len(latencies),
        window_reads=len(window_latencies),
        hedges_launched=stats.hedges_launched,
        hedges_won=stats.hedges_won,
        hedges_lost=stats.hedges_lost,
        deadline_violations=stats.deadline_violations,
        wrong_bytes_served=wrong,
        gray_slow_fetches=ctx.faults.stats.gray_slow_fetches,
        mean_ms=mean(latencies),
        p99_ms=percentile(latencies, 99),
        window_p99_ms=percentile(window_latencies, 99),
    )


def main(smoke: bool = False) -> None:
    """Print the A19 tables and write ``BENCH_A19.json``."""
    if smoke:
        user_counts: tuple[int, ...] = (25, 50)
        n_waves = 4
        n_rounds = 16
    else:
        user_counts = (6, 12, 25, 50)
        n_waves = 8
        n_rounds = 20
    sweep = run_sweep(user_counts=user_counts, n_waves=n_waves)
    print(
        format_table(
            [
                "offered/s", "arm", "offered", "ok", "in-ddl", "shed",
                "goodput/s", "shed%", "p50 ms", "p99 ms",
            ],
            [
                (
                    f"{r.offered_per_s:.0f}",
                    r.arm,
                    r.offered,
                    r.completed,
                    r.within_deadline,
                    r.shed,
                    f"{r.goodput_per_s:.0f}",
                    f"{100 * r.shed_ratio:.0f}",
                    r.p50_ms,
                    r.p99_ms,
                )
                for r in sweep
            ],
            title=(
                "A19. Overload sweep: open-loop waves of personalized "
                "cold misses (wave-relative latency vs the "
                f"{_DEADLINE_TARGET_MS:.0f} ms target)"
            ),
        )
    )
    gray_off = run_grayshard(False, n_rounds=n_rounds)
    gray_on = run_grayshard(True, n_rounds=n_rounds)
    ratio = (
        gray_off.window_p99_ms / gray_on.window_p99_ms
        if gray_on.window_p99_ms
        else 0.0
    )
    print(
        format_table(
            [
                "hedging", "reads", "hedges", "won", "p99 ms",
                "window p99 ms", "violations", "wrong bytes",
            ],
            [
                (
                    r.hedging,
                    r.reads,
                    r.hedges_launched,
                    r.hedges_won,
                    r.p99_ms,
                    r.window_p99_ms,
                    r.deadline_violations,
                    r.wrong_bytes_served,
                )
                for r in (gray_off, gray_on)
            ],
            title=(
                "A19. Gray shard: two-shard cluster, cluster-0 fetches "
                f"+150 ms in-window (p99 ratio off/on = {ratio:.1f}x)"
            ),
        )
    )
    peak = max(r.goodput_per_s for r in sweep if r.arm == "shed")
    at_2x = next(
        r for r in sweep
        if r.arm == "shed" and r.n_users == max(user_counts)
    )
    off_2x = next(
        r for r in sweep
        if r.arm == "off" and r.n_users == max(user_counts)
    )
    metrics = {
        "sweep": [
            {
                "arm": r.arm,
                "offered_per_s": r.offered_per_s,
                "n_users": r.n_users,
                "n_waves": r.n_waves,
                "offered": r.offered,
                "completed": r.completed,
                "within_deadline": r.within_deadline,
                "shed": r.shed,
                "deadline_errors": r.deadline_errors,
                "stale_serves": r.stale_serves,
                "goodput_per_s": r.goodput_per_s,
                "shed_ratio": r.shed_ratio,
                "mean_ms": r.mean_ms,
                "p50_ms": r.p50_ms,
                "p99_ms": r.p99_ms,
                "wall_reads_per_s": r.wall_reads_per_s,
            }
            for r in sweep
        ],
        "grayshard": [
            {
                "hedging": r.hedging,
                "reads": r.reads,
                "window_reads": r.window_reads,
                "hedges_launched": r.hedges_launched,
                "hedges_won": r.hedges_won,
                "hedges_lost": r.hedges_lost,
                "deadline_violations": r.deadline_violations,
                "wrong_bytes_served": r.wrong_bytes_served,
                "gray_slow_fetches": r.gray_slow_fetches,
                "mean_ms": r.mean_ms,
                "p99_ms": r.p99_ms,
                "window_p99_ms": r.window_p99_ms,
            }
            for r in (gray_off, gray_on)
        ],
        "headline": {
            "peak_goodput_per_s": peak,
            "goodput_at_2x_shed": at_2x.goodput_per_s,
            "goodput_at_2x_off": off_2x.goodput_per_s,
            "goodput_2x_fraction_of_peak": (
                at_2x.goodput_per_s / peak if peak else 0.0
            ),
            "shed_ratio_at_2x": at_2x.shed_ratio,
            "gray_p99_ratio": ratio,
            "hedges_won": gray_on.hedges_won,
            "deadline_violations": (
                gray_off.deadline_violations + gray_on.deadline_violations
            ),
            "wrong_bytes_served": (
                gray_off.wrong_bytes_served + gray_on.wrong_bytes_served
            ),
        },
        "smoke": smoke,
    }
    path = write_artifact("a19", metrics, seed=_SEED)
    print(f"\nwrote {path.name}")


if __name__ == "__main__":
    main()
