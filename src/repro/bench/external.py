"""A10: the same invalidation policy placed in a notifier vs. a verifier.

§3: "invalidation policies could either be placed in a notifier or a
verifier.  For example, tracking external information that an active
property depends on could be handled by a notifier installed by that
property or a verifier returned by the property to the cache."

One document's content is transformed by a property that depends on an
external value (think ``preferredLanguage`` or a database row).  The
value changes at random times; readers poll the document.  The identical
"stale once the value changed" policy is deployed three ways:

* **verifier** — every hit samples the external source: zero staleness,
  hit latency pays the sampling cost on every access;
* **notifier (fast poll)** — the property polls server-side every 500 ms:
  cheap hits, staleness bounded by 500 ms, steady polling load;
* **notifier (slow poll)** — polling every 5 s: less load, more staleness.

Reported: stale reads actually served (the transform stamps the value
into the content, so staleness is observable), mean hit latency, and the
sampling/polling load.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench.harness import format_table
from repro.cache.manager import DocumentCache
from repro.cache.notifiers import InvalidationBus
from repro.placeless.kernel import PlacelessKernel
from repro.properties.external import ExternalDependencyProperty
from repro.providers.memory import MemoryProvider

__all__ = ["ExternalPlacementResult", "run_external_placement", "main"]


@dataclass
class ExternalPlacementResult:
    """Metrics of one placement."""

    placement: str
    reads: int
    stale_reads: int
    stale_ratio: float
    mean_hit_latency_ms: float
    samples_taken: int
    invalidations_pushed: int


class _ExternalValue:
    """The external source: changes at seeded random instants."""

    def __init__(self, clock, mean_change_interval_ms: float, seed: int):
        self.clock = clock
        self.rng = random.Random(seed)
        self.mean_change_interval_ms = mean_change_interval_ms
        self.value = 0
        self._next_change = self._draw()

    def _draw(self) -> float:
        return self.clock.now_ms + self.rng.expovariate(
            1.0 / self.mean_change_interval_ms
        )

    def current(self) -> int:
        while self.clock.now_ms >= self._next_change:
            self.value += 1
            self._next_change = self._draw()
        return self.value


def _run(placement: str, n_reads: int, read_gap_ms: float,
         change_interval_ms: float, poll_period_ms: float,
         seed: int) -> ExternalPlacementResult:
    kernel = PlacelessKernel()
    user = kernel.create_user("reader")
    provider = MemoryProvider(kernel.ctx, b"rendered document body")
    reference = kernel.import_document(user, provider, "doc")
    bus = InvalidationBus(kernel.ctx)
    cache = DocumentCache(
        kernel, capacity_bytes=1 << 20, bus=bus,
        name=f"a10-{placement}",
    )
    external = _ExternalValue(kernel.ctx.clock, change_interval_ms, seed)

    if placement == "verifier":
        prop = ExternalDependencyProperty(external.current, mode="verifier")
    else:
        prop = ExternalDependencyProperty(
            external.current,
            mode="notifier",
            timers=kernel.timers,
            bus=bus,
            cache_id=cache.cache_id,
            poll_period_ms=poll_period_ms,
        )
    reference.attach(prop)

    stale_reads = 0
    for _ in range(n_reads):
        kernel.ctx.clock.advance(read_gap_ms)
        outcome = cache.read(reference)
        expected = f"[external={external.current()}]".encode()
        if expected not in outcome.content:
            stale_reads += 1

    return ExternalPlacementResult(
        placement=placement,
        reads=n_reads,
        stale_reads=stale_reads,
        stale_ratio=stale_reads / n_reads,
        mean_hit_latency_ms=cache.stats.mean_hit_latency_ms,
        samples_taken=prop.polls,
        invalidations_pushed=prop.invalidations_pushed,
    )


def run_external_placement(
    n_reads: int = 600,
    read_gap_ms: float = 120.0,
    change_interval_ms: float = 2_000.0,
    fast_poll_ms: float = 500.0,
    slow_poll_ms: float = 5_000.0,
    seed: int = 37,
) -> list[ExternalPlacementResult]:
    """Run the three placements over identical external-change timelines."""
    results = [
        _run("verifier", n_reads, read_gap_ms, change_interval_ms,
             fast_poll_ms, seed),
        _run("notifier-fast", n_reads, read_gap_ms, change_interval_ms,
             fast_poll_ms, seed),
        _run("notifier-slow", n_reads, read_gap_ms, change_interval_ms,
             slow_poll_ms, seed),
    ]
    return results


def main() -> None:
    """Print the A10 table."""
    rows = run_external_placement()
    print(
        format_table(
            ["placement", "reads", "stale reads", "staleness",
             "hit latency (ms)", "samples", "invalidations pushed"],
            [
                (r.placement, r.reads, r.stale_reads, r.stale_ratio,
                 r.mean_hit_latency_ms, r.samples_taken,
                 r.invalidations_pushed)
                for r in rows
            ],
            title="A10. The same external-dependency policy as a verifier "
            "vs. a (fast/slow polling) notifier.",
        )
    )


if __name__ == "__main__":
    main()
