"""Table 1: document content access times for an application-level cache.

"Table 1 shows the type of document access times that the system can
achieve when hitting in an application-level cache (running on the same
machine as the application).  It also shows the raw overhead of filling
the cache on a miss.  No active properties were associated with the
documents at either the base or the reference in this experiment.  Thus,
the results show that the overhead to create a minimum set of notifiers
(to track additions and deletions of active properties) and the returning
of one TTL-based verifier is small when servicing a cache miss." (§4)

We measure, per document, the mean over *repeats* of:

* **no cache** — a full read through the kernel;
* **cache miss** — a cold cache read (fill overhead included); the cache
  is cleared between repeats so every read is a true miss;
* **cache hit** — warm reads against the filled cache.

The absolute virtual-milliseconds are a function of our calibrated
latency model, not PARC's 1999 network; what must reproduce is the
*shape*: hit ≪ no-cache for every document, miss only slightly above
no-cache, and the www documents slower than the intranet one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import format_table, mean
from repro.cache.manager import DocumentCache
from repro.placeless.kernel import PlacelessKernel
from repro.sim.topology import CachePlacement
from repro.workload.documents import build_table1_documents

__all__ = ["Table1Row", "run_table1", "format_table1", "main"]


@dataclass
class Table1Row:
    """One line of Table 1."""

    label: str
    repository: str
    size_bytes: int
    no_cache_ms: float
    miss_ms: float
    hit_ms: float

    @property
    def hit_speedup(self) -> float:
        """No-cache latency over hit latency."""
        return self.no_cache_ms / self.hit_ms if self.hit_ms else float("inf")

    @property
    def miss_overhead_ms(self) -> float:
        """Fill overhead: miss latency minus no-cache latency."""
        return self.miss_ms - self.no_cache_ms

    @property
    def miss_overhead_fraction(self) -> float:
        """Fill overhead relative to the no-cache latency."""
        if self.no_cache_ms == 0:
            return 0.0
        return self.miss_overhead_ms / self.no_cache_ms


def run_table1(
    repeats: int = 5,
    placement: CachePlacement = CachePlacement.APPLICATION_LEVEL,
    ttl_ms: float = 3_600_000.0,
) -> list[Table1Row]:
    """Run the Table-1 experiment and return its rows.

    The TTL is generous so hit measurements are not polluted by TTL
    expiry; Table 1 measures mechanism overheads, not consistency.
    """
    kernel = PlacelessKernel()
    kernel.ctx.topology.placement = placement
    owner = kernel.create_user("eyal")
    documents = build_table1_documents(kernel, owner, ttl_ms=ttl_ms)

    rows = []
    for document in documents:
        no_cache_samples = [
            kernel.read(document.reference).elapsed_ms for _ in range(repeats)
        ]
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, name=f"t1-{document.label}"
        )
        miss_samples = []
        for _ in range(repeats):
            cache.clear()
            outcome = cache.read(document.reference)
            assert not outcome.hit
            miss_samples.append(outcome.elapsed_ms)
        hit_samples = []
        for _ in range(repeats):
            outcome = cache.read(document.reference)
            assert outcome.hit
            hit_samples.append(outcome.elapsed_ms)
        rows.append(
            Table1Row(
                label=document.label,
                repository=document.repository,
                size_bytes=document.size_bytes,
                no_cache_ms=mean(no_cache_samples),
                miss_ms=mean(miss_samples),
                hit_ms=mean(hit_samples),
            )
        )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render the rows the way the paper prints Table 1."""
    return format_table(
        ["original source (size)", "no cache", "cache miss", "cache hit"],
        [
            (
                f"{row.repository} ({row.size_bytes} bytes)",
                row.no_cache_ms,
                row.miss_ms,
                row.hit_ms,
            )
            for row in rows
        ],
        title=(
            "Table 1. Document content access times in milliseconds for an "
            "application-level cache (virtual time)."
        ),
    )


def main() -> None:
    """Print Table 1 plus the derived overhead/speedup columns."""
    rows = run_table1()
    print(format_table1(rows))
    print()
    print(
        format_table(
            ["document", "hit speedup", "miss overhead (ms)", "overhead %"],
            [
                (
                    row.label,
                    row.hit_speedup,
                    row.miss_overhead_ms,
                    100.0 * row.miss_overhead_fraction,
                )
                for row in rows
            ],
            title="Derived: caching hides latency; miss overhead is small.",
        )
    )


if __name__ == "__main__":
    main()
