"""A17: cluster topology — shard count, topology churn, memo sharing.

The cluster layer (DESIGN.md §3.4) runs N consistent-hash shards over
one kernel, optionally sharing the transform-memo plane and the
single-flight table across them.  This bench sweeps shard count with
the cluster policy off (fully isolated shards — private memos, private
flights) then on (one :class:`~repro.cluster.memo_share
.SharedTransformMemo`, one flight table), driving a 32-way multi-user
workload with topology churn — one ``add_shard`` rebalance and one
``lose_shard`` failure mid-run, both repaired through the reused A13
anti-entropy resync — and reports:

* cluster-wide hit ratio and kernel chain executions (the acceptance
  criterion: at ≥ 4 shards, cross-shard memo sharing avoids ≥ 50 % of
  the chain executions the isolated arm pays);
* cross-shard memo imports (signature-only adopts whose bytes were
  pulled over a shard link) and the bytes moved;
* invalidation fan-out: shards actually holding entries per
  cluster-wide explicit invalidation;
* resync repair counts for the add/lose events, and virtual read
  latency mean/p99.

A separate parity probe replays one deterministic workload against a
plain :class:`~repro.cache.manager.DocumentCache` and a one-shard
cluster with ``cluster_policy=None`` and compares outcome digests —
byte-identical is the off-by-default guarantee.

The run writes ``BENCH_A17.json`` through the shared artifact writer;
CI's cluster job fails the build when the shared arm performed zero
cross-shard memo imports or the parity digests diverge.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

from repro.bench.harness import format_table, mean, percentile, write_artifact
from repro.cache.manager import DocumentCache
from repro.cache.policies import (
    DefaultConcurrencyPolicy,
    DefaultMemoPolicy,
    DefaultRecoveryPolicy,
)
from repro.cluster import CacheCluster, DefaultClusterPolicy
from repro.placeless.kernel import PlacelessKernel
from repro.properties.translate import TranslationProperty
from repro.workload.documents import CorpusSpec, build_corpus
from repro.workload.users import build_population

__all__ = ["ClusterResult", "run_cluster", "run_sweep", "check_parity", "main"]

_SEED = 53


@dataclass
class ClusterResult:
    """Metrics of one (shard count, sharing on/off) cluster run."""

    shard_count: int
    shared: bool
    n_users: int
    n_documents: int
    n_epochs: int
    reads: int
    hits: int
    hit_ratio: float
    chain_executions: int
    memo_adoptions: int
    memo_imports: int
    import_bytes: int
    invalidations: int
    invalidation_shard_touches: int
    add_repairs: int
    loss_repairs: int
    entries_after: int
    mean_ms: float
    p50_ms: float
    p99_ms: float
    wall_reads_per_s: float

    @property
    def invalidation_fanout(self) -> float:
        """Shards holding entries per cluster-wide invalidation."""
        if not self.invalidations:
            return 0.0
        return self.invalidation_shard_touches / self.invalidations


def _build_cluster(
    kernel: PlacelessKernel, shard_count: int, shared: bool
) -> CacheCluster:
    return CacheCluster(
        kernel,
        shard_count,
        capacity_bytes=1 << 30,
        cluster_policy=DefaultClusterPolicy() if shared else None,
        memo_policy=DefaultMemoPolicy(),
        concurrency_policy=DefaultConcurrencyPolicy(),
        recovery_policy=DefaultRecoveryPolicy(),
        name=f"a17-{shard_count}-{'shared' if shared else 'isolated'}",
    )


def run_cluster(
    shard_count: int,
    shared: bool,
    n_users: int = 32,
    n_documents: int = 6,
    n_epochs: int = 6,
    seed: int = _SEED,
) -> ClusterResult:
    """One arm of the A17 sweep: a churned multi-user cluster run.

    Each epoch invalidates one rotating document cluster-wide, mutates
    its source out of band (a fresh chain key), then lands the full
    ``n_users × n_documents`` batch through :meth:`CacheCluster
    .read_many` — one deterministic scheduler fanning across every
    shard.  At one third of the run the cluster grows by a shard
    (rebalance-as-resync); at two thirds it loses its first shard (the
    survivors repair through the same resync).  Both arms see the
    identical event script, so the shared-vs-isolated delta is the
    memo/flight sharing alone.
    """
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    corpus = build_corpus(
        kernel,
        owner,
        CorpusSpec(n_documents=n_documents, ttl_ms=3_600_000.0, seed=seed),
    )
    for document in corpus:
        document.reference.base.attach(TranslationProperty())
    population = build_population(
        kernel, corpus, n_users, personalized_fraction=0.0, seed=seed
    )
    cluster = _build_cluster(kernel, shard_count, shared)
    add_epoch = n_epochs // 3 if shard_count > 1 else -1
    loss_epoch = (2 * n_epochs) // 3 if shard_count > 1 else -1
    reads_before = kernel.stats.reads
    add_repairs = loss_repairs = 0
    latencies: list[float] = []
    wall_started = time.perf_counter()
    for epoch in range(n_epochs):
        if epoch == add_epoch:
            repairs_before = cluster.rebalance_repairs
            cluster.add_shard()
            add_repairs = cluster.rebalance_repairs - repairs_before
        if epoch == loss_epoch:
            loss_repairs = cluster.lose_shard(next(iter(cluster.shards)))
        document_index = epoch % n_documents
        cluster.invalidate_document(
            corpus[document_index].reference.base.document_id
        )
        corpus[document_index].provider.mutate_out_of_band(
            f"epoch {epoch} document {document_index}".encode() * 24
        )
        references = [
            population.reference(user_index, index)
            for user_index in range(n_users)
            for index in range(n_documents)
        ]
        for outcome in cluster.read_many(references):
            latencies.append(outcome.elapsed_ms)
        kernel.ctx.clock.advance(100.0)
    wall_s = time.perf_counter() - wall_started
    stats = cluster.aggregate_stats()
    memo_stats = cluster.memo_stats
    shared_memo = cluster.shared_memo
    return ClusterResult(
        shard_count=shard_count,
        shared=shared,
        n_users=n_users,
        n_documents=n_documents,
        n_epochs=n_epochs,
        reads=len(latencies),
        hits=stats.hits,
        hit_ratio=cluster.hit_ratio,
        chain_executions=kernel.stats.reads - reads_before,
        memo_adoptions=memo_stats.adoptions if memo_stats else 0,
        memo_imports=shared_memo.imports if shared_memo else 0,
        import_bytes=shared_memo.import_bytes if shared_memo else 0,
        invalidations=cluster.invalidations,
        invalidation_shard_touches=cluster.invalidation_shard_touches,
        add_repairs=add_repairs,
        loss_repairs=loss_repairs,
        entries_after=len(cluster),
        mean_ms=mean(latencies),
        p50_ms=percentile(latencies, 50),
        p99_ms=percentile(latencies, 99),
        wall_reads_per_s=len(latencies) / wall_s if wall_s else 0.0,
    )


def check_parity(seed: int = _SEED) -> dict:
    """Replay one workload on a plain cache and a one-shard cluster.

    The cluster runs with ``cluster_policy=None``; outcomes (content,
    disposition, virtual elapsed time) are digested in order.  Equal
    digests are the guarantee that the cluster layer, disabled, adds
    nothing — the golden single-cache behaviour is untouched.
    """

    def replay(kind: str) -> str:
        kernel = PlacelessKernel()
        owner = kernel.create_user("owner")
        corpus = build_corpus(
            kernel,
            owner,
            CorpusSpec(n_documents=5, ttl_ms=3_600_000.0, seed=seed),
        )
        for document in corpus:
            document.reference.base.attach(TranslationProperty())
        population = build_population(
            kernel, corpus, 4, personalized_fraction=0.5, seed=seed
        )
        if kind == "single":
            target: DocumentCache | CacheCluster = DocumentCache(
                kernel,
                capacity_bytes=1 << 20,
                concurrency_policy=DefaultConcurrencyPolicy(),
                memo_policy=DefaultMemoPolicy(),
                name="a17-parity",
            )
        else:
            target = CacheCluster(
                kernel,
                1,
                capacity_bytes=1 << 20,
                cluster_policy=None,
                concurrency_policy=DefaultConcurrencyPolicy(),
                memo_policy=DefaultMemoPolicy(),
                name="a17-parity",
            )
        digest = hashlib.sha256()
        state = seed * 2654435761 % (1 << 31) or 1
        for step in range(40):
            state = (state * 1103515245 + 12345) % (1 << 31)
            user_index, document_index = state % 4, (state >> 8) % 5
            if step % 9 == 8:
                corpus[document_index].provider.mutate_out_of_band(
                    f"oob {step}".encode() * 9
                )
                continue
            references = [
                population.reference(
                    (user_index + i) % 4, (document_index + i) % 5
                )
                for i in range(3)
            ]
            for outcome in target.read_many(references):
                digest.update(outcome.content)
                digest.update(outcome.disposition.encode())
                digest.update(f"{outcome.elapsed_ms:.6f}".encode())
            kernel.ctx.clock.advance(25.0)
        return digest.hexdigest()

    single, clustered = replay("single"), replay("cluster")
    return {
        "single_digest": single,
        "cluster_digest": clustered,
        "parity_ok": single == clustered,
    }


def run_sweep(
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    n_users: int = 32,
    n_documents: int = 6,
    n_epochs: int = 6,
    seed: int = _SEED,
) -> list[ClusterResult]:
    """The A17 sweep: every shard count, isolated then shared."""
    results = []
    for shard_count in shard_counts:
        for shared in (False, True):
            results.append(
                run_cluster(
                    shard_count,
                    shared,
                    n_users=n_users,
                    n_documents=n_documents,
                    n_epochs=n_epochs,
                    seed=seed,
                )
            )
    return results


def _savings(isolated: ClusterResult, shared: ClusterResult) -> float:
    """Fraction of the isolated arm's chain executions avoided."""
    if not isolated.chain_executions:
        return 0.0
    return 1.0 - shared.chain_executions / isolated.chain_executions


def main(smoke: bool = False) -> None:
    """Print the A17 table and write ``BENCH_A17.json``."""
    if smoke:
        shard_counts: tuple[int, ...] = (1, 4)
        n_documents = 3
        n_epochs = 3
    else:
        shard_counts = (1, 2, 4, 8)
        n_documents = 6
        n_epochs = 6
    n_users = 32
    results = run_sweep(
        shard_counts=shard_counts,
        n_users=n_users,
        n_documents=n_documents,
        n_epochs=n_epochs,
    )
    by_arm = {(r.shard_count, r.shared): r for r in results}
    print(
        format_table(
            [
                "shards", "shared", "reads", "hit ratio", "chain execs",
                "imports", "fan-out", "add rep", "loss rep",
                "mean ms", "p99 ms",
            ],
            [
                (
                    r.shard_count,
                    r.shared,
                    r.reads,
                    f"{r.hit_ratio:.3f}",
                    r.chain_executions,
                    r.memo_imports,
                    f"{r.invalidation_fanout:.2f}",
                    r.add_repairs,
                    r.loss_repairs,
                    r.mean_ms,
                    r.p99_ms,
                )
                for r in results
            ],
            title=(
                "A17. Cluster topology: shard sweep under a "
                f"{n_users}-way workload ({n_documents} documents x "
                f"{n_epochs} epochs, one add_shard + one lose_shard "
                "mid-run; shared arm = one memo plane + one flight "
                "table across shards)"
            ),
        )
    )
    for shard_count in shard_counts:
        if shard_count < 2:
            continue
        isolated = by_arm[(shard_count, False)]
        shared = by_arm[(shard_count, True)]
        print(
            f"  {shard_count} shards: memo sharing avoided "
            f"{_savings(isolated, shared):.0%} of chain executions "
            f"({isolated.chain_executions} -> {shared.chain_executions})"
        )
    parity = check_parity()
    print(
        "  parity (1 shard, policy off vs plain cache): "
        + ("byte-identical" if parity["parity_ok"] else "DIVERGED")
    )
    headline_count = max(c for c in shard_counts if c >= 4)
    headline_shared = by_arm[(headline_count, True)]
    headline_isolated = by_arm[(headline_count, False)]
    metrics = {
        "sweep": [
            {
                "shard_count": r.shard_count,
                "shared": r.shared,
                "n_users": r.n_users,
                "n_documents": r.n_documents,
                "n_epochs": r.n_epochs,
                "reads": r.reads,
                "hits": r.hits,
                "hit_ratio": r.hit_ratio,
                "chain_executions": r.chain_executions,
                "memo_adoptions": r.memo_adoptions,
                "memo_imports": r.memo_imports,
                "import_bytes": r.import_bytes,
                "invalidations": r.invalidations,
                "invalidation_shard_touches": r.invalidation_shard_touches,
                "invalidation_fanout": r.invalidation_fanout,
                "add_repairs": r.add_repairs,
                "loss_repairs": r.loss_repairs,
                "entries_after": r.entries_after,
                "mean_ms": r.mean_ms,
                "p50_ms": r.p50_ms,
                "p99_ms": r.p99_ms,
                "wall_reads_per_s": r.wall_reads_per_s,
            }
            for r in results
        ],
        "parity": parity,
        "headline": {
            "shard_count": headline_count,
            "memo_adoptions": headline_shared.memo_adoptions,
            "memo_imports": headline_shared.memo_imports,
            "chain_executions_shared": headline_shared.chain_executions,
            "chain_executions_isolated": headline_isolated.chain_executions,
            "chain_savings": _savings(headline_isolated, headline_shared),
            "invalidation_fanout": headline_shared.invalidation_fanout,
            "parity_ok": parity["parity_ok"],
        },
        "smoke": smoke,
    }
    path = write_artifact("a17", metrics, seed=_SEED)
    print(f"\nwrote {path.name}")


if __name__ == "__main__":
    main()
