"""A7: access latency vs. property-chain length — why caching matters here.

§3's opening motivation: "Document access latencies are affected by the
interposition of active property execution."  The longer (and costlier)
the chain of transforming properties on the read path, the more an
uncached access costs — while a cache hit serves the already-transformed
bytes at flat, local cost.  The cached/uncached gap therefore *grows*
with chain length; this is the curve that motivates the whole design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import format_table, mean
from repro.cache.manager import DocumentCache
from repro.placeless.kernel import PlacelessKernel
from repro.properties.spellcheck import SpellingCorrectorProperty
from repro.properties.translate import TranslationProperty
from repro.providers.web import WebOrigin, WebProvider
from repro.workload.documents import generate_text

__all__ = ["ChainLengthResult", "run_chain_latency", "main"]


@dataclass
class ChainLengthResult:
    """Latencies for one chain length."""

    chain_length: int
    uncached_ms: float
    hit_ms: float
    replacement_cost_ms: float

    @property
    def speedup(self) -> float:
        """Uncached over hit latency."""
        return self.uncached_ms / self.hit_ms if self.hit_ms else float("inf")


def _make_chain(length: int) -> list:
    """Alternating cheap/expensive transforming properties."""
    chain = []
    for index in range(length):
        if index % 2 == 0:
            chain.append(
                SpellingCorrectorProperty(name=f"spell-{index}")
            )
        else:
            chain.append(
                TranslationProperty(name=f"translate-{index}")
            )
    return chain


def run_chain_latency(
    lengths: tuple[int, ...] = (0, 1, 2, 4, 6, 8),
    document_bytes: int = 8000,
    repeats: int = 5,
    seed: int = 53,
) -> list[ChainLengthResult]:
    """Measure uncached and cache-hit latency per chain length."""
    results = []
    for length in lengths:
        kernel = PlacelessKernel()
        owner = kernel.create_user("owner")
        origin = WebOrigin(kernel.ctx.clock, host="parcweb")
        origin.publish(
            "/doc.html", generate_text(document_bytes, seed), ttl_ms=3.6e6
        )
        reference = kernel.import_document(
            owner, WebProvider(kernel.ctx, origin, "/doc.html"), "chained"
        )
        for prop in _make_chain(length):
            reference.attach(prop)

        uncached = [
            kernel.read(reference).elapsed_ms for _ in range(repeats)
        ]
        replacement_cost = kernel.read(reference).meta.replacement_cost_ms
        cache = DocumentCache(
            kernel, capacity_bytes=1 << 20, name=f"a7-{length}"
        )
        cache.read(reference)  # fill
        hits = [cache.read(reference).elapsed_ms for _ in range(repeats)]
        results.append(
            ChainLengthResult(
                chain_length=length,
                uncached_ms=mean(uncached),
                hit_ms=mean(hits),
                replacement_cost_ms=replacement_cost,
            )
        )
    return results


def main() -> None:
    """Print the A7 table."""
    rows = run_chain_latency()
    print(
        format_table(
            [
                "chain length",
                "uncached (ms)",
                "cache hit (ms)",
                "speedup",
                "replacement cost (ms)",
            ],
            [
                (
                    r.chain_length,
                    r.uncached_ms,
                    r.hit_ms,
                    r.speedup,
                    r.replacement_cost_ms,
                )
                for r in rows
            ],
            title="A7. Latency vs. property-chain length: the cached/"
            "uncached gap grows with the chain.",
        )
    )


if __name__ == "__main__":
    main()
