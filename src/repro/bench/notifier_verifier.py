"""A1: the notifier vs. verifier trade-off (§3, deferred to §5).

"In general, verifier execution trades-off cache consistency with cache
access time latencies, while notifier execution adds load to the
Placeless system.  The evaluation of these tradeoffs is future work."

We run the same mixed workload — Zipf reads by a reader population, plus
in-band writes (through Placeless, which notifiers snoop) and out-of-band
repository updates (which only verifiers catch) — under four consistency
configurations:

* **none** — no notifiers installed, verifiers not executed;
* **notifiers-only** — push invalidations, hits served unverified;
* **verifiers-only** — every hit pays verifier execution;
* **both** — the paper's full design.

Reported per configuration: hit ratio, mean hit latency (the verifier
latency cost), notifier deliveries (the system-load cost), and the
ground-truth staleness ratio (hits that served outdated bytes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import format_table
from repro.cache.manager import DocumentCache
from repro.cache.notifiers import InvalidationBus
from repro.placeless.kernel import PlacelessKernel
from repro.workload.documents import CorpusSpec, build_corpus, generate_text
from repro.workload.trace import TraceEventKind, TraceSpec, generate_trace

__all__ = ["ConsistencyConfigResult", "run_notifier_verifier", "main"]


@dataclass
class ConsistencyConfigResult:
    """Metrics of one consistency configuration."""

    config: str
    hit_ratio: float
    mean_hit_latency_ms: float
    verifier_cost_ms: float
    notifier_deliveries: int
    staleness_ratio: float
    stale_hits: int
    invalidations: int


#: The four configurations: (label, install_notifiers, use_verifiers).
CONFIGURATIONS = (
    ("none", False, False),
    ("notifiers-only", True, False),
    ("verifiers-only", False, True),
    ("both", True, True),
)


def run_notifier_verifier(
    n_documents: int = 40,
    n_events: int = 1500,
    p_write: float = 0.04,
    p_out_of_band: float = 0.04,
    ttl_ms: float = 30_000.0,
    seed: int = 7,
) -> list[ConsistencyConfigResult]:
    """Run the four configurations over identical workloads."""
    results = []
    for label, install_notifiers, use_verifiers in CONFIGURATIONS:
        results.append(
            _run_one(
                label,
                install_notifiers,
                use_verifiers,
                n_documents=n_documents,
                n_events=n_events,
                p_write=p_write,
                p_out_of_band=p_out_of_band,
                ttl_ms=ttl_ms,
                seed=seed,
            )
        )
    return results


def _run_one(
    label: str,
    install_notifiers: bool,
    use_verifiers: bool,
    n_documents: int,
    n_events: int,
    p_write: float,
    p_out_of_band: float,
    ttl_ms: float,
    seed: int,
) -> ConsistencyConfigResult:
    kernel = PlacelessKernel()
    owner = kernel.create_user("owner")
    writer = kernel.create_user("writer")
    corpus = build_corpus(
        kernel,
        owner,
        CorpusSpec(n_documents=n_documents, ttl_ms=ttl_ms, seed=seed),
    )
    # The writer holds their own references; their writes reach the reader
    # through base-document notifiers (in-band class 1).
    writer_refs = [
        kernel.space(writer).add_reference(doc.reference.base, doc.label)
        for doc in corpus
    ]
    bus = InvalidationBus(kernel.ctx)
    cache = DocumentCache(
        kernel,
        capacity_bytes=64 << 20,  # ample: isolate consistency, not capacity
        bus=bus,
        install_notifiers=install_notifiers,
        use_verifiers=use_verifiers,
        track_staleness=True,
        name=f"a1-{label}",
    )
    spec = TraceSpec(
        n_events=n_events,
        n_documents=n_documents,
        n_users=1,
        p_write=p_write,
        p_out_of_band=p_out_of_band,
        mean_think_time_ms=150.0,
        seed=seed,
    )
    for event in generate_trace(spec):
        kernel.ctx.clock.advance(event.think_time_ms)
        document = corpus[event.document_index]
        if event.kind is TraceEventKind.READ:
            cache.read(document.reference)
        elif event.kind is TraceEventKind.WRITE:
            new_content = generate_text(
                document.size_bytes, seed=event.detail
            )
            kernel.write(writer_refs[event.document_index], new_content)
        elif event.kind is TraceEventKind.OUT_OF_BAND_UPDATE:
            new_content = generate_text(
                document.size_bytes, seed=event.detail ^ 0x5A5A
            )
            document.provider.mutate_out_of_band(new_content)
        else:  # other mutation kinds are not part of A1
            cache.read(document.reference)

    stats = cache.stats
    return ConsistencyConfigResult(
        config=label,
        hit_ratio=stats.hit_ratio,
        mean_hit_latency_ms=stats.mean_hit_latency_ms,
        verifier_cost_ms=stats.verifier_cost_ms,
        notifier_deliveries=bus.stats.deliveries,
        staleness_ratio=stats.staleness_ratio,
        stale_hits=stats.stale_hits,
        invalidations=sum(stats.invalidations.values()),
    )


def main() -> None:
    """Print the A1 table."""
    rows = run_notifier_verifier()
    print(
        format_table(
            [
                "config",
                "hit ratio",
                "hit latency (ms)",
                "verifier cost (ms)",
                "notifier msgs",
                "stale hits",
                "staleness",
            ],
            [
                (
                    r.config,
                    r.hit_ratio,
                    r.mean_hit_latency_ms,
                    r.verifier_cost_ms,
                    r.notifier_deliveries,
                    r.stale_hits,
                    r.staleness_ratio,
                )
                for r in rows
            ],
            title="A1. Notifier vs. verifier trade-off (consistency vs. "
            "latency vs. system load).",
        )
    )


if __name__ == "__main__":
    main()
