"""A11: write-through vs. write-back (§3, Cache Management).

"Assuming a write-through cache, it is sufficient for just the properties
on the read-path to set the cacheability indicator.  With a write-back
cache, active properties on the write-path may need to register their
cacheability requirements as well."

The trade-off the two modes embody: write-through pays the full write
path on every save (every property executes, the repository commits),
while write-back buffers locally — cheap saves, deferred commits — at the
price of a visibility window during which other users still read the old
version, and of write-path properties needing WRITE_FORWARDED events to
observe buffered operations (our versioning property does).

Workload: an author saving a document repeatedly (auto-save style) while
a reviewer polls it.  Reported per mode: mean save latency, repository
commits, versioning-property observations, and the reviewer's
ground-truth stale reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import format_table, mean
from repro.cache.manager import DocumentCache, WriteMode
from repro.cache.notifiers import InvalidationBus
from repro.placeless.kernel import PlacelessKernel
from repro.properties.versioning import VersioningProperty
from repro.providers.memory import MemoryProvider
from repro.workload.documents import generate_text

__all__ = ["WriteModeResult", "run_write_modes", "main"]


@dataclass
class WriteModeResult:
    """Metrics of one write mode."""

    mode: str
    saves: int
    mean_save_latency_ms: float
    repository_commits: int
    versions_observed: int
    reviewer_reads: int
    reviewer_stale_reads: int

    @property
    def reviewer_staleness(self) -> float:
        """Reviewer reads not reflecting the author's latest save."""
        if self.reviewer_reads == 0:
            return 0.0
        return self.reviewer_stale_reads / self.reviewer_reads


def _run(mode: WriteMode, n_saves: int, saves_per_flush: int,
         document_bytes: int, seed: int) -> WriteModeResult:
    kernel = PlacelessKernel()
    author = kernel.create_user("author")
    reviewer = kernel.create_user("reviewer")
    provider = MemoryProvider(
        kernel.ctx, generate_text(document_bytes, seed)
    )
    base = kernel.create_document(author, provider, "manuscript")
    versioning = VersioningProperty()
    base.attach(versioning)
    author_ref = kernel.space(author).add_reference(base)
    reviewer_ref = kernel.space(reviewer).add_reference(base)

    bus = InvalidationBus(kernel.ctx)
    author_cache = DocumentCache(
        kernel, capacity_bytes=1 << 20, bus=bus, write_mode=mode,
        name=f"a11-author-{mode.value}",
    )
    reviewer_cache = DocumentCache(
        kernel, capacity_bytes=1 << 20, bus=bus, track_staleness=True,
        name=f"a11-reviewer-{mode.value}",
    )

    save_latencies = []
    reviewer_reads = 0
    reviewer_stale = 0
    for save in range(n_saves):
        kernel.ctx.clock.advance(5_000.0)  # auto-save every 5 s
        content = generate_text(document_bytes, seed + save + 1)
        save_latencies.append(author_cache.write(author_ref, content))
        if mode is WriteMode.WRITE_BACK and (save + 1) % saves_per_flush == 0:
            author_cache.flush(author_ref)
        # The reviewer polls after every save.  A read is "stale" when
        # it does not reflect the author's latest save — for write-back
        # this is the visibility window until the next flush.
        outcome = reviewer_cache.read(reviewer_ref)
        reviewer_reads += 1
        if outcome.content != content:
            reviewer_stale += 1
    author_cache.flush_all()

    return WriteModeResult(
        mode=mode.value,
        saves=n_saves,
        mean_save_latency_ms=mean(save_latencies),
        repository_commits=provider.store_count,
        versions_observed=versioning.version_count,
        reviewer_reads=reviewer_reads,
        reviewer_stale_reads=reviewer_stale,
    )


def run_write_modes(
    n_saves: int = 60,
    saves_per_flush: int = 5,
    document_bytes: int = 6000,
    seed: int = 59,
) -> list[WriteModeResult]:
    """Run both write modes over identical save/poll sequences."""
    return [
        _run(mode, n_saves, saves_per_flush, document_bytes, seed)
        for mode in (WriteMode.WRITE_THROUGH, WriteMode.WRITE_BACK)
    ]


def main() -> None:
    """Print the A11 table."""
    rows = run_write_modes()
    print(
        format_table(
            ["mode", "saves", "mean save latency (ms)", "repo commits",
             "versions observed", "reviewer staleness"],
            [
                (r.mode, r.saves, r.mean_save_latency_ms,
                 r.repository_commits, r.versions_observed,
                 r.reviewer_staleness)
                for r in rows
            ],
            title="A11. Write-through vs. write-back: save latency vs. "
            "commit traffic vs. the visibility window.",
        )
    )


if __name__ == "__main__":
    main()
