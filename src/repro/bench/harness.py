"""Shared helpers for the benchmark modules: formatting, statistics,
and the machine-readable artifact writer every experiment reports
through."""

from __future__ import annotations

import csv
import io
import json
import pathlib
import subprocess
from typing import Any, Iterable, Sequence

__all__ = [
    "format_table",
    "format_csv",
    "mean",
    "percentile",
    "write_artifact",
]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty iterable."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Iterable[float], p: float) -> float:
    """The *p*-th percentile (0–100), nearest-rank; 0.0 when empty."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if not 0 <= p <= 100:
        raise ValueError(f"percentile out of range: {p}")
    rank = max(0, min(len(ordered) - 1, round(p / 100 * (len(ordered) - 1))))
    return ordered[rank]


def _git(*argv: str) -> str | None:
    """One git query against the repo this package runs from, or None."""
    try:
        result = subprocess.run(
            ("git", *argv),
            capture_output=True, text=True, timeout=10,
            cwd=pathlib.Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if result.returncode != 0:
        return None
    return result.stdout.strip() or None


def write_artifact(
    experiment_id: str,
    metrics: dict[str, Any],
    seed: int | None = None,
) -> pathlib.Path:
    """Write ``BENCH_<ID>.json`` at the repo root and return its path.

    The one shared exit point for machine-readable bench results: every
    ``python -m repro bench <id>`` run records its metrics, the seed it
    ran under, and the git commit it ran at, so CI jobs and
    perf-regression diffs consume the same schema for every experiment.
    Falls back to the working directory when the package is not inside
    a git checkout (e.g. an installed wheel).
    """
    root = _git("rev-parse", "--show-toplevel")
    directory = pathlib.Path(root) if root else pathlib.Path.cwd()
    path = directory / f"BENCH_{experiment_id.upper()}.json"
    payload = {
        "experiment": experiment_id.upper(),
        "seed": seed,
        "git_sha": _git("rev-parse", "HEAD"),
        "metrics": metrics,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def format_csv(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render rows as CSV (for piping bench output into plotting tools)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Plain-text aligned table, the way the paper prints Table 1.

    Numbers are rendered with sensible precision; everything else with
    ``str``.
    """
    def render(cell: object) -> str:
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered))
        if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
