"""Shared helpers for the benchmark modules: formatting and statistics."""

from __future__ import annotations

import csv
import io
from typing import Iterable, Sequence

__all__ = ["format_table", "format_csv", "mean", "percentile"]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty iterable."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Iterable[float], p: float) -> float:
    """The *p*-th percentile (0–100), nearest-rank; 0.0 when empty."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if not 0 <= p <= 100:
        raise ValueError(f"percentile out of range: {p}")
    rank = max(0, min(len(ordered) - 1, round(p / 100 * (len(ordered) - 1))))
    return ordered[rank]


def format_csv(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render rows as CSV (for piping bench output into plotting tools)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Plain-text aligned table, the way the paper prints Table 1.

    Numbers are rendered with sensible precision; everything else with
    ``str``.
    """
    def render(cell: object) -> str:
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered))
        if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
