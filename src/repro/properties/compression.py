"""Paired compress-on-write / decompress-on-read property.

Like :mod:`repro.properties.encryption`, a paired transform: the
repository stores zlib-compressed bytes while applications see plaintext.
Unlike the XOR cipher, zlib is *not* chunk-local, so both directions use
the buffered transform streams — which exercises the whole-content path
of the stream machinery.
"""

from __future__ import annotations

import zlib

from repro.events.types import Event, EventType
from repro.placeless.properties import ActiveProperty
from repro.streams.base import InputStream, OutputStream
from repro.streams.transforms import (
    BufferedTransformInputStream,
    BufferedTransformOutputStream,
)

__all__ = ["CompressionProperty"]


class CompressionProperty(ActiveProperty):
    """Stores compressed content, serves decompressed content."""

    execution_cost_ms = 0.3
    transforms_reads = True

    def __init__(
        self, level: int = 6, name: str = "compress-at-rest", version: int = 1
    ) -> None:
        super().__init__(name, version)
        if not 0 <= level <= 9:
            raise ValueError(f"zlib level must be 0..9: {level}")
        self.level = level

    def events_of_interest(self):
        return {EventType.GET_INPUT_STREAM, EventType.GET_OUTPUT_STREAM}

    def _decompress(self, data: bytes) -> bytes:
        if not data:
            return b""
        return zlib.decompress(data)

    def wrap_input(self, stream: InputStream, event: Event) -> InputStream:
        return BufferedTransformInputStream(stream, self._decompress)

    def wrap_output(self, stream: OutputStream, event: Event) -> OutputStream:
        return BufferedTransformOutputStream(
            stream, lambda data: zlib.compress(data, self.level)
        )

    def transform_signature(self) -> str:
        return f"compress/{self.name}/v{self.version}/zlib{self.level}"
