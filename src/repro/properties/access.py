"""Access-control and watermarking properties.

Two behaviours a deployed Placeless system needs that stress the caching
layer in opposite directions:

* :class:`AccessControlProperty` denies operations to non-authorized
  users *before* any content flows — the error propagates through the
  read path, so a cache never stores anything for a denied user;
* :class:`WatermarkProperty` stamps the reading user's identity into the
  content, making every user's version byte-distinct — the worst case
  for content sharing, and a property whose transform signature must be
  per-user so the §3 adoption optimization correctly refuses to share.
"""

from __future__ import annotations

from typing import Any

from repro.errors import PermissionDeniedError
from repro.events.types import Event, EventType
from repro.ids import UserId
from repro.placeless.properties import ActiveProperty
from repro.streams.base import InputStream
from repro.streams.transforms import BufferedTransformInputStream

__all__ = ["AccessControlProperty", "WatermarkProperty"]


class AccessControlProperty(ActiveProperty):
    """Denies reads/writes by users outside the allowed set.

    Attach at the base document to protect the document universally, or
    at a reference to guard one user's delegated handle.  The owner of
    the attachment is always allowed (you cannot lock yourself out).
    """

    execution_cost_ms = 0.05

    def __init__(
        self,
        allowed: set[UserId],
        deny_reads: bool = True,
        deny_writes: bool = True,
        name: str = "access-control",
        version: int = 1,
    ) -> None:
        super().__init__(name, version)
        self.allowed = set(allowed)
        self.deny_reads = deny_reads
        self.deny_writes = deny_writes
        self.denials = 0

    def events_of_interest(self):
        events = set()
        if self.deny_reads:
            events.add(EventType.GET_INPUT_STREAM)
        if self.deny_writes:
            events.add(EventType.GET_OUTPUT_STREAM)
        return events

    def _is_allowed(self, user: UserId | None) -> bool:
        if user is None:
            return True  # system-internal operations
        return user in self.allowed or user == self.owner

    def handle(self, event: Event) -> Any:
        if self._is_allowed(event.user_id):
            return None
        self.denials += 1
        raise PermissionDeniedError(
            f"{event.user_id} may not {event.type.value} "
            f"{event.document_id}"
        )


class WatermarkProperty(ActiveProperty):
    """Stamps the reading user's identity into every read.

    The transform signature embeds the *owner*, so two users carrying
    "the same" watermark property still produce distinct chain
    signatures — their content genuinely differs, and the cache must
    neither share bytes nor adopt entries across them.
    """

    execution_cost_ms = 0.2
    transforms_reads = True

    def __init__(self, name: str = "watermark", version: int = 1) -> None:
        super().__init__(name, version)

    def events_of_interest(self):
        return {EventType.GET_INPUT_STREAM}

    def wrap_input(self, stream: InputStream, event: Event) -> InputStream:
        who = event.user_id or self.owner
        stamp = f"\n-- watermarked for {who} --".encode()
        return BufferedTransformInputStream(stream, lambda data: data + stamp)

    def transform_signature(self) -> str:
        return f"watermark/{self.name}/v{self.version}/{self.owner}"
