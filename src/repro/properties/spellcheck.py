"""The spelling-corrector property from the Figure 1/2 scenario.

"Because Eyal is not a native English speaker, he also attaches a
personal property that corrects the paper's spelling. ... both the
spelling correction and the versioning properties are dispatched when
getoutputstream operations are invoked, whereas the spelling corrector is
also invoked on getinputstream." (§2)

The corrector is deliberately simple — a dictionary of misspelling →
correction applied word-wise, line by line — because only its *stream
behaviour* matters to caching.  It transforms both the read and the write
path, exactly as in the paper, and its transform signature includes its
dictionary fingerprint and version so upgrading the corrector changes the
signature (and triggers MODIFY_PROPERTY invalidation).
"""

from __future__ import annotations

import hashlib
import re

from repro.events.types import Event, EventType
from repro.placeless.properties import ActiveProperty
from repro.streams.base import InputStream, OutputStream
from repro.streams.transforms import (
    BufferedTransformOutputStream,
    LineTransformInputStream,
    text_transform,
)

__all__ = ["SpellingCorrectorProperty", "DEFAULT_CORRECTIONS"]

#: A small default dictionary (with the paper's own title words in it).
DEFAULT_CORRECTIONS: dict[str, str] = {
    "teh": "the",
    "adress": "address",
    "recieve": "receive",
    "seperate": "separate",
    "occured": "occurred",
    "documnet": "document",
    "cachable": "cacheable",
    "propertys": "properties",
    "consistancy": "consistency",
    "performence": "performance",
}

_WORD_RE = re.compile(r"[A-Za-z]+")


class SpellingCorrectorProperty(ActiveProperty):
    """Corrects spelling on both the read and the write path."""

    execution_cost_ms = 0.8
    transforms_reads = True

    def __init__(
        self,
        corrections: dict[str, str] | None = None,
        name: str = "spell-correct",
        version: int = 1,
    ) -> None:
        super().__init__(name, version)
        self.corrections = dict(
            DEFAULT_CORRECTIONS if corrections is None else corrections
        )
        self.words_corrected = 0

    def events_of_interest(self):
        return {EventType.GET_INPUT_STREAM, EventType.GET_OUTPUT_STREAM}

    def _correct_word(self, match: re.Match[str]) -> str:
        word = match.group(0)
        replacement = self.corrections.get(word.lower())
        if replacement is None:
            return word
        self.words_corrected += 1
        if word[0].isupper():
            replacement = replacement.capitalize()
        return replacement

    def correct_text(self, text: str) -> str:
        """Apply the correction dictionary to *text*."""
        return _WORD_RE.sub(self._correct_word, text)

    def wrap_input(self, stream: InputStream, event: Event) -> InputStream:
        return LineTransformInputStream(
            stream, text_transform(self.correct_text)
        )

    def wrap_output(self, stream: OutputStream, event: Event) -> OutputStream:
        return BufferedTransformOutputStream(
            stream, text_transform(self.correct_text)
        )

    def transform_signature(self) -> str:
        fingerprint = hashlib.md5(
            repr(sorted(self.corrections.items())).encode()
        ).hexdigest()[:8]
        return f"spellcheck/{self.name}/v{self.version}/{fingerprint}"

    def upgrade_dictionary(self, corrections: dict[str, str]) -> None:
        """Install a new correction dictionary — a new release (§3).

        Merges the new entries, bumps the version and raises
        MODIFY_PROPERTY so notifiers invalidate dependent cache entries.
        """
        self.corrections.update(corrections)
        self.upgrade()
