"""External-dependency tracking, placeable in a notifier or a verifier.

§3: "invalidation policies could either be placed in a notifier or a
verifier.  For example, tracking external information that an active
property depends on could be handled by a notifier installed by that
property or a verifier returned by the property to the cache."

:class:`ExternalDependencyProperty` models an active property whose
transformation depends on an external value (``preferredLanguage``, a
database row, a stock feed — anything outside Placeless).  The *same*
invalidation policy — "the cached entry is stale once the value changed"
— can be deployed two ways:

* ``mode="verifier"`` — every cache hit runs a verifier that samples the
  external value and compares against the fill-time snapshot: perfectly
  fresh, but the sampling cost lands on the hit path;
* ``mode="notifier"`` — the property polls the value on a timer at the
  Placeless server and pushes an invalidation when it changes: hits stay
  cheap, but freshness is bounded by the polling period and the polling
  load lands on the system.

The A10 bench quantifies the trade-off, completing §5's deferred
evaluation.
"""

from __future__ import annotations

import typing
from typing import Any, Callable

from repro.cache.consistency import Invalidation, InvalidationReason
from repro.cache.verifiers import PredicateVerifier, Verifier
from repro.errors import PropertyError
from repro.events.timers import TimerService
from repro.events.types import Event, EventType
from repro.ids import CacheId
from repro.placeless.properties import ActiveProperty
from repro.streams.base import InputStream
from repro.streams.transforms import BufferedTransformInputStream

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.notifiers import InvalidationBus

__all__ = ["ExternalDependencyProperty"]


class ExternalDependencyProperty(ActiveProperty):
    """A read-path transform parameterized by an external value.

    The transform stamps the current external value into the content (a
    stand-in for "render according to preferredLanguage=..."), so a stale
    cache entry is *observably* wrong — staleness is measurable, not
    hypothetical.

    Parameters
    ----------
    observe:
        Samples the external value.
    mode:
        ``"verifier"`` or ``"notifier"`` — where the invalidation policy
        runs (see module docstring).
    timers, bus, cache_id:
        Required in notifier mode: the timer service that drives polling,
        and the bus/cache the invalidation is delivered to.
    poll_period_ms:
        Notifier-mode polling period; the staleness window.
    sample_cost_ms:
        Cost of sampling the external source once (charged per hit in
        verifier mode; per poll in notifier mode).
    """

    execution_cost_ms = 0.2
    transforms_reads = True

    def __init__(
        self,
        observe: Callable[[], Any],
        mode: str = "verifier",
        timers: TimerService | None = None,
        bus: "InvalidationBus | None" = None,
        cache_id: CacheId | None = None,
        poll_period_ms: float = 5000.0,
        sample_cost_ms: float = 0.3,
        name: str = "external-dependency",
        version: int = 1,
    ) -> None:
        super().__init__(name, version)
        if mode not in ("verifier", "notifier"):
            raise PropertyError(f"unknown mode: {mode!r}")
        if mode == "notifier" and (timers is None or bus is None or cache_id is None):
            raise PropertyError(
                "notifier mode needs timers, bus and cache_id"
            )
        self.observe = observe
        self.mode = mode
        self.timers = timers
        self.bus = bus
        self.cache_id = cache_id
        self.poll_period_ms = poll_period_ms
        self.sample_cost_ms = sample_cost_ms
        self.polls = 0
        self.invalidations_pushed = 0
        self._subscription = None
        self._last_seen: Any = None

    def events_of_interest(self):
        events = {EventType.GET_INPUT_STREAM}
        if self.mode == "notifier":
            events.add(EventType.TIMER)
        return events

    # -- the transform itself -------------------------------------------------

    def wrap_input(self, stream: InputStream, event: Event) -> InputStream:
        value = self.observe()
        self._last_seen = value
        stamp = f"\n[external={value}]".encode()
        return BufferedTransformInputStream(stream, lambda data: data + stamp)

    def transform_signature(self) -> str:
        # The external value itself is NOT part of the signature — the
        # whole point is that the value changes underneath an unchanged
        # chain, which only notifiers/verifiers can catch.
        return f"external/{self.name}/v{self.version}"

    # -- verifier placement ------------------------------------------------------

    def make_verifier(self) -> Verifier | None:
        if self.mode != "verifier":
            return None
        snapshot = self.observe()

        def still_current(now_ms: float, content: bytes) -> bool:
            self.polls += 1
            return self.observe() == snapshot

        return PredicateVerifier(
            still_current,
            cost_ms=self.sample_cost_ms,
            label=f"external:{self.name}",
        )

    # -- notifier placement ---------------------------------------------------------

    def on_attach(self) -> None:
        if self.mode != "notifier":
            return
        base = getattr(self.attachment, "base", self.attachment)
        self._last_seen = self.observe()
        self._subscription = self.timers.subscribe_periodic(
            property_id=self.property_id,
            document_id=base.document_id,
            period_ms=self.poll_period_ms,
            deliver=self._dispatched,
        )

    def on_detach(self) -> None:
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    def handle(self, event: Event) -> Any:
        if event.type is not EventType.TIMER or self.mode != "notifier":
            return None
        # Poll at the server: charge the sampling cost there.
        self.attachment.ctx.charge(self.sample_cost_ms)
        self.polls += 1
        current = self.observe()
        if current == self._last_seen:
            return None
        self._last_seen = current
        base = getattr(self.attachment, "base", self.attachment)
        invalidation = Invalidation(
            reason=InvalidationReason.EXTERNAL_CHANGED,
            document_id=base.document_id,
            user_id=self.owner if self.site and self.site.value == "reference" else None,
            at_ms=event.at_ms,
            origin="notifier",
        )
        self.bus.deliver(self.cache_id, invalidation)
        self.invalidations_pushed += 1
        return invalidation
