"""Quality-of-Service properties (§5 future work, implemented here).

"properties may be used to state Quality-of-Service (QOS) requirements
such as 'access time < .25 seconds', which in turn can benefit from
caching" (§3); and "One possibility for QoS properties to influence cache
replacement is to inflate replacement costs" (§5).

:class:`QoSProperty` declares a target access time; its replacement-cost
bonus is ``inflation_ms`` (by default scaled off the target: tighter
targets inflate more), which raises the document's Greedy-Dual-Size value
so it stays resident under pressure.  The A6 ablation bench measures how
well this keeps QoS documents under their target.
"""

from __future__ import annotations

from repro.events.types import EventType
from repro.placeless.properties import ActiveProperty

__all__ = ["QoSProperty"]

#: Default inflation per millisecond *under* a 1-second target: a 250 ms
#: target yields a 750 ms-equivalent bonus, dwarfing typical fetch costs.
_DEFAULT_INFLATION_SCALE = 1.0


class QoSProperty(ActiveProperty):
    """Declares an access-time target and inflates replacement cost."""

    execution_cost_ms = 0.02

    def __init__(
        self,
        max_access_time_ms: float = 250.0,
        inflation_ms: float | None = None,
        name: str = "qos-access-time",
        version: int = 1,
    ) -> None:
        super().__init__(name, version)
        self.max_access_time_ms = max_access_time_ms
        if inflation_ms is None:
            inflation_ms = max(
                0.0, (1000.0 - max_access_time_ms) * _DEFAULT_INFLATION_SCALE
            )
        self.inflation_ms = inflation_ms
        #: Access times observed for this document (filled by callers or
        #: benches that track whether the QoS target is met).
        self.observed_access_times_ms: list[float] = []

    def events_of_interest(self):
        # Registering for the read path makes the property execute there,
        # which is what lets it contribute its replacement-cost bonus.
        return {EventType.GET_INPUT_STREAM}

    def replacement_cost_bonus_ms(self) -> float:
        return self.inflation_ms

    def record_access(self, elapsed_ms: float) -> None:
        """Record one observed access latency against the target."""
        self.observed_access_times_ms.append(elapsed_ms)

    @property
    def violations(self) -> int:
        """How many recorded accesses exceeded the target."""
        return sum(
            1
            for elapsed in self.observed_access_times_ms
            if elapsed > self.max_access_time_ms
        )

    @property
    def compliance(self) -> float:
        """Fraction of recorded accesses meeting the target (1.0 if none)."""
        if not self.observed_access_times_ms:
            return 1.0
        met = len(self.observed_access_times_ms) - self.violations
        return met / len(self.observed_access_times_ms)


class AlwaysAvailableProperty(QoSProperty):
    """§5's "always available" QoS requirement: pin the cached entry.

    Inflating the replacement cost makes eviction *unlikely*; "always
    available" demands it never happen, so this property asks the cache
    to pin the entry outright.  A pinned entry still participates in
    consistency (notifiers and verifiers invalidate it normally — an
    always-available *stale* copy would be worse than a refetch), but the
    replacement policy never selects it as a victim.
    """

    def __init__(
        self, name: str = "qos-always-available", version: int = 1
    ) -> None:
        super().__init__(
            max_access_time_ms=float("inf"), inflation_ms=0.0,
            name=name, version=version,
        )

    def requests_pinning(self) -> bool:
        return True
