"""Standard library of active properties — the paper's worked examples.

Figure 1's scenario uses most of these directly: the universal
*versioning* property on the base document, Eyal's personal *spelling
corrector* and PARC↔Rice *replication*, plus static labels.  Section 3
adds the *read-audit-trail* (the motivating example for
``CACHEABLE_WITH_EVENTS``) and §5 the *QoS* properties that inflate
replacement costs.  Translation and summarisation are §1's examples of
content-transforming properties ("translate to French", "a summary
property may return a condensed version").  Compression and encryption
are classic paired read/write transforms that exercise the chain order
semantics.
"""

from repro.properties.access import AccessControlProperty, WatermarkProperty
from repro.properties.audit import AuditRecord, ReadAuditTrailProperty
from repro.properties.collection import (
    CollectionPrefetchProperty,
    attach_collection_prefetch,
)
from repro.properties.compression import CompressionProperty
from repro.properties.encryption import EncryptionProperty
from repro.properties.external import ExternalDependencyProperty
from repro.properties.qos import AlwaysAvailableProperty, QoSProperty
from repro.properties.replication import ReplicationProperty
from repro.properties.spellcheck import SpellingCorrectorProperty
from repro.properties.summarize import SummaryProperty
from repro.properties.translate import TranslationProperty
from repro.properties.uncacheable import UncacheableProperty
from repro.properties.versioning import VersioningProperty

__all__ = [
    "SpellingCorrectorProperty",
    "TranslationProperty",
    "SummaryProperty",
    "VersioningProperty",
    "ReplicationProperty",
    "ReadAuditTrailProperty",
    "AuditRecord",
    "QoSProperty",
    "AlwaysAvailableProperty",
    "CollectionPrefetchProperty",
    "attach_collection_prefetch",
    "ExternalDependencyProperty",
    "AccessControlProperty",
    "WatermarkProperty",
    "UncacheableProperty",
    "EncryptionProperty",
    "CompressionProperty",
]
