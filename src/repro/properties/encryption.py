"""Paired encrypt-on-write / decrypt-on-read property.

A classic "extended functionality" active property: content is stored
encrypted at the repository but applications read and write plaintext.
We use a keyed XOR stream cipher — *not* cryptographically serious, but a
genuine involution with a key schedule, which is all the caching
semantics need: the transform is position-dependent, so chunk boundaries
must not matter (verified by tests), and the read-path output equals the
original plaintext only when the same key is used both ways.

Because the read path *restores* plaintext, the cached content equals
what an unencrypted document would cache — but the transform signature
still includes the key fingerprint, since a key change makes old cached
plaintext unreachable/wrong for re-encryption flows.
"""

from __future__ import annotations

import hashlib
import itertools

from repro.events.types import Event, EventType
from repro.placeless.properties import ActiveProperty
from repro.streams.base import InputStream, OutputStream

__all__ = ["EncryptionProperty"]


def _keystream(key: bytes, offset: int):
    """Infinite keyed byte stream starting at *offset*.

    Derived from repeated SHA-256 blocks so the stream is position-
    dependent (unlike plain key repetition) yet deterministic.
    """
    block_index = offset // 32
    within = offset % 32
    for index in itertools.count(block_index):
        block = hashlib.sha256(key + index.to_bytes(8, "big")).digest()
        yield from block[within:]
        within = 0


def _xor_at(data: bytes, key: bytes, offset: int) -> bytes:
    stream = _keystream(key, offset)
    return bytes(b ^ next(stream) for b in data)


class _DecryptingInputStream(InputStream):
    """Decrypts an inner ciphertext stream positionally."""

    def __init__(self, inner: InputStream, key: bytes) -> None:
        super().__init__()
        self._inner = inner
        self._key = key
        self._offset = 0

    def _read_chunk(self, size: int) -> bytes:
        chunk = self._inner.read(size)
        if not chunk:
            return b""
        plain = _xor_at(chunk, self._key, self._offset)
        self._offset += len(chunk)
        return plain

    def _on_close(self) -> None:
        self._inner.close()


class _EncryptingOutputStream(OutputStream):
    """Encrypts written plaintext positionally before forwarding."""

    def __init__(self, downstream: OutputStream, key: bytes) -> None:
        super().__init__()
        self._downstream = downstream
        self._key = key
        self._offset = 0

    def _write_chunk(self, data: bytes) -> None:
        cipher = _xor_at(data, self._key, self._offset)
        self._offset += len(data)
        self._downstream.write(cipher)

    def _on_close(self) -> None:
        self._downstream.close()


class EncryptionProperty(ActiveProperty):
    """Stores ciphertext at the repository, serves plaintext to readers."""

    execution_cost_ms = 0.4
    transforms_reads = True

    def __init__(
        self, key: bytes, name: str = "encrypt-at-rest", version: int = 1
    ) -> None:
        super().__init__(name, version)
        if not key:
            raise ValueError("encryption key must be non-empty")
        self.key = bytes(key)

    def events_of_interest(self):
        return {EventType.GET_INPUT_STREAM, EventType.GET_OUTPUT_STREAM}

    def wrap_input(self, stream: InputStream, event: Event) -> InputStream:
        return _DecryptingInputStream(stream, self.key)

    def wrap_output(self, stream: OutputStream, event: Event) -> OutputStream:
        return _EncryptingOutputStream(stream, self.key)

    def transform_signature(self) -> str:
        fingerprint = hashlib.sha256(self.key).hexdigest()[:8]
        return f"encrypt/{self.name}/v{self.version}/{fingerprint}"
