"""The universal versioning property from Figure 1.

"Eyal also attached an universal property to the base that saves an old
version of the paper each time someone opens it for writing."  And §2:
the property "creates a new version of the content by generating a copy
of the existing document and adding a new static property to the base
with a link to that copy."

The property registers for GET_OUTPUT_STREAM on the base document; when
dispatched it snapshots the bit-provider's *current* content (before the
new write overwrites it) into an internal archive and attaches a static
``version-N`` property to the base document linking to the snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.events.types import Event, EventType
from repro.ids import UserId, VersionId
from repro.placeless.properties import ActiveProperty, StaticProperty

__all__ = ["VersionSnapshot", "VersioningProperty"]


@dataclass
class VersionSnapshot:
    """One archived version of the document's content."""

    version_id: VersionId
    content: bytes
    saved_at_ms: float
    saved_by: UserId | None

    @property
    def size(self) -> int:
        """Snapshot size in bytes."""
        return len(self.content)


class VersioningProperty(ActiveProperty):
    """Archives the old content each time the document is opened for writing."""

    execution_cost_ms = 0.6

    def __init__(self, name: str = "versioning", version: int = 1) -> None:
        super().__init__(name, version)
        self.snapshots: list[VersionSnapshot] = []

    def events_of_interest(self):
        return {EventType.GET_OUTPUT_STREAM, EventType.WRITE_FORWARDED}

    def _base_document(self):
        """The base document, whether attached at the base or a reference."""
        attachment = self.attachment
        if attachment is None:
            return None
        return getattr(attachment, "base", attachment)

    def handle(self, event: Event) -> Any:
        base = self._base_document()
        if base is None:
            return None
        # Snapshot what the repository holds *now*, before the writer's
        # content reaches it.
        old_content = base.provider.peek()
        version_id = base.ctx.ids.version(base.document_id.value)
        snapshot = VersionSnapshot(
            version_id=version_id,
            content=old_content,
            saved_at_ms=event.at_ms,
            saved_by=event.user_id,
        )
        self.snapshots.append(snapshot)
        # "adding a new static property to the base with a link to that
        # copy" — the link is the version id, resolvable via get_version.
        base.attach(
            StaticProperty(f"version-{len(self.snapshots)}", version_id),
            acting_user=event.user_id,
        )
        return snapshot

    def get_version(self, version_id: VersionId) -> bytes:
        """Resolve a version link to its archived content."""
        for snapshot in self.snapshots:
            if snapshot.version_id == version_id:
                return snapshot.content
        raise KeyError(version_id)

    @property
    def version_count(self) -> int:
        """How many snapshots have been archived."""
        return len(self.snapshots)
