"""The read-audit-trail property — §3's motivating case for event forwarding.

"an active property that creates a read-audit-trail for a document only
needs to know when read operations occur, but does not need to receive
the actual content being read."  Making audited documents uncacheable
(the WWW solution) "seemed an unreasonable restriction" — instead the
property votes ``CACHEABLE_WITH_EVENTS``: the cache may keep the content
but must forward each hit as a READ_FORWARDED event, which this property
also registers for, so the trail stays complete whether reads are served
by Placeless or by the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cache.cacheability import Cacheability
from repro.events.types import Event, EventType
from repro.ids import UserId
from repro.placeless.properties import ActiveProperty

__all__ = ["AuditRecord", "ReadAuditTrailProperty"]


@dataclass
class AuditRecord:
    """One observed read operation."""

    user: UserId | None
    at_ms: float
    via_cache: bool


class ReadAuditTrailProperty(ActiveProperty):
    """Appends a record per read, including cache-served (forwarded) reads."""

    execution_cost_ms = 0.05

    def __init__(self, name: str = "read-audit-trail", version: int = 1) -> None:
        super().__init__(name, version)
        self.trail: list[AuditRecord] = []

    def events_of_interest(self):
        return {EventType.GET_INPUT_STREAM, EventType.READ_FORWARDED}

    def handle(self, event: Event) -> Any:
        record = AuditRecord(
            user=event.user_id,
            at_ms=event.at_ms,
            via_cache=event.type is EventType.READ_FORWARDED,
        )
        self.trail.append(record)
        return record

    def cacheability_vote(self) -> Cacheability:
        return Cacheability.CACHEABLE_WITH_EVENTS

    @property
    def reads_observed(self) -> int:
        """Total reads recorded (direct + forwarded)."""
        return len(self.trail)

    @property
    def cache_served_reads(self) -> int:
        """Reads that were served by a cache and forwarded as events."""
        return sum(1 for record in self.trail if record.via_cache)
