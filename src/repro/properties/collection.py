"""Collection-aware prefetch: tailored caching for related documents.

§5: "mechanisms that tailor caching for related documents (e.g.,
contained in a collection) have not been investigated."  This property is
the paper-idiomatic way to investigate them: it is attached per member
reference ("properties to implement custom per-document caching
policies", §1), and whenever its document is read it asks the cache to
prefetch the collection's other members.  The cache services the queue
*after* the triggering read, so the demand read's latency is unaffected;
subsequent reads of siblings then hit.
"""

from __future__ import annotations

import typing
from typing import Any

from repro.events.types import Event, EventType
from repro.placeless.collection import DocumentCollection
from repro.placeless.properties import ActiveProperty

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.manager import DocumentCache

__all__ = ["CollectionPrefetchProperty", "attach_collection_prefetch"]


class CollectionPrefetchProperty(ActiveProperty):
    """On read, queues the collection's siblings for prefetch.

    ``max_siblings`` bounds how much speculative work one read can
    trigger (prefetching a 500-document collection on every access would
    be a denial of service on the Placeless servers).
    """

    execution_cost_ms = 0.05

    def __init__(
        self,
        collection: DocumentCollection,
        cache: "DocumentCache",
        max_siblings: int | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name or f"prefetch:{collection.name}")
        self.collection = collection
        self.cache = cache
        self.max_siblings = max_siblings
        self.prefetches_requested = 0

    def events_of_interest(self):
        return {EventType.GET_INPUT_STREAM, EventType.READ_FORWARDED}

    def handle(self, event: Event) -> Any:
        reference = self.attachment
        if reference is None:
            return None
        siblings = self.collection.siblings_of(reference)
        if self.max_siblings is not None:
            siblings = siblings[: self.max_siblings]
        queued = 0
        for sibling in siblings:
            if self.cache.request_prefetch(sibling):
                queued += 1
        self.prefetches_requested += queued
        return queued


def attach_collection_prefetch(
    collection: DocumentCollection,
    cache: "DocumentCache",
    max_siblings: int | None = None,
) -> list[CollectionPrefetchProperty]:
    """Attach a prefetch property to every member of *collection*."""
    attached = []
    for reference in collection:
        prop = CollectionPrefetchProperty(
            collection, cache, max_siblings=max_siblings
        )
        reference.attach(prop)
        attached.append(prop)
    return attached
