"""The summary property.

"a summary property may return a condensed version of the document
instead of its original in full length" (§1).  The summariser is
extractive and deterministic: it keeps the first *sentences_per_paragraph*
sentences of each paragraph, capped at *max_sentences* overall — enough to
exercise a transform that changes the content *size*, which matters to
size-aware replacement policies (Greedy-Dual-Size divides by size).
"""

from __future__ import annotations

import re

from repro.events.types import Event, EventType
from repro.placeless.properties import ActiveProperty
from repro.streams.base import InputStream
from repro.streams.transforms import BufferedTransformInputStream, text_transform

__all__ = ["SummaryProperty"]

_SENTENCE_RE = re.compile(r"[^.!?]*[.!?]+\s*|[^.!?]+$")


class SummaryProperty(ActiveProperty):
    """Condenses read content to leading sentences per paragraph."""

    execution_cost_ms = 1.5
    transforms_reads = True

    def __init__(
        self,
        sentences_per_paragraph: int = 1,
        max_sentences: int = 10,
        name: str = "summarize",
        version: int = 1,
    ) -> None:
        super().__init__(name, version)
        self.sentences_per_paragraph = sentences_per_paragraph
        self.max_sentences = max_sentences

    def events_of_interest(self):
        return {EventType.GET_INPUT_STREAM}

    def summarize_text(self, text: str) -> str:
        """Keep the leading sentences of each paragraph."""
        kept: list[str] = []
        total = 0
        paragraphs = text.split("\n\n")
        for paragraph in paragraphs:
            if total >= self.max_sentences:
                break
            sentences = [
                s for s in _SENTENCE_RE.findall(paragraph) if s.strip()
            ]
            take = min(
                self.sentences_per_paragraph,
                self.max_sentences - total,
                len(sentences),
            )
            if take > 0:
                kept.append("".join(sentences[:take]).strip())
                total += take
        return "\n\n".join(kept)

    def wrap_input(self, stream: InputStream, event: Event) -> InputStream:
        return BufferedTransformInputStream(
            stream, text_transform(self.summarize_text)
        )

    def transform_signature(self) -> str:
        return (
            f"summarize/{self.name}/v{self.version}"
            f"/{self.sentences_per_paragraph}/{self.max_sentences}"
        )
