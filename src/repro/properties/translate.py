"""The "translate to French" property (§1's flagship example).

"the 'translate to French' property can return an English document in
French" — and, for caching, "when a language translation property is
added to a document, the cached content in a different language is no
longer valid" (§3 consistency class 2).

The translator is a word-table substitution over the read path.  It is a
*buffered* transform (a real translator needs the full sentence/document)
which also makes it one of the expensive properties replacement policies
should favour keeping cached.
"""

from __future__ import annotations

import hashlib
import re

from repro.events.types import Event, EventType
from repro.placeless.properties import ActiveProperty
from repro.streams.base import InputStream
from repro.streams.transforms import BufferedTransformInputStream, text_transform

__all__ = ["TranslationProperty", "ENGLISH_TO_FRENCH"]

#: A small English→French word table sufficient for the examples/tests.
ENGLISH_TO_FRENCH: dict[str, str] = {
    "the": "le",
    "a": "un",
    "and": "et",
    "document": "document",
    "documents": "documents",
    "cache": "cache",
    "caching": "mise en cache",
    "property": "propriété",
    "properties": "propriétés",
    "active": "actives",
    "paper": "papier",
    "workshop": "atelier",
    "with": "avec",
    "of": "de",
    "for": "pour",
    "is": "est",
    "are": "sont",
    "system": "système",
    "user": "utilisateur",
    "users": "utilisateurs",
    "content": "contenu",
    "hello": "bonjour",
    "world": "monde",
}

_WORD_RE = re.compile(r"[A-Za-z]+")


class TranslationProperty(ActiveProperty):
    """Translates read content through a word table."""

    execution_cost_ms = 2.5
    transforms_reads = True

    def __init__(
        self,
        table: dict[str, str] | None = None,
        name: str = "translate-to-french",
        target_language: str = "fr",
        version: int = 1,
    ) -> None:
        super().__init__(name, version)
        self.table = dict(ENGLISH_TO_FRENCH if table is None else table)
        self.target_language = target_language
        self.words_translated = 0

    def events_of_interest(self):
        return {EventType.GET_INPUT_STREAM}

    def _translate_word(self, match: re.Match[str]) -> str:
        word = match.group(0)
        replacement = self.table.get(word.lower())
        if replacement is None:
            return word
        self.words_translated += 1
        if word[0].isupper():
            replacement = replacement.capitalize()
        return replacement

    def translate_text(self, text: str) -> str:
        """Apply the word table to *text*."""
        return _WORD_RE.sub(self._translate_word, text)

    def wrap_input(self, stream: InputStream, event: Event) -> InputStream:
        return BufferedTransformInputStream(
            stream, text_transform(self.translate_text)
        )

    def transform_signature(self) -> str:
        fingerprint = hashlib.md5(
            repr(sorted(self.table.items())).encode()
        ).hexdigest()[:8]
        return (
            f"translate/{self.name}/{self.target_language}"
            f"/v{self.version}/{fingerprint}"
        )
