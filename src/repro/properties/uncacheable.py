"""A property that simply vetoes caching.

§3: "properties that change the content of the document or the bit
provider may deem a document uncacheable".  This property is the minimal
expression of that veto — useful both in tests and for documents whose
owner wants to opt out of caching entirely (privacy, rapidly-changing
personalization, etc.).
"""

from __future__ import annotations

from repro.cache.cacheability import Cacheability
from repro.events.types import EventType
from repro.placeless.properties import ActiveProperty

__all__ = ["UncacheableProperty"]


class UncacheableProperty(ActiveProperty):
    """Votes UNCACHEABLE on every read path it participates in."""

    execution_cost_ms = 0.01

    def __init__(self, name: str = "uncacheable", version: int = 1) -> None:
        super().__init__(name, version)

    def events_of_interest(self):
        return {EventType.GET_INPUT_STREAM}

    def cacheability_vote(self) -> Cacheability:
        return Cacheability.UNCACHEABLE
