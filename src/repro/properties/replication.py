"""The timer-driven replication property from Figure 1.

"One of Eyal's personal properties maintains a copy of the content both
at PARC and at Rice ... The replication property is invoked only as a
result of timer events, assuming that Eyal's replication between PARC and
Rice occurs only once at the end of the day." (§2)

On attach, the property subscribes a periodic timer with the kernel's
timer service; each firing copies the document's current source content
to a replica target (a path in a — possibly remote — simulated
filesystem).  The copy is made from the *source* bytes, not the
transformed read path, matching a bit-level replica.
"""

from __future__ import annotations

from typing import Any

from repro.events.timers import TimerService
from repro.events.types import Event, EventType
from repro.placeless.properties import ActiveProperty
from repro.providers.simfs import SimulatedFileSystem

__all__ = ["ReplicationProperty"]

#: "once at the end of the day"
ONE_DAY_MS = 24 * 60 * 60 * 1000.0


class ReplicationProperty(ActiveProperty):
    """Copies source content to a replica filesystem on a periodic timer."""

    execution_cost_ms = 1.0

    def __init__(
        self,
        timers: TimerService,
        replica_fs: SimulatedFileSystem,
        replica_path: str,
        period_ms: float = ONE_DAY_MS,
        name: str = "replicate",
        version: int = 1,
    ) -> None:
        super().__init__(name, version)
        self._timers = timers
        self.replica_fs = replica_fs
        self.replica_path = replica_path
        self.period_ms = period_ms
        self.replications = 0
        self._subscription = None

    def events_of_interest(self):
        return {EventType.TIMER}

    def on_attach(self) -> None:
        base = getattr(self.attachment, "base", self.attachment)
        self._subscription = self._timers.subscribe_periodic(
            property_id=self.property_id,
            document_id=base.document_id,
            period_ms=self.period_ms,
            deliver=self._dispatched,
        )

    def on_detach(self) -> None:
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    def handle(self, event: Event) -> Any:
        if event.type is not EventType.TIMER:
            return None
        base = getattr(self.attachment, "base", self.attachment)
        if base is None:
            return None
        content = base.provider.peek()
        self.replica_fs.write(self.replica_path, content)
        self.replications += 1
        return self.replica_path

    @property
    def replica_content(self) -> bytes:
        """What the replica currently holds (empty before first firing)."""
        if not self.replica_fs.exists(self.replica_path):
            return b""
        return self.replica_fs.read(self.replica_path)
