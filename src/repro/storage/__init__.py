"""The durable L2 tier: checksummed segments under the in-memory cache.

The paper's cache is volatile — a crashed cache re-answers "is this copy
valid?" from scratch.  This package gives a
:class:`~repro.cache.manager.DocumentCache` a durable second tier so a
restart is *warm*: evicted entries demote to disk
(:class:`~repro.storage.store.DiskContentStore` + a catalog segment),
misses promote them back under full validity gating, the write-back
journal and transform memo spill to disk, and
:meth:`~repro.storage.tier.L2Tier.recover` rebuilds all of it after a
crash — every recovered entry verifier-gated on its first serve.

Everything is built on :class:`~repro.storage.segment.SegmentLog`
(CRC-framed append-only files with an explicit durable watermark), so
torn tails, corrupt records and lying fsyncs are modeled and tested, not
assumed away.  Disk faults trip a storage breaker; while it is open the
cache falls back to L1-only semantics rather than failing reads.

Enable with ``DocumentCache(..., storage_policy=DefaultStoragePolicy())``
— with no policy the tier does not exist and cache behaviour is
byte-identical to earlier revisions.
"""

from repro.storage.segment import (
    K_CONTENT,
    K_DEMOTE,
    K_DROP,
    K_FLUSHED,
    K_JOURNAL,
    K_MEMO,
    SegmentLog,
    pack_fields,
    unpack_fields,
)
from repro.storage.store import DiskContentStore, DiskSlot
from repro.storage.tier import L2Record, L2Tier, StorageStats

__all__ = [
    "SegmentLog",
    "pack_fields",
    "unpack_fields",
    "K_CONTENT",
    "K_DEMOTE",
    "K_DROP",
    "K_JOURNAL",
    "K_FLUSHED",
    "K_MEMO",
    "DiskSlot",
    "DiskContentStore",
    "L2Record",
    "L2Tier",
    "StorageStats",
]
