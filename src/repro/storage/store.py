"""Disk-backed content-addressed store: the durable half of the L2 tier.

Mirrors the in-memory :class:`~repro.content.store.ContentStore` API —
``put_signed`` / ``adopt`` / ``get`` / ``release`` with reference counts
— over a :class:`~repro.storage.segment.SegmentLog` of content records.
Bytes live once per distinct signature (the paper's §3 sharing argument
applies on disk exactly as in memory); the in-memory index maps each
signature to its record offset and refcount.

Refcounts here are *not* persisted: they describe which demoted catalog
entries currently reference a blob, and recovery rebuilds them by
re-adopting once per surviving catalog record.  Dead blobs (refcount
zero) stay on disk until :meth:`DiskContentStore.compact` rewrites the
segment with only live records — the same takeover shape as
``ContentStore.put_signed`` + ``adopt``: the rewrite carries each
surviving blob's refcount over verbatim, so no caller ever observes a
count dip during compaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.content.signature import ContentSignature, sign
from repro.errors import StorageError
from repro.storage.segment import (
    K_CONTENT,
    SegmentLog,
    pack_fields,
    unpack_fields,
)

__all__ = ["DiskSlot", "DiskContentStore"]


@dataclass
class DiskSlot:
    """Index entry for one distinct byte string held on disk."""

    signature: ContentSignature
    offset: int
    size: int
    refcount: int = 0


class DiskContentStore:
    """Deduplicating, CRC-verified byte store over one segment file."""

    def __init__(self, path: "Path | str") -> None:
        self.log = SegmentLog(path)
        self._by_signature: dict[ContentSignature, DiskSlot] = {}
        #: Complete-but-corrupt content records dropped by scans.
        self.corrupt_dropped = 0
        self._recover_index()

    def _recover_index(self) -> None:
        """Rebuild the index from the segment (refcounts start at 0)."""
        self._by_signature.clear()
        records, corrupt = self.log.scan_records()
        self.corrupt_dropped += corrupt
        for kind, payload, offset in records:
            if kind != K_CONTENT:
                continue
            try:
                digest_raw, content = unpack_fields(payload)
            except StorageError:
                self.corrupt_dropped += 1
                continue
            signature = ContentSignature(digest_raw.decode("ascii"))
            if sign(content) != signature:
                # The frame's CRC held but the content does not match
                # its recorded digest — treat as corruption, not data.
                self.corrupt_dropped += 1
                continue
            self._by_signature[signature] = DiskSlot(
                signature=signature, offset=offset, size=len(content),
            )

    def put_signed(
        self,
        content: bytes,
        signature: ContentSignature,
        *,
        corrupt: bool = False,
    ) -> ContentSignature:
        """Store *content* under *signature* (or bump its refcount).

        ``corrupt=True`` forwards the fault plan's corrupt-record
        decision to the segment writer: the frame lands on disk with a
        flipped payload byte, detected at the next read or recovery.
        """
        assert signature == sign(content), (
            f"put_signed: signature {signature.short} does not match "
            "the supplied content"
        )
        slot = self._by_signature.get(signature)
        if slot is None:
            payload = pack_fields(signature.digest.encode("ascii"), content)
            offset = self.log.append(K_CONTENT, payload, corrupt=corrupt)
            slot = DiskSlot(
                signature=signature, offset=offset, size=len(content),
            )
            self._by_signature[signature] = slot
        slot.refcount += 1
        return signature

    def adopt(self, signature: ContentSignature) -> None:
        """Add a reference to already-stored content."""
        self._slot(signature).refcount += 1

    def get(self, signature: ContentSignature) -> bytes:
        """Bytes for *signature*, CRC- and digest-verified at read time.

        Raises :class:`StorageError` when the record is missing or the
        bytes on disk no longer hash to the signature — the caller
        (the L2 tier) converts that into a drop plus a breaker failure.
        """
        slot = self._slot(signature)
        _, payload = self.log.read(slot.offset)  # raises on CRC mismatch
        digest_raw, content = unpack_fields(payload)
        if digest_raw.decode("ascii") != signature.digest:
            raise StorageError(
                f"content record at offset {slot.offset} belongs to "
                f"another signature (wanted {signature.short})"
            )
        if sign(content) != signature:
            raise StorageError(
                f"content for {signature.short} fails its digest check"
            )
        return content

    def size_of(self, signature: ContentSignature) -> int:
        """Size in bytes of the content behind *signature*."""
        return self._slot(signature).size

    def refcount(self, signature: ContentSignature) -> int:
        """Current reference count of *signature* (0 if absent)."""
        slot = self._by_signature.get(signature)
        return 0 if slot is None else slot.refcount

    def release(self, signature: ContentSignature) -> None:
        """Drop one reference; the blob is dead (awaiting compaction) at 0."""
        slot = self._slot(signature)
        slot.refcount -= 1
        if slot.refcount <= 0:
            del self._by_signature[signature]

    def drop(self, signature: ContentSignature) -> None:
        """Forget *signature* entirely regardless of refcount (corruption)."""
        self._by_signature.pop(signature, None)

    def compact(self) -> int:
        """Rewrite the segment with only live blobs; returns bytes freed.

        Mirrors the in-memory store's refcount-takeover contract: each
        surviving slot keeps its refcount across the rewrite, and the
        swap is atomic (``os.replace``), so a crash mid-compaction
        leaves either the old segment or the new one — never a mix.
        """
        before = self.log.size
        live = sorted(self._by_signature.values(), key=lambda s: s.offset)
        records: list[tuple[int, bytes]] = []
        for slot in live:
            _, payload = self.log.read(slot.offset)
            records.append((K_CONTENT, payload))
        offsets = self.log.replace_with(records)
        for index, slot in enumerate(live):
            slot.offset = offsets[index]
        return before - self.log.size

    def crash(self) -> None:
        """Lose unsynced bytes and rebuild the index from what survived.

        Refcounts restart at zero — the owning tier re-adopts once per
        catalog record it recovers, exactly like a fresh open.
        """
        self.log.crash()
        self._recover_index()

    def sync(self, *, lost: bool = False) -> None:
        """Fsync the segment (watermark not advanced when *lost*)."""
        self.log.sync(lost=lost)

    def __contains__(self, signature: ContentSignature) -> bool:
        return signature in self._by_signature

    def __len__(self) -> int:
        return len(self._by_signature)

    @property
    def physical_bytes(self) -> int:
        """Bytes of live content (one copy per distinct signature)."""
        return sum(slot.size for slot in self._by_signature.values())

    @property
    def logical_bytes(self) -> int:
        """Bytes a non-deduplicating tier would hold (refcount-weighted)."""
        return sum(
            slot.size * slot.refcount
            for slot in self._by_signature.values()
        )

    @property
    def dead_bytes(self) -> int:
        """File bytes not accounted to any live blob (compaction debt)."""
        return max(0, self.log.size - sum(
            slot.size for slot in self._by_signature.values()
        ))

    def _slot(self, signature: ContentSignature) -> DiskSlot:
        try:
            return self._by_signature[signature]
        except KeyError:
            raise StorageError(
                f"no durable content for signature {signature.short}"
            ) from None
