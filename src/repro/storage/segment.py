"""Checksummed append-only segment files: the durable tier's byte format.

Every durable structure in the L2 tier — content blobs, the demotion
catalog, the spilled write-back journal, the spilled transform memo —
is one :class:`SegmentLog`: a single append-only file of framed records.

Record framing::

    +-------+------+-----------+------------+---------------+
    | magic | kind | length u32| crc32 u32  | payload bytes |
    | b"PL" | u8   | big-endian| of payload | length bytes  |
    +-------+------+-----------+------------+---------------+

The format is deliberately crash-shaped:

* **Torn tails truncate.**  A crash can leave a partial record at the
  end of the file (short header, short payload, or garbage where the
  magic should be).  :meth:`SegmentLog.scan_records` truncates the file
  at the first such frame — exactly the bytes an interrupted append
  would leave — and counts the truncation.
* **Corrupt records skip.**  A complete frame whose payload fails its
  CRC is *skipped*, not fatal: the header (written before the fault
  seam garbles payload bytes) still carries the true length, so the
  scan can step over the damage and keep every later record.
* **Only fsynced bytes survive.**  :meth:`append` writes into the OS
  buffer; :meth:`sync` advances the durable watermark (unless the fault
  plan decides the fsync silently lied).  :meth:`crash` truncates the
  file back to the watermark — the simulation's model of process death
  plus page-cache loss.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path

from repro.errors import StorageError

__all__ = [
    "SegmentLog",
    "pack_fields",
    "unpack_fields",
    "K_CONTENT",
    "K_DEMOTE",
    "K_DROP",
    "K_JOURNAL",
    "K_FLUSHED",
    "K_MEMO",
]

#: Record kinds, one namespace across every segment the tier owns.
K_CONTENT = 1
K_DEMOTE = 2
K_DROP = 3
K_JOURNAL = 4
K_FLUSHED = 5
K_MEMO = 6

_MAGIC = b"PL"
_HEADER = struct.Struct(">2sBII")  # magic, kind, payload length, crc32
_FIELD = struct.Struct(">I")


def pack_fields(*fields: bytes) -> bytes:
    """Frame *fields* as length-prefixed byte strings in one payload."""
    parts: list[bytes] = []
    for field in fields:
        parts.append(_FIELD.pack(len(field)))
        parts.append(field)
    return b"".join(parts)


def unpack_fields(payload: bytes) -> list[bytes]:
    """Invert :func:`pack_fields`; raises :class:`StorageError` on damage."""
    fields: list[bytes] = []
    offset = 0
    while offset < len(payload):
        if offset + _FIELD.size > len(payload):
            raise StorageError("truncated field header in segment payload")
        (length,) = _FIELD.unpack_from(payload, offset)
        offset += _FIELD.size
        if offset + length > len(payload):
            raise StorageError("truncated field body in segment payload")
        fields.append(payload[offset:offset + length])
        offset += length
    return fields


class SegmentLog:
    """One append-only file of CRC-framed records.

    The log tracks a *durable watermark*: the file offset confirmed by
    the last honest fsync.  :meth:`crash` truncates back to it, so a
    test (or the fault plan) can model exactly which appends survive
    process death.
    """

    def __init__(self, path: "Path | str") -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.touch(exist_ok=True)
        self._size = self.path.stat().st_size
        #: Offset confirmed durable by the last (non-lost) fsync.  A
        #: freshly opened log trusts what it finds on disk — recovery
        #: scans decide what of it is usable.
        self._durable = self._size
        #: Torn tails truncated across the log's lifetime of scans.
        self.torn_truncations = 0
        #: Complete-but-corrupt records skipped across scans/reads.
        self.corrupt_skips = 0

    @property
    def size(self) -> int:
        """Current file size in bytes (including unsynced appends)."""
        return self._size

    @property
    def durable_size(self) -> int:
        """Bytes guaranteed to survive :meth:`crash`."""
        return self._durable

    def append(self, kind: int, payload: bytes, *, corrupt: bool = False) -> int:
        """Append one record; returns its file offset.

        ``corrupt=True`` models the fault plan's ``corrupt_record``
        seam: the CRC is computed over the *intended* payload, then one
        payload byte is flipped on its way to disk — the frame stays
        walkable but fails its checksum forever after.
        """
        written = payload
        if corrupt and payload:
            flipped = bytearray(payload)
            flipped[len(flipped) // 2] ^= 0xFF
            written = bytes(flipped)
        header = _HEADER.pack(
            _MAGIC, kind, len(payload), zlib.crc32(payload) & 0xFFFFFFFF
        )
        offset = self._size
        with open(self.path, "r+b") as handle:
            handle.seek(offset)
            handle.write(header)
            handle.write(written)
        self._size = offset + _HEADER.size + len(payload)
        return offset

    def sync(self, *, lost: bool = False) -> None:
        """Advance the durable watermark — unless the fsync was *lost*.

        A lost fsync models the classic lying-disk failure: the call
        returns success but the bytes are still only in the page cache,
        so a subsequent :meth:`crash` drops them.
        """
        if not lost:
            self._durable = self._size

    def crash(self) -> None:
        """Truncate to the durable watermark (process death + cache loss)."""
        with open(self.path, "r+b") as handle:
            handle.truncate(self._durable)
        self._size = self._durable

    def read(self, offset: int) -> tuple[int, bytes]:
        """The ``(kind, payload)`` at *offset*; raises on any damage."""
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise StorageError(
                    f"short record header at offset {offset} in {self.path}"
                )
            magic, kind, length, crc = _HEADER.unpack(header)
            if magic != _MAGIC:
                raise StorageError(
                    f"bad record magic at offset {offset} in {self.path}"
                )
            payload = handle.read(length)
        if len(payload) < length:
            raise StorageError(
                f"short record payload at offset {offset} in {self.path}"
            )
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            self.corrupt_skips += 1
            raise StorageError(
                f"record checksum mismatch at offset {offset} in {self.path}"
            )
        return kind, payload

    def scan_records(self) -> tuple[list[tuple[int, bytes, int]], int]:
        """Walk the whole log: ``([(kind, payload, offset), ...], corrupt)``.

        Complete frames failing their CRC are skipped and counted in
        the returned ``corrupt`` tally; a torn tail (short frame or bad
        magic) truncates the file at the frame start.  After the scan
        the on-disk log holds only whole frames.
        """
        records: list[tuple[int, bytes, int]] = []
        corrupt = 0
        data = self.path.read_bytes()
        offset = 0
        truncate_at: int | None = None
        while offset < len(data):
            if offset + _HEADER.size > len(data):
                truncate_at = offset
                break
            magic, kind, length, crc = _HEADER.unpack_from(data, offset)
            if magic != _MAGIC:
                truncate_at = offset
                break
            body_start = offset + _HEADER.size
            if body_start + length > len(data):
                truncate_at = offset
                break
            payload = data[body_start:body_start + length]
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                corrupt += 1
                self.corrupt_skips += 1
            else:
                records.append((kind, payload, offset))
            offset = body_start + length
        if truncate_at is not None:
            with open(self.path, "r+b") as handle:
                handle.truncate(truncate_at)
            self._size = truncate_at
            self._durable = min(self._durable, truncate_at)
            self.torn_truncations += 1
        return records, corrupt

    def replace_with(self, records: list[tuple[int, bytes]]) -> dict[int, int]:
        """Atomically rewrite the log to exactly *records* (compaction).

        Writes the survivors to a sibling file, fsyncs it, and swaps it
        into place with :func:`os.replace`; returns a map from each
        record's *input index* to its new offset.
        """
        scratch = self.path.with_suffix(self.path.suffix + ".compact")
        offsets: dict[int, int] = {}
        with open(scratch, "wb") as handle:
            position = 0
            for index, (kind, payload) in enumerate(records):
                header = _HEADER.pack(
                    _MAGIC, kind, len(payload),
                    zlib.crc32(payload) & 0xFFFFFFFF,
                )
                handle.write(header)
                handle.write(payload)
                offsets[index] = position
                position += _HEADER.size + len(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, self.path)
        self._size = self.path.stat().st_size
        self._durable = self._size
        return offsets
