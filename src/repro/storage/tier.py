"""The durable L2 tier: demote-on-evict, promote-on-hit, crash-warm restart.

:class:`L2Tier` sits under the in-memory L1 (:class:`~repro.cache.core.
CacheCore`'s entry table + content store) and owns four append-only
segments in one directory:

* ``content.seg`` — a :class:`~repro.storage.store.DiskContentStore` of
  demoted bytes, deduplicated by content signature;
* ``catalog.seg`` — demotion records (entry metadata) and drop
  tombstones; the last record per (document, user) key wins on replay;
* ``journal.seg`` — the write-back journal spilled to disk: one record
  per buffered write, plus flushed tombstones;
* ``memo.seg`` — verifier-free transform-memo records, so a restarted
  cache keeps its ``(source, chain) → output`` knowledge.

**Tiering is exclusive**: eviction *demotes* an entry's bytes and
metadata to disk; a later miss *promotes* them back — removing the disk
copy — instead of fetching and re-running the property chain.

**Every promoted byte is gated.**  The paper's validity question ("is
this copy still valid?") is answered the same way after a restart as
before one: a promotion re-checks the chain signature the reference
would produce today, probes the current source signature, CRC-verifies
the bytes off disk, and re-runs the entry's verifiers.  Records
recovered from a cold catalog carry no live verifier objects, so they
are rebuilt from the reference's properties and *must* match the
recorded verifier fingerprints exactly — any mismatch refuses the
promotion conservatively.  A recovered record is always verified on its
first serve, regardless of the policy's ``verify_on_promote`` knob.

**Failure is absorbed, not propagated.**  Disk faults (write failures,
lying fsyncs, corrupted records, slow I/O — see
:meth:`~repro.faults.plan.FaultPlan.check_disk_write`) count against a
storage circuit breaker (the containment layer's
:class:`~repro.cache.containment.CircuitBreaker` machinery with
storage-tuned config); while the breaker is open every L2 operation is
skipped and the cache falls back to plain L1 semantics.  No read ever
errors because the disk is sick, and no stale or damaged byte is ever
served because every promotion is gated.
"""

from __future__ import annotations

import json
import re
import tempfile
import typing
from dataclasses import dataclass, field
from pathlib import Path

from repro.cache.cacheability import Cacheability
from repro.cache.containment import BreakerConfig, BreakerRegistry
from repro.cache.entry import CacheEntry, EntryKey
from repro.cache.memo import ChainFingerprint, MemoRecord
from repro.cache.notifiers import install_minimum_notifiers
from repro.content.signature import ContentSignature, sign
from repro.errors import PlacelessError, StorageError
from repro.ids import DocumentId, ReferenceId, UserId
from repro.storage.segment import (
    K_DEMOTE,
    K_DROP,
    K_FLUSHED,
    K_JOURNAL,
    K_MEMO,
    SegmentLog,
    pack_fields,
    unpack_fields,
)
from repro.storage.store import DiskContentStore
from repro.streams.chain import read_chain_properties

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.core import CacheCore
    from repro.cache.policies import StoragePolicy
    from repro.cache.verifiers import Verifier
    from repro.placeless.reference import DocumentReference

__all__ = ["L2Record", "StorageStats", "L2Tier"]


@dataclass
class L2Record:
    """One demoted entry's metadata, as held in the in-memory catalog."""

    key: EntryKey
    signature: ContentSignature
    size: int
    cacheability: Cacheability
    replacement_cost_ms: float
    chain_signature: tuple[str, ...]
    verifier_fingerprints: tuple[str, ...]
    source_signature: ContentSignature | None
    reference_id: "ReferenceId | None"
    pinned: bool = False
    #: True when this record was rebuilt from the on-disk catalog (no
    #: live verifier objects); such records are always verified on
    #: their first serve.
    recovered: bool = False
    #: Live verifier objects carried over from the demoted entry;
    #: ``None`` for recovered records, which rebuild them from the
    #: reference's properties at promote time.
    verifiers: "list[Verifier] | None" = None

    def to_payload(self) -> bytes:
        """Serialize for the catalog segment (live verifiers excluded)."""
        return json.dumps({
            "document": self.key.document_id.value,
            "user": self.key.user_id.value,
            "digest": self.signature.digest,
            "size": self.size,
            "cacheability": self.cacheability.name,
            "cost": self.replacement_cost_ms,
            "chain": list(self.chain_signature),
            "verifier_fps": list(self.verifier_fingerprints),
            "source": (
                None if self.source_signature is None
                else self.source_signature.digest
            ),
            "reference": (
                None if self.reference_id is None
                else self.reference_id.value
            ),
            "pinned": self.pinned,
        }, sort_keys=True).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "L2Record":
        """Rebuild a (recovered, verifier-free) record from the catalog."""
        data = json.loads(payload.decode("utf-8"))
        return cls(
            key=EntryKey(
                DocumentId(data["document"]), UserId(data["user"])
            ),
            signature=ContentSignature(data["digest"]),
            size=data["size"],
            cacheability=Cacheability[data["cacheability"]],
            replacement_cost_ms=data["cost"],
            chain_signature=tuple(data["chain"]),
            verifier_fingerprints=tuple(data["verifier_fps"]),
            source_signature=(
                None if data["source"] is None
                else ContentSignature(data["source"])
            ),
            reference_id=(
                None if data["reference"] is None
                else ReferenceId(data["reference"])
            ),
            pinned=data["pinned"],
            recovered=True,
            verifiers=None,
        )


@dataclass
class StorageStats:
    """Counters maintained directly by the tier (its sole writer)."""

    #: Evictions whose bytes + metadata landed in the L2 tier.
    demotions: int = 0
    #: Evictions skipped (no source signature to gate promotion with,
    #: or an identical copy already demoted).
    demote_skips: int = 0
    #: Misses answered by promoting a demoted copy back into L1.
    promotions: int = 0
    #: The subset of promotions served from records recovered across a
    #: crash/restart — the warm-restart signal the A18 bench gates on.
    recovered_promotions: int = 0
    #: Promotions refused because the reference's chain changed.
    promote_chain_mismatches: int = 0
    #: Promotions refused because the probed source signature changed.
    promote_source_mismatches: int = 0
    #: Promotions refused because the bytes failed CRC/digest checks.
    promote_corrupt_drops: int = 0
    #: Promotions refused by a verifier (failed run or unreconstructible
    #: verifier set).
    promote_verifier_drops: int = 0
    #: Verifier executions performed at promote time (every recovered
    #: record's first serve runs here).
    promote_verifier_runs: int = 0
    #: Write-back journal records spilled to disk.
    journal_spills: int = 0
    #: Dirty writes restored from the disk journal at recover time.
    journal_replayed: int = 0
    #: Disk-journal records whose reference no longer resolves.
    journal_unresolved: int = 0
    #: Memo records spilled to disk / reloaded at recover time.
    memo_spills: int = 0
    memo_reloaded: int = 0
    #: Catalog records live after the last recover.
    recovered_entries: int = 0
    #: Corrupt records detected and dropped during recovers (the A18
    #: diskchaos gate: corruption handled, not served).
    corrupt_records_recovered: int = 0
    #: Catalog records dropped at recover because their bytes were lost.
    dropped_records: int = 0
    #: Appends that the fault plan failed outright.
    write_failures: int = 0
    #: Fsyncs that silently lied (watermark not advanced).
    fsyncs_lost: int = 0
    #: Operations skipped because the storage breaker was open — each
    #: one is a read that fell back to L1-only semantics.
    fallback_skips: int = 0
    #: Times the storage breaker tripped open / closed again.
    breaker_trips: int = 0
    breaker_closes: int = 0
    #: Crashes taken and recovers completed.
    crashes: int = 0
    restarts: int = 0
    #: Bytes reclaimed by compactions.
    compacted_bytes: int = 0
    by_reason: dict[str, int] = field(default_factory=dict)


def _sanitize(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name) or "cache"


class L2Tier:
    """One cache's durable tier: four segments + the storage breaker."""

    def __init__(self, core: "CacheCore", policy: "StoragePolicy") -> None:
        self.core = core
        self.policy = policy
        self.stats = StorageStats()
        if policy.directory is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-l2-")
            directory = Path(self._tmp.name)
        else:
            self._tmp = None
            directory = Path(policy.directory) / _sanitize(
                str(core.cache_id)
            )
        self.directory = directory
        self.disk = DiskContentStore(directory / "content.seg")
        self.catalog_log = SegmentLog(directory / "catalog.seg")
        self.journal_log = SegmentLog(directory / "journal.seg")
        self.memo_log = SegmentLog(directory / "memo.seg")
        self.breakers = BreakerRegistry(BreakerConfig(
            failure_threshold=policy.breaker_failure_threshold,
            probation_delay_ms=policy.breaker_probation_ms,
            half_open_successes=1,
        ))
        self._breaker_key = ("storage", str(core.cache_id))
        self._catalog: dict[EntryKey, L2Record] = {}
        # Corrupt content drops already credited to the stats; the
        # content index rebuilds both at open and inside crash(), so
        # recover() credits the delta since the last recovery rather
        # than since its own entry (crash-rebuild drops must count).
        self._disk_corrupt_seen = 0
        # A tier opened over an existing directory starts warm: the
        # catalog, journal and memo segments are replayed immediately
        # (a fresh directory replays empty scans and stays cold).
        self.recover(restart=False)

    # -- breaker gating --------------------------------------------------------

    @property
    def breaker_open(self) -> bool:
        """True while the storage breaker refuses disk operations."""
        breaker = self.breakers.peek(self._breaker_key)
        return breaker is not None and not breaker.allow(
            self.core.ctx.clock.now_ms
        )

    def _allow(self, site: str) -> bool:
        breaker = self.breakers.get(self._breaker_key)
        if breaker.allow(self.core.ctx.clock.now_ms):
            return True
        self.stats.fallback_skips += 1
        self.core.emit("storage", "fallback", site=site)
        return False

    def _ok(self) -> None:
        if self.breakers.get(self._breaker_key).record_success(
            self.core.ctx.clock.now_ms
        ):
            self.stats.breaker_closes += 1
            self.core.emit("storage", "breaker-closed")

    def _fail(self, site: str) -> None:
        if self.breakers.get(self._breaker_key).record_failure(
            self.core.ctx.clock.now_ms
        ):
            self.stats.breaker_trips += 1
            self.core.emit("storage", "breaker-open", site=site)

    # -- fault-plan seams ------------------------------------------------------

    def _target(self, site: str) -> str:
        return f"{self.core.cache_id}:{site}"

    def _charge_io(self, site: str, cost_ms: float) -> None:
        plan = self.core.ctx.faults
        delay = 0.0
        if plan is not None:
            delay = plan.disk_io_delay_ms(self._target(site))
        self.core.ctx.charge(cost_ms + delay)

    def _write_fault(self, site: str) -> str | None:
        plan = self.core.ctx.faults
        if plan is None:
            return None
        return plan.check_disk_write(self._target(site))

    def _sync(self, site: str, *logs: SegmentLog) -> bool:
        """Fsync *logs* with one shared lost-draw; returns True if lost."""
        plan = self.core.ctx.faults
        lost = (
            plan.check_disk_sync(self._target(site))
            if plan is not None else False
        )
        if lost:
            self.stats.fsyncs_lost += 1
        self.core.ctx.charge(self.policy.sync_cost_ms)
        for log in logs:
            log.sync(lost=lost)
        return lost

    # -- demote-on-evict -------------------------------------------------------

    def demote(self, entry: CacheEntry, content: bytes) -> None:
        """Eviction hook: spill the victim's bytes + metadata to disk."""
        if not self.policy.demote_on_evict:
            return
        source = entry.policy_state.get("source_signature")
        if source is None:
            # Without a recorded source signature a promotion could not
            # probe for out-of-band changes — safer to just miss.
            self.stats.demote_skips += 1
            return
        existing = self._catalog.get(entry.key)
        if existing is not None and existing.signature == entry.signature:
            # Identical bytes already demoted: refresh the live sidecar
            # and skip the disk write.
            existing.verifiers = list(entry.verifiers)
            existing.recovered = False
            self.stats.demote_skips += 1
            return
        if not self._allow("demote"):
            return
        self._charge_io("demote", self.policy.write_cost_ms)
        action = self._write_fault("demote")
        if action == "fail":
            self.stats.write_failures += 1
            self._fail("demote")
            self.core.emit("storage", "write-failed", key=entry.key)
            return
        record = L2Record(
            key=entry.key,
            signature=entry.signature,
            size=entry.size,
            cacheability=entry.cacheability,
            replacement_cost_ms=entry.replacement_cost_ms,
            chain_signature=entry.chain_signature,
            verifier_fingerprints=tuple(
                verifier.fingerprint() for verifier in entry.verifiers
            ),
            source_signature=source,
            reference_id=entry.reference_id,
            pinned=entry.pinned,
            verifiers=list(entry.verifiers),
        )
        if existing is not None:
            # Superseding demotion: release the old bytes; the new
            # catalog record replaces the old one on replay (last wins).
            self._forget(existing)
        self.disk.put_signed(
            content, entry.signature, corrupt=(action == "corrupt")
        )
        self.catalog_log.append(K_DEMOTE, record.to_payload())
        self._sync("demote", self.disk.log, self.catalog_log)
        self._catalog[entry.key] = record
        self.stats.demotions += 1
        self._ok()
        self.core.emit(
            "storage", "demoted", key=entry.key, bytes=entry.size
        )

    # -- promote-on-hit --------------------------------------------------------

    def promote(self, ctx):
        """Miss hook (the pipeline's L2 stage): try a demoted copy.

        Returns ``None`` to fall through to the memo/fetch stages, or
        the terminal read result.  Every gate that refuses also drops
        the record — a demoted copy that failed any validity check is
        dead weight, never a second chance to serve stale bytes.
        """
        if not self.policy.promote_on_hit:
            return None
        record = self._catalog.get(ctx.key)
        if record is None:
            return None
        core = self.core
        if not self._allow("promote"):
            return None
        # Gate 1 — the chain this reference would run today must match
        # the chain that produced the demoted bytes (invalidation
        # classes b/c: property add/remove/modify/reorder).
        if core.expected_chain_signature(ctx.reference) != (
            record.chain_signature
        ):
            self._drop_record(record, "chain-changed")
            self.stats.promote_chain_mismatches += 1
            return None
        # Gate 2 — probe the *current* source signature (class a: the
        # source changed while the copy sat on disk).
        core.ctx.charge(self.policy.probe_cost_ms)
        if sign(ctx.reference.base.provider.peek()) != (
            record.source_signature
        ):
            self._drop_record(record, "source-changed")
            self.stats.promote_source_mismatches += 1
            return None
        # Gate 3 — the bytes themselves, CRC- and digest-checked.
        self._charge_io("promote", self.policy.read_cost_ms)
        try:
            content = self.disk.get(record.signature)
        except StorageError:
            self.disk.drop(record.signature)
            self._drop_record(record, "corrupt", release=False)
            self.stats.promote_corrupt_drops += 1
            self._fail("promote")
            self.core.emit("storage", "corrupt-dropped", key=ctx.key)
            return None
        # Gate 4 — verifiers (class d: external conditions).  Recovered
        # records rebuild them from the reference's properties and must
        # match the recorded fingerprints exactly.
        verifiers = self._verifiers_for(record, ctx.reference)
        if verifiers is None:
            self._drop_record(record, "verifiers-unreconstructible")
            self.stats.promote_verifier_drops += 1
            return None
        must_verify = record.recovered or self.policy.verify_on_promote
        if core.use_verifiers and verifiers and must_verify:
            if not self._verify(ctx.key, verifiers, content):
                self._drop_record(record, "verifier-refused")
                self.stats.promote_verifier_drops += 1
                self.core.emit("storage", "verifier-dropped", key=ctx.key)
                return None
        self._ok()
        return self._serve(ctx, record, content, verifiers)

    def _verifiers_for(
        self, record: L2Record, reference: "DocumentReference"
    ) -> "list[Verifier] | None":
        """The record's verifier set, live or rebuilt; ``None`` refuses.

        A recovered record holds only fingerprints.  The same sources
        that minted the fill-time verifiers mint fresh ones — the
        provider first, then the chain properties, mirroring how the
        read path accumulates ``PathMeta.verifiers`` — and their
        fingerprints cover code identity + configuration, so an exact
        tuple match proves the rebuilt set checks the same conditions
        the demoted entry's did.  Anything else (property gone,
        verifier reconfigured) refuses conservatively.  Observed state
        inside a rebuilt verifier is *current* rather than fill-time,
        which is sound here: the promote path has already probed that
        the source bytes are unchanged since the demotion.
        """
        if record.verifiers is not None:
            return record.verifiers
        minted = [reference.base.provider.make_verifier()]
        minted.extend(
            prop.make_verifier()
            for prop in read_chain_properties(reference)
        )
        rebuilt = [
            verifier for verifier in minted if verifier is not None
        ]
        fingerprints = tuple(
            verifier.fingerprint() for verifier in rebuilt
        )
        if fingerprints != record.verifier_fingerprints:
            return None
        return rebuilt

    def _verify(
        self, key: EntryKey, verifiers: "list[Verifier]", content: bytes
    ) -> bool:
        """Run *verifiers* over the promoted bytes (mirrors the memo's
        serve-time re-verification, fault seam included)."""
        from repro.cache.verifiers import Verdict

        core = self.core
        for verifier in verifiers:
            verifier_started_ms = core.ctx.clock.now_ms
            core.ctx.charge(verifier.cost_ms)
            core.emit(
                "verifier", "executed", key=key,
                started_ms=verifier_started_ms,
                cost_ms=verifier.cost_ms,
            )
            self.stats.promote_verifier_runs += 1
            try:
                if core.ctx.faults is not None:
                    core.ctx.faults.check_verifier(
                        verifier.cost_ms, label=type(verifier).__name__
                    )
                result = verifier.run(core.ctx.clock.now_ms, content)
            except Exception:
                return False
            if result.verdict is not Verdict.VALID:
                return False
        return True

    def _serve(self, ctx, record: L2Record, content: bytes, verifiers):
        """Install the promoted entry and terminate the read.

        Mirrors the memo stage's serve path: the local hop at zero
        bytes, the adoption handshake charge, ``put_signed`` leaving
        exactly one store reference the entry takes over, then the
        bookkeeping every fill performs.  Exclusive tiering: the
        promoted copy leaves the L2 catalog.
        """
        from repro.cache.core import ADOPTION_COST_MS, NOTIFIER_INSTALL_COST_MS
        from repro.cache.pipeline import CacheReadOutcome

        core = self.core
        key = ctx.key
        for hop in core.topology.hit_path():
            core.ctx.charge_hop(hop, 0)
        core.ctx.charge(ADOPTION_COST_MS)
        core.store.put_signed(content, record.signature)
        existing = core.entries.get(key)
        if existing is not None:
            core.remove_entry(existing)
        now = core.ctx.clock.now_ms
        entry = CacheEntry(
            key=key,
            signature=record.signature,
            size=record.size,
            cacheability=record.cacheability,
            verifiers=list(verifiers),
            replacement_cost_ms=record.replacement_cost_ms,
            chain_signature=record.chain_signature,
            reference_id=ctx.reference.reference_id,
            created_at_ms=now,
            last_access_ms=now,
        )
        entry.pinned = record.pinned
        entry.policy_state["source_signature"] = record.source_signature
        core.insert_entry(entry)
        core.policy.on_insert(entry)
        if core.install_notifiers:
            installed = install_minimum_notifiers(
                ctx.reference, core.bus, core.cache_id
            )
            core.ctx.charge(NOTIFIER_INSTALL_COST_MS * len(installed))
        if core.recovery is not None:
            core.recovery.note_reference(key, ctx.reference)
        if record.recovered:
            self.stats.recovered_promotions += 1
        self._drop_record(record, "promoted")
        # The promoted bytes are new physical content in L1 — make
        # room, protecting the entry just built.
        core.evict_to_capacity(protect=key)
        self.stats.promotions += 1
        core.emit("storage", "promoted", key=key, bytes=record.size)
        core.emit(
            "read", "miss-promoted", key=key, started_ms=ctx.started_ms
        )
        if ctx.for_fill:
            return (content, core.meta_from_entry(entry))
        elapsed = core.ctx.clock.now_ms - ctx.started_ms
        return CacheReadOutcome(
            content=content, hit=False, elapsed_ms=elapsed,
            disposition="miss-promoted",
        )

    # -- drops -----------------------------------------------------------------

    def drop(self, key: EntryKey) -> None:
        """Invalidation drop-through: a kill for *key* also kills the
        demoted copy (notifier/explicit invalidations must not leave a
        resurrectable stale copy on disk)."""
        record = self._catalog.get(key)
        if record is None:
            return
        self._drop_record(record, "invalidated")

    def _forget(self, record: L2Record, *, release: bool = True) -> None:
        self._catalog.pop(record.key, None)
        if release:
            try:
                self.disk.release(record.signature)
            except StorageError:
                pass

    def _drop_record(
        self, record: L2Record, reason: str, *, release: bool = True
    ) -> None:
        """Remove a catalog record and tombstone it on disk.

        A tombstone write that fails (or whose fsync is lost) is safe:
        the record could reappear after a crash, but every promotion is
        gated on chain/source/CRC/verifier checks, so a resurrected
        record can never serve a stale byte — it just wastes one probe.
        """
        self._forget(record, release=release)
        self.stats.by_reason[reason] = (
            self.stats.by_reason.get(reason, 0) + 1
        )
        if self._write_fault("tombstone") is not None:
            self.stats.write_failures += 1
            return
        self.catalog_log.append(K_DROP, json.dumps({
            "document": record.key.document_id.value,
            "user": record.key.user_id.value,
        }, sort_keys=True).encode("utf-8"))
        self._sync("tombstone", self.catalog_log)

    # -- journal / memo spill --------------------------------------------------

    def spill_journal_append(
        self,
        key: EntryKey,
        reference: "DocumentReference",
        content: bytes,
    ) -> None:
        """Journal hook: mirror one buffered write onto disk."""
        if not self.policy.spill_journal:
            return
        if not self._allow("journal"):
            return
        self._charge_io("journal", self.policy.write_cost_ms)
        action = self._write_fault("journal")
        if action == "fail":
            self.stats.write_failures += 1
            self._fail("journal")
            return
        payload = pack_fields(
            json.dumps({
                "document": key.document_id.value,
                "user": key.user_id.value,
                "reference": reference.reference_id.value,
            }, sort_keys=True).encode("utf-8"),
            bytes(content),
        )
        self.journal_log.append(
            K_JOURNAL, payload, corrupt=(action == "corrupt")
        )
        if self._sync("journal", self.journal_log):
            # The fsync lied.  Re-append and sync honestly — if the
            # first frame actually reached the platter this produces a
            # duplicated tail record, which replay (latest-per-key) and
            # the in-memory journal's tail coalescing both tolerate.
            self.journal_log.append(K_JOURNAL, payload)
            self._sync("journal-retry", self.journal_log)
        self.stats.journal_spills += 1
        self._ok()

    def spill_journal_flushed(self, key: EntryKey) -> None:
        """Flush hook: tombstone the key's spilled journal records.

        A lost tombstone merely over-replays on the next recover, and
        replay into the dirty buffer is idempotent — so no retry.
        """
        if not self.policy.spill_journal:
            return
        if not self._allow("journal"):
            return
        self._charge_io("journal", self.policy.write_cost_ms)
        if self._write_fault("flushed") is not None:
            self.stats.write_failures += 1
            return
        self.journal_log.append(K_FLUSHED, json.dumps({
            "document": key.document_id.value,
            "user": key.user_id.value,
        }, sort_keys=True).encode("utf-8"))
        self._sync("flushed", self.journal_log)

    def spill_memo_record(self, record: MemoRecord) -> None:
        """Memo hook: persist one verifier-free memo record.

        Records carrying live verifier objects are not serializable —
        and a reloaded record without its verifiers would dodge class
        (d) checks — so only verifier-free records (including negative
        ones) spill.
        """
        if not self.policy.spill_memo:
            return
        if record.verifiers or record.verifier_fingerprints:
            return
        if not self._allow("memo"):
            return
        self._charge_io("memo", self.policy.write_cost_ms)
        action = self._write_fault("memo")
        if action == "fail":
            self.stats.write_failures += 1
            self._fail("memo")
            return
        self.memo_log.append(K_MEMO, json.dumps({
            "source": record.source_signature.digest,
            "fingerprint": record.fingerprint.digest,
            "output": (
                None if record.output_signature is None
                else record.output_signature.digest
            ),
            "document": (
                None if record.document_id is None
                else record.document_id.value
            ),
            "size": record.size,
            "cacheability": record.cacheability.name,
            "cost": record.replacement_cost_ms,
            "chain": list(record.chain_signature),
            "pin": record.pin,
        }, sort_keys=True).encode("utf-8"), corrupt=(action == "corrupt"))
        self._sync("memo", self.memo_log)
        self.stats.memo_spills += 1
        self._ok()

    def materialize_bytes(self, signature: ContentSignature) -> bytes | None:
        """Memo-plane extension: pull recorded output bytes off disk.

        Leaves exactly one L1 store reference (``put_signed``) that the
        serving entry takes over, per the
        :meth:`~repro.cache.memo.TransformMemo.materialize` contract.
        """
        if signature not in self.disk:
            return None
        if not self._allow("materialize"):
            return None
        self._charge_io("materialize", self.policy.read_cost_ms)
        try:
            content = self.disk.get(signature)
        except StorageError:
            self.disk.drop(signature)
            self._fail("materialize")
            self.core.emit("storage", "corrupt-dropped")
            return None
        self.core.store.put_signed(content, signature)
        self._ok()
        self.core.emit("storage", "materialized", bytes=len(content))
        return content

    # -- maintenance -----------------------------------------------------------

    def compact(self) -> int:
        """Reclaim dead content bytes; returns bytes freed."""
        freed = self.disk.compact()
        self.stats.compacted_bytes += freed
        self.core.emit("storage", "compacted", bytes=freed)
        return freed

    # -- crash / recover -------------------------------------------------------

    def crash(self) -> None:
        """Process death: unsynced bytes vanish, volatile catalog too."""
        self.disk.crash()
        for log in (self.catalog_log, self.journal_log, self.memo_log):
            log.crash()
        self._catalog.clear()
        self.stats.crashes += 1

    def recover(self, *, restart: bool = True) -> int:
        """Rebuild the catalog, replay the journal, reload the memo.

        Every recovered catalog record is marked ``recovered`` — its
        first promotion re-runs verifiers unconditionally (the paper's
        "is this copy still valid?" answered after disconnection).
        Returns the number of live catalog records.
        """
        core = self.core
        # The content index rebuilt at open/crash time; refcounts are
        # re-derived below, one adopt per surviving catalog record.
        catalog_records, corrupt = self.catalog_log.scan_records()
        self.stats.corrupt_records_recovered += corrupt
        self._catalog.clear()
        for kind, payload, _ in catalog_records:
            if kind == K_DEMOTE:
                try:
                    record = L2Record.from_payload(payload)
                except (ValueError, KeyError):
                    self.stats.corrupt_records_recovered += 1
                    continue
                self._catalog[record.key] = record
            elif kind == K_DROP:
                try:
                    data = json.loads(payload.decode("utf-8"))
                    key = EntryKey(
                        DocumentId(data["document"]), UserId(data["user"])
                    )
                except (ValueError, KeyError):
                    continue
                self._catalog.pop(key, None)
        # Records whose bytes were lost to a crash or corruption are
        # dead; survivors re-take their content references.
        for key, record in list(self._catalog.items()):
            if record.signature not in self.disk:
                del self._catalog[key]
                self.stats.dropped_records += 1
                continue
            self.disk.adopt(record.signature)
        self.stats.corrupt_records_recovered += (
            self.disk.corrupt_dropped - self._disk_corrupt_seen
        )
        self._disk_corrupt_seen = self.disk.corrupt_dropped
        self.stats.recovered_entries = len(self._catalog)
        self._replay_journal()
        self._reload_memo()
        if restart:
            self.stats.restarts += 1
            core.emit(
                "storage", "recovered",
                entries=len(self._catalog),
            )
        return len(self._catalog)

    def _replay_journal(self) -> None:
        """Latest unflushed spilled write per key → the dirty buffer.

        Skips keys already dirty (the in-memory journal replays first),
        so double replay — and the duplicated tail an fsync-lost retry
        can leave — restores nothing twice.
        """
        core = self.core
        records, corrupt = self.journal_log.scan_records()
        self.stats.corrupt_records_recovered += corrupt
        latest: dict[EntryKey, tuple[str, bytes]] = {}
        for kind, payload, _ in records:
            if kind == K_JOURNAL:
                try:
                    meta_raw, content = unpack_fields(payload)
                    data = json.loads(meta_raw.decode("utf-8"))
                    key = EntryKey(
                        DocumentId(data["document"]), UserId(data["user"])
                    )
                except (StorageError, ValueError, KeyError):
                    self.stats.corrupt_records_recovered += 1
                    continue
                latest[key] = (data["reference"], content)
            elif kind == K_FLUSHED:
                try:
                    data = json.loads(payload.decode("utf-8"))
                    key = EntryKey(
                        DocumentId(data["document"]), UserId(data["user"])
                    )
                except (ValueError, KeyError):
                    continue
                latest.pop(key, None)
        for key, (reference_id, content) in latest.items():
            if key in core.dirty:
                continue
            try:
                reference = core.kernel.space(key.user_id).get(
                    ReferenceId(reference_id)
                )
            except PlacelessError:
                self.stats.journal_unresolved += 1
                continue
            core.dirty[key] = (reference, content)
            self.stats.journal_replayed += 1
            core.emit(
                "journal", "replayed", key=key, bytes=len(content)
            )

    def _reload_memo(self) -> None:
        """Verifier-free memo records back into the live memo table."""
        core = self.core
        records, corrupt = self.memo_log.scan_records()
        self.stats.corrupt_records_recovered += corrupt
        if core.memo is None:
            return
        for kind, payload, _ in records:
            if kind != K_MEMO:
                continue
            try:
                data = json.loads(payload.decode("utf-8"))
                record = MemoRecord(
                    source_signature=ContentSignature(data["source"]),
                    fingerprint=ChainFingerprint(data["fingerprint"]),
                    output_signature=(
                        None if data["output"] is None
                        else ContentSignature(data["output"])
                    ),
                    document_id=(
                        None if data["document"] is None
                        else DocumentId(data["document"])
                    ),
                    size=data["size"],
                    cacheability=Cacheability[data["cacheability"]],
                    replacement_cost_ms=data["cost"],
                    chain_signature=tuple(data["chain"]),
                    pin=data["pin"],
                )
            except (ValueError, KeyError):
                self.stats.corrupt_records_recovered += 1
                continue
            core.memo.record(record)
            self.stats.memo_reloaded += 1

    # -- inspection ------------------------------------------------------------

    def catalog_keys(self) -> list[EntryKey]:
        """Keys currently demoted to this tier (for tests/benches)."""
        return list(self._catalog)

    def __len__(self) -> int:
        return len(self._catalog)

    def __contains__(self, key: EntryKey) -> bool:
        return key in self._catalog
