"""The NFS-style façade translating file operations to Placeless I/O.

The façade exposes a deliberately file-like API — ``open`` returning a
handle, positional ``read``/``write`` against the handle, ``close`` —
because that is what the paper's prototype offered legacy applications.
Under the hood:

* opening for read runs the full Placeless read path (or a cache read
  when a cache is interposed) and serves the resulting bytes;
* opening for write opens the Placeless write path; bytes written stream
  into the custom-output-stream chain and reach the bit-provider when the
  handle is closed — matching the MS-Word save flow of Figure 2.

Each user gets their own mount, whose namespace binds paths to that
user's document references.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.cache.manager import DocumentCache
from repro.errors import BadFileHandleError, NFSError
from repro.ids import UserId
from repro.placeless.kernel import PlacelessKernel
from repro.placeless.reference import DocumentReference
from repro.streams.base import BytesInputStream, InputStream, OutputStream

__all__ = ["OpenMode", "FileHandle", "NFSMount", "NFSServer"]


class OpenMode(enum.Enum):
    """Supported open modes."""

    READ = "r"
    WRITE = "w"


@dataclass
class FileHandle:
    """One open file: the stream plus bookkeeping."""

    fh: int
    path: str
    mode: OpenMode
    reference: DocumentReference
    input_stream: InputStream | None = None
    output_stream: OutputStream | None = None
    bytes_read: int = 0
    bytes_written: int = 0
    closed: bool = False


class NFSMount:
    """One user's view of the Placeless namespace through the NFS layer."""

    def __init__(
        self,
        server: "NFSServer",
        user: UserId,
    ) -> None:
        self.server = server
        self.user = user
        self._bindings: dict[str, DocumentReference] = {}
        self._handles: dict[int, FileHandle] = {}
        self._fh_counter = itertools.count(3)  # 0-2 "reserved", unix-style

    # -- namespace ------------------------------------------------------------

    def bind(self, path: str, reference: DocumentReference) -> None:
        """Expose *reference* at *path* in this mount."""
        if reference.owner != self.user:
            raise NFSError(
                f"cannot bind {reference.reference_id}: owned by "
                f"{reference.owner}, mount belongs to {self.user}"
            )
        self._bindings[path] = reference

    def unbind(self, path: str) -> None:
        """Remove a path binding (open handles stay usable)."""
        if path not in self._bindings:
            raise NFSError(f"not bound: {path}")
        del self._bindings[path]

    def listdir(self) -> list[str]:
        """All bound paths, sorted."""
        return sorted(self._bindings)

    def resolve(self, path: str) -> DocumentReference:
        """The reference bound at *path*."""
        try:
            return self._bindings[path]
        except KeyError:
            raise NFSError(f"no such file: {path}") from None

    def stat(self, path: str) -> dict:
        """File-attribute view of a bound document.

        NFS GETATTR equivalent: reports the raw source size (simulation-
        side peek — the transformed size is only known after a read),
        the document/reference ids, and the attached property names.
        """
        reference = self.resolve(path)
        return {
            "path": path,
            "document_id": reference.base.document_id,
            "reference_id": reference.reference_id,
            "owner": reference.owner,
            "source_size": len(reference.base.provider.peek()),
            "properties": [p.name for p in reference.properties],
            "universal_properties": [
                p.name for p in reference.base.properties
            ],
        }

    # -- file operations -----------------------------------------------------------

    def open(self, path: str, mode: str = "r") -> int:
        """Open *path*; returns a file handle number.

        ``"r"`` runs the read path now (through the cache when one is
        interposed) and lets ``read`` consume the result; ``"w"`` opens
        the write path, whose property chain sees the content as it is
        written and which commits to the repository on ``close``.
        """
        reference = self.resolve(path)
        try:
            open_mode = OpenMode(mode)
        except ValueError:
            raise NFSError(f"unsupported mode: {mode!r}") from None
        fh = next(self._fh_counter)
        handle = FileHandle(fh=fh, path=path, mode=open_mode, reference=reference)
        if open_mode is OpenMode.READ:
            handle.input_stream = self._open_read(reference)
        else:
            handle.output_stream = self._open_write(reference)
        self._handles[fh] = handle
        return fh

    def _open_read(self, reference: DocumentReference) -> InputStream:
        cache = self.server.cache
        if cache is not None:
            outcome = cache.read(reference)
            return BytesInputStream(outcome.content)
        return reference.open_input().stream

    def _open_write(self, reference: DocumentReference) -> OutputStream:
        cache = self.server.cache
        if cache is not None:
            # Writes through a cache are accumulated and pushed via the
            # cache's write mode at close; model with a buffer stream.
            return _CacheWriteStream(cache, reference)
        return reference.open_output().stream

    def read(self, fh: int, size: int = -1) -> bytes:
        """Read up to *size* bytes from an open read handle."""
        handle = self._handle(fh)
        if handle.input_stream is None:
            raise NFSError(f"fh {fh} not open for reading")
        data = handle.input_stream.read(size)
        handle.bytes_read += len(data)
        return data

    def write(self, fh: int, data: bytes) -> int:
        """Write *data* to an open write handle."""
        handle = self._handle(fh)
        if handle.output_stream is None:
            raise NFSError(f"fh {fh} not open for writing")
        written = handle.output_stream.write(data)
        handle.bytes_written += written
        return written

    def close(self, fh: int) -> None:
        """Close the handle, committing writes to the repository."""
        handle = self._handle(fh)
        if handle.input_stream is not None:
            handle.input_stream.close()
        if handle.output_stream is not None:
            handle.output_stream.close()
        handle.closed = True
        del self._handles[fh]

    def read_file(self, path: str) -> bytes:
        """Convenience: open/read-all/close."""
        fh = self.open(path, "r")
        try:
            return self.read(fh, -1)
        finally:
            self.close(fh)

    def write_file(self, path: str, data: bytes) -> None:
        """Convenience: open/write/close."""
        fh = self.open(path, "w")
        try:
            self.write(fh, data)
        finally:
            self.close(fh)

    def open_handles(self) -> list[FileHandle]:
        """Currently open handles."""
        return list(self._handles.values())

    def _handle(self, fh: int) -> FileHandle:
        try:
            return self._handles[fh]
        except KeyError:
            raise BadFileHandleError(fh) from None


class _CacheWriteStream(OutputStream):
    """Accumulates written bytes and pushes them through the cache at close."""

    def __init__(self, cache: DocumentCache, reference: DocumentReference) -> None:
        super().__init__()
        self._cache = cache
        self._reference = reference
        self._pieces: list[bytes] = []

    def _write_chunk(self, data: bytes) -> None:
        self._pieces.append(data)

    def _on_close(self) -> None:
        self._cache.write(self._reference, b"".join(self._pieces))


class NFSServer:
    """The NFS server layer: one mount per user, optional shared cache.

    The *cache* models §4's "application-level cache (running on the same
    machine as the application)" when the topology's placement says so,
    or the server co-located cache otherwise.
    """

    def __init__(
        self,
        kernel: PlacelessKernel,
        cache: DocumentCache | None = None,
    ) -> None:
        self.kernel = kernel
        self.cache = cache
        self._mounts: dict[UserId, NFSMount] = {}

    def mount(self, user: UserId) -> NFSMount:
        """Get (or create) *user*'s mount."""
        self.kernel.space(user)  # validate the user exists
        existing = self._mounts.get(user)
        if existing is None:
            existing = NFSMount(self, user)
            self._mounts[user] = existing
        return existing

    def mounts(self) -> list[NFSMount]:
        """All live mounts."""
        return list(self._mounts.values())
