"""NFS translation layer for off-the-shelf applications.

"Read and write operations from off-the-shelf applications are translated
into Placeless I/O operations by a NFS server layer.  Newly developed
applications invoke the Placeless API directly." (§2, footnote 2)

:class:`NFSServer` exports per-user mounts; a :class:`NFSMount` offers the
file-ish surface (open/read/write/close/listdir) an application like
MS-Word would use, translating each operation into Placeless read/write
paths — optionally through a :class:`~repro.cache.manager.DocumentCache`
interposed "between the application and the Placeless system" (§3).
"""

from repro.nfs.server import FileHandle, NFSMount, NFSServer

__all__ = ["NFSServer", "NFSMount", "FileHandle"]
