"""Deterministic virtual clock with timer scheduling.

Placeless active properties can register for *timer* events (the paper's
replication property runs "once at the end of the day").  The virtual
clock provides:

* a monotone notion of *now* in milliseconds;
* ``advance``/``charge`` to account simulated latency;
* an ordered schedule of callbacks fired as time passes, which the
  :class:`~repro.events.timers.TimerService` uses to drive timer events.

Everything is single-threaded and deterministic: callbacks scheduled for
the same instant fire in FIFO order of registration.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ClockError

__all__ = ["VirtualClock", "ScheduledCall"]


@dataclass(order=True)
class ScheduledCall:
    """A callback registered to fire at a virtual instant.

    Ordering is (due time, registration serial) so simultaneous callbacks
    fire in FIFO order.  ``cancelled`` calls stay in the heap but are
    skipped when they surface.
    """

    due_ms: float
    serial: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the callback from firing when its due time arrives."""
        self.cancelled = True


class VirtualClock:
    """A deterministic simulated clock measured in milliseconds.

    The clock never moves backwards.  ``advance`` moves time forward and
    fires any callbacks whose due time is reached, in order, *before*
    returning; a callback may schedule further callbacks, including ones
    due within the window being advanced through.
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now_ms = float(start_ms)
        self._schedule: list[ScheduledCall] = []
        self._serials = itertools.count()
        self._total_charged_ms = 0.0

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_ms

    @property
    def total_charged_ms(self) -> float:
        """Cumulative latency charged via :meth:`charge` (not ``advance``)."""
        return self._total_charged_ms

    def charge(self, cost_ms: float) -> None:
        """Account *cost_ms* of simulated latency.

        Equivalent to :meth:`advance` but additionally tracked in
        :attr:`total_charged_ms` so experiments can separate "time spent
        doing work" from idle time skipped between requests.
        """
        if cost_ms < 0:
            raise ClockError(f"cannot charge negative latency: {cost_ms}")
        self._total_charged_ms += cost_ms
        self.advance(cost_ms)

    def advance(self, delta_ms: float) -> None:
        """Move virtual time forward by *delta_ms*, firing due callbacks."""
        if delta_ms < 0:
            raise ClockError(f"cannot advance clock backwards: {delta_ms}")
        target = self._now_ms + delta_ms
        self._run_until(target)
        # A callback fired during the window may itself have advanced the
        # clock past *target* (e.g. a delayed delivery charging hops);
        # time never moves backwards.
        self._now_ms = max(self._now_ms, target)

    def advance_to(self, instant_ms: float) -> None:
        """Move virtual time forward to the absolute instant *instant_ms*."""
        if instant_ms < self._now_ms:
            raise ClockError(
                f"cannot advance to {instant_ms}, already at {self._now_ms}"
            )
        self.advance(instant_ms - self._now_ms)

    def call_at(self, due_ms: float, callback: Callable[[], None]) -> ScheduledCall:
        """Schedule *callback* to run when virtual time reaches *due_ms*."""
        if due_ms < self._now_ms:
            raise ClockError(
                f"cannot schedule at {due_ms}, already at {self._now_ms}"
            )
        call = ScheduledCall(due_ms, next(self._serials), callback)
        heapq.heappush(self._schedule, call)
        return call

    def call_after(
        self, delay_ms: float, callback: Callable[[], None]
    ) -> ScheduledCall:
        """Schedule *callback* to run *delay_ms* from now."""
        if delay_ms < 0:
            raise ClockError(f"cannot schedule in the past: {delay_ms}")
        return self.call_at(self._now_ms + delay_ms, callback)

    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled scheduled calls."""
        return sum(1 for call in self._schedule if not call.cancelled)

    def _run_until(self, target_ms: float) -> None:
        """Fire every scheduled call due at or before *target_ms*."""
        while self._schedule and self._schedule[0].due_ms <= target_ms:
            call = heapq.heappop(self._schedule)
            if call.cancelled:
                continue
            # Time visibly jumps to the callback's due instant so callbacks
            # observe a consistent "now" and may schedule relative to it.
            self._now_ms = max(self._now_ms, call.due_ms)
            call.callback()
