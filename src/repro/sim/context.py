"""The shared simulation context threaded through the whole system.

Bundles the virtual clock, the latency model, the topology and the id
generator so constructors take one argument instead of four, and so a
test or benchmark can build an entire Placeless deployment around a
single deterministic context.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ids import IdGenerator
from repro.sim.clock import VirtualClock
from repro.sim.latency import LatencyModel
from repro.sim.topology import Topology

__all__ = ["SimContext"]


@dataclass
class SimContext:
    """Deterministic simulation environment for one experiment run."""

    clock: VirtualClock = field(default_factory=VirtualClock)
    latency: LatencyModel = field(default_factory=LatencyModel)
    topology: Topology = field(default_factory=Topology)
    ids: IdGenerator = field(default_factory=IdGenerator)
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    @property
    def now_ms(self) -> float:
        """Current virtual time."""
        return self.clock.now_ms

    def charge_hop(self, hop: str, size_bytes: int = 0) -> float:
        """Charge one hop crossing to the clock; returns the cost."""
        cost = self.latency.hop_cost_ms(hop, size_bytes)
        self.clock.charge(cost)
        return cost

    def charge_repository(self, repository: str, size_bytes: int) -> float:
        """Charge one repository fetch to the clock; returns the cost."""
        cost = self.latency.repository_cost_ms(repository, size_bytes)
        self.clock.charge(cost)
        return cost

    def charge(self, cost_ms: float) -> float:
        """Charge an arbitrary simulated cost (property execution etc.)."""
        self.clock.charge(cost_ms)
        return cost_ms
