"""The shared simulation context threaded through the whole system.

Bundles the virtual clock, the latency model, the topology and the id
generator so constructors take one argument instead of four, and so a
test or benchmark can build an entire Placeless deployment around a
single deterministic context.

The context also carries the run's optional
:class:`~repro.faults.plan.FaultPlan`.  Constructors that do not pass
one pick up the process-wide default scenario (installed by the CLI's
``--faults`` flag), so fault injection can infiltrate experiments that
build their own contexts without any plumbing changes.

The clock is also the sole time source for the cache's instrumentation:
pipeline stages stamp their :class:`~repro.cache.instrumentation.StageEvent`
records from ``ctx.now_ms``, so stage-latency breakdowns are virtual
milliseconds and never perturb simulated time.
"""

from __future__ import annotations

import random
import typing
from dataclasses import dataclass, field

from repro.errors import RepositoryOfflineError
from repro.ids import IdGenerator
from repro.sim.clock import VirtualClock
from repro.sim.latency import LatencyModel
from repro.sim.topology import Topology

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.containment import ContainmentGuard
    from repro.faults.plan import FaultPlan

__all__ = ["SimContext"]


@dataclass
class SimContext:
    """Deterministic simulation environment for one experiment run."""

    clock: VirtualClock = field(default_factory=VirtualClock)
    latency: LatencyModel = field(default_factory=LatencyModel)
    topology: Topology = field(default_factory=Topology)
    ids: IdGenerator = field(default_factory=IdGenerator)
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    #: Fault-injection schedule for this run; ``None`` means a healthy
    #: world (unless a process-wide default scenario is installed).
    faults: "FaultPlan | None" = None
    #: Containment guard wrapped around property-code seams; attached by
    #: a cache constructed with a containment policy.  ``None`` (the
    #: default) keeps the stream wrappers on their historical
    #: unguarded path.
    containment: "ContainmentGuard | None" = None

    def __post_init__(self) -> None:
        if self.faults is None:
            from repro.faults.plan import default_fault_plan

            self.faults = default_fault_plan(self.clock)

    @property
    def now_ms(self) -> float:
        """Current virtual time."""
        return self.clock.now_ms

    def charge_hop(self, hop: str, size_bytes: int = 0) -> float:
        """Charge one hop crossing to the clock; returns the cost.

        Raises :class:`~repro.errors.RepositoryOfflineError` when the
        fault plan has the link inside a scheduled outage window.
        """
        if self.faults is not None and self.faults.link_down(hop):
            raise RepositoryOfflineError(
                f"network link {hop!r} is down at t={self.clock.now_ms:.1f}ms"
            )
        cost = self.latency.hop_cost_ms(hop, size_bytes)
        self.clock.charge(cost)
        return cost

    def charge_repository(self, repository: str, size_bytes: int) -> float:
        """Charge one repository fetch to the clock; returns the cost."""
        cost = self.latency.repository_cost_ms(repository, size_bytes)
        self.clock.charge(cost)
        return cost

    def charge(self, cost_ms: float) -> float:
        """Charge an arbitrary simulated cost (property execution etc.)."""
        self.clock.charge(cost_ms)
        return cost_ms
