"""Read-path schedulers: sequential virtual-clock mode and asyncio mode.

Everything in this repro ran sequentially on the virtual clock: one
read executed start-to-finish before the next began.  A real deployment
has thousands of in-flight reads, and concurrent misses on one hot
document would stampede the provider and re-run the active-property
chain once per requester.  This module introduces the *scheduler*
abstraction that lets the staged read/write pipeline run under either
regime without duplicating any stage code:

* Stages stay synchronous.  The pipeline expresses one access as a
  Python *generator* that yields :class:`Suspension` markers at the
  seams where a concurrent implementation may interleave work — before
  the verifier gate and before the fetch/chain execution — and a
  scheduler *drives* that generator to its terminal value.
* :class:`SequentialScheduler` (the default) drives the generator
  inline, resolving every suspension immediately.  The operation order,
  virtual-clock charges and fault-plan consultations are exactly those
  of the pre-scheduler pipeline, which is what keeps the golden digests
  bit-for-bit.
* :class:`AsyncScheduler` drives each generator as an asyncio coroutine:
  a yielded suspension awaits — a bare cooperative yield for seam
  markers, the owning :class:`Flight` for single-flight waits — so many
  reads interleave deterministically (asyncio's ready queue is FIFO and
  nothing here uses wall-clock timers or randomness; the same batch
  replays identically).

Single-flight coalescing lives here too, because a *flight* is a
scheduling construct: :class:`FlightTable` maps in-progress miss keys —
the ``(document, user)`` entry key and, via the transform-memo plane,
the ``(source signature, chain fingerprint)`` pair — to the
:class:`Flight` its leader opened.  Followers suspend on the flight and,
once the leader lands, re-enter the pipeline where the leader's fill
(or memo record) answers them without a second provider fetch or chain
execution.  A leader that fails *fails over*: the flight resolves with
the error, the first follower to wake finds the table empty and is
promoted to lead its own fetch.
"""

from __future__ import annotations

import asyncio
from typing import Any, Generator, Iterable, Protocol, runtime_checkable

from repro.errors import SchedulerError

__all__ = [
    "Suspension",
    "VERIFIER_SEAM",
    "FETCH_SEAM",
    "Flight",
    "FlightTable",
    "Scheduler",
    "SequentialScheduler",
    "InlineScheduler",
    "AsyncScheduler",
]


class Suspension:
    """One point where the driving scheduler may interleave other work.

    ``seam`` names the pipeline seam ("verifier", "fetch", "flight");
    ``flight`` is set when the suspension waits on a single-flight
    leader rather than merely offering the scheduler a chance to run
    someone else.  Seam-only suspensions are interned module constants,
    so the hot sequential path allocates nothing per read.
    """

    __slots__ = ("seam", "flight")

    def __init__(self, seam: str, flight: "Flight | None" = None) -> None:
        self.seam = seam
        self.flight = flight

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        waiting = f" waiting on {self.flight.describe()}" if self.flight else ""
        return f"<Suspension {self.seam}{waiting}>"


#: Interned seam markers yielded before the corresponding stages; the
#: sequential driver resolves them without allocating or charging.
VERIFIER_SEAM = Suspension("verifier")
FETCH_SEAM = Suspension("fetch")


class Flight:
    """One in-progress miss whose result concurrent requesters share.

    The leader registers the flight under its coalescing keys, runs the
    normal fetch/chain path, and resolves the flight when its read
    terminates.  Followers ``wait()`` and receive the resolution
    payload: ``("landed", disposition)`` on success, ``("failed",
    error)`` when the leader's read raised — the cue for leader-failure
    promotion.  The event is lazy so flights can be constructed outside
    a running loop (the sequential scheduler never waits on one).
    """

    __slots__ = ("keys", "waiters", "_event", "_payload")

    def __init__(self, keys: tuple[Any, ...]) -> None:
        self.keys = keys
        #: Followers currently suspended on this flight (the budget
        #: bail-out compares this against the policy's follower cap).
        self.waiters = 0
        self._event: asyncio.Event | None = None
        self._payload: tuple[str, Any] | None = None

    @property
    def resolved(self) -> bool:
        """True once the leader landed or failed."""
        return self._payload is not None

    def describe(self) -> str:
        """Short human-readable key list for traces."""
        return "+".join(str(key) for key in self.keys)

    async def wait(self) -> tuple[str, Any]:
        """Suspend until the leader resolves; returns the payload."""
        if self._payload is not None:
            return self._payload
        if self._event is None:
            self._event = asyncio.Event()
        self.waiters += 1
        try:
            await self._event.wait()
        finally:
            self.waiters -= 1
        assert self._payload is not None
        return self._payload

    def resolve(self, payload: tuple[str, Any]) -> None:
        """Leader landing/failure: release every waiting follower."""
        self._payload = payload
        if self._event is not None:
            self._event.set()


class FlightTable:
    """In-progress flights keyed by their coalescing keys.

    Purely cooperative bookkeeping: entries are registered and removed
    between suspension points, so no locking discipline beyond "never
    suspend inside a mutation" is needed (see DESIGN.md §3.3).
    """

    def __init__(self) -> None:
        self._flights: dict[Any, Flight] = {}

    def lookup(self, key: Any) -> Flight | None:
        """The in-progress flight registered under *key*, if any."""
        return self._flights.get(key)

    def open(self, keys: Iterable[Any]) -> Flight:
        """Register a new flight under every key in *keys*."""
        flight = Flight(tuple(keys))
        for key in flight.keys:
            self._flights[key] = flight
        return flight

    def close(self, flight: Flight, payload: tuple[str, Any]) -> None:
        """Deregister *flight* and wake its followers with *payload*.

        Keys are removed *before* resolving, so a woken follower that
        misses again finds the table empty and promotes itself to
        leader instead of re-following a landed flight.
        """
        for key in flight.keys:
            if self._flights.get(key) is flight:
                del self._flights[key]
        flight.resolve(payload)

    def in_flight(self) -> int:
        """Distinct flights currently registered."""
        return len(set(id(f) for f in self._flights.values()))

    def __len__(self) -> int:
        return len(self._flights)


@runtime_checkable
class Scheduler(Protocol):
    """Drives pipeline generators to their terminal values.

    ``supports_concurrency`` gates the single-flight machinery: the
    pipeline only opens or joins flights when the driving scheduler can
    actually suspend a read, so the sequential mode never pays for (or
    observes) coalescing state.
    """

    supports_concurrency: bool

    def drive(self, generator: Generator) -> Any:
        """Run one pipeline generator to completion, resolving suspensions."""
        ...  # pragma: no cover - protocol


class SequentialScheduler:
    """The historical regime: one access at a time, inline.

    Every suspension resolves to ``None`` immediately — no interleaving,
    no flights — so a pipeline driven by this scheduler performs exactly
    the operation sequence the pre-scheduler pipeline did.  This is the
    default on every cache and the mode all golden digests pin.
    """

    supports_concurrency = False

    def drive(self, generator: Generator) -> Any:
        payload = None
        while True:
            try:
                step = generator.send(payload)
            except StopIteration as stop:
                return stop.value
            if step is not None and step.flight is not None:
                # Cannot happen while supports_concurrency is False (the
                # pipeline never opens flights under this scheduler) —
                # guard against a stage wiring error all the same.
                raise SchedulerError(
                    "sequential scheduler cannot wait on a flight"
                )
            payload = None


class InlineScheduler(SequentialScheduler):
    """Sequential driving of a *concurrency-capable* pipeline.

    Identical to :class:`SequentialScheduler` except that it advertises
    ``supports_concurrency``, so the pipeline yields its seam markers
    (and may lead — though never follow — a single flight).  The
    cluster's hedged single reads need exactly this: the hedge
    combinator watches for the fetch seam, but the read itself is
    driven inline with no event loop.  A follower wait cannot arise —
    an inline read runs alone, so no other leader's flight can be in
    the table when it looks — and :meth:`SequentialScheduler.drive`
    guards against it regardless.
    """

    supports_concurrency = True


class AsyncScheduler:
    """asyncio-backed concurrent mode.

    ``run`` executes a batch of pipeline generators on a private event
    loop: each generator becomes a coroutine that awaits at every
    yielded suspension — ``asyncio.sleep(0)`` for seam markers (a
    cooperative yield that lets other reads interleave), or the named
    :class:`Flight` for single-flight followers.  Scheduling is
    deterministic: tasks start in submission order, the ready queue is
    FIFO, and nothing awaits wall-clock time, so identical batches
    replay identically (the scheduler property tests pin this across
    chaos seeds).
    """

    supports_concurrency = True

    def run(
        self,
        generators: Iterable[Generator],
        *,
        return_exceptions: bool = False,
    ) -> list[Any]:
        """Drive *generators* concurrently; results in submission order.

        With ``return_exceptions`` the result list carries raised
        exceptions in-place (the stampede bench and the promotion tests
        need the per-read failures); otherwise the first failure —
        in submission order — is re-raised after the batch completes,
        so a failing batch still runs every read to termination.
        """
        if self._loop_running():
            raise SchedulerError(
                "AsyncScheduler.run cannot nest inside a running event loop"
            )
        results = asyncio.run(self._gather(list(generators)))
        if not return_exceptions:
            for result in results:
                if isinstance(result, BaseException):
                    raise result
        return results

    def drive(self, generator: Generator) -> Any:
        """Single-generator convenience used by nested sequential calls."""
        return SequentialScheduler().drive(generator)

    @staticmethod
    def _loop_running() -> bool:
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            return False
        return True

    async def _gather(self, generators: list[Generator]) -> list[Any]:
        return await asyncio.gather(
            *(self._drive(generator) for generator in generators),
            return_exceptions=True,
        )

    async def _drive(self, generator: Generator) -> Any:
        payload: Any = None
        while True:
            try:
                step = generator.send(payload)
            except StopIteration as stop:
                return stop.value
            if step is None or step.flight is None:
                await asyncio.sleep(0)
                payload = None
            else:
                payload = await step.flight.wait()
