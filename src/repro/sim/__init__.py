"""Simulation substrate: virtual time, latency accounting and topology.

The paper's evaluation (Table 1) reports wall-clock access times measured
on PARC's 1999 testbed.  We cannot reproduce that hardware, so every
latency-bearing action in this library (network hops between the
application, Placeless servers and repositories; repository fetches;
active-property execution) charges a deterministic cost to a
:class:`~repro.sim.clock.VirtualClock` through a
:class:`~repro.sim.latency.LatencyModel`.  Benchmarks then report virtual
milliseconds whose *relative* magnitudes follow the paper, alongside real
wall-clock numbers from pytest-benchmark.
"""

from repro.sim.clock import ScheduledCall, VirtualClock
from repro.sim.context import SimContext
from repro.sim.scheduler import (
    AsyncScheduler,
    Flight,
    FlightTable,
    Scheduler,
    SequentialScheduler,
    Suspension,
)
from repro.sim.latency import (
    HopCost,
    LatencyModel,
    LatencySample,
    RepositoryCost,
)
from repro.sim.topology import CachePlacement, Node, NodeKind, Topology

__all__ = [
    "SimContext",
    "VirtualClock",
    "ScheduledCall",
    "Scheduler",
    "SequentialScheduler",
    "AsyncScheduler",
    "Suspension",
    "Flight",
    "FlightTable",
    "LatencyModel",
    "LatencySample",
    "HopCost",
    "RepositoryCost",
    "Topology",
    "Node",
    "NodeKind",
    "CachePlacement",
]
