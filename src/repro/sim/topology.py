"""Placement of applications, caches, Placeless servers and repositories.

Section 4 of the paper reports experiments with caches "co-located with
the Placeless server and on the machine where applications are run".  The
topology module captures that choice: given a cache placement it yields
the ordered list of hops a request crosses on the hit path and on the
miss/no-cache path, which the latency model turns into milliseconds.
"""

from __future__ import annotations

import enum
import typing
from dataclasses import dataclass, field

from repro.errors import WorkloadError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.latency import HopCost, LatencyModel

__all__ = [
    "NodeKind",
    "Node",
    "CachePlacement",
    "Topology",
    "ClusterTopology",
]


class NodeKind(enum.Enum):
    """Role of a machine in the simulated testbed."""

    APPLICATION = "application"
    REFERENCE_SERVER = "reference-server"
    BASE_SERVER = "base-server"
    REPOSITORY = "repository"


class CachePlacement(enum.Enum):
    """Where the content cache sits, per §4 of the paper."""

    #: Same machine (and address space) as the application; hits cost only
    #: the ``local`` hop.  This is the configuration Table 1 measures.
    APPLICATION_LEVEL = "application-level"
    #: Co-located with the Placeless reference server; hits still cross
    #: the application→reference hop.
    SERVER_COLOCATED = "server-colocated"


@dataclass
class Node:
    """One machine in the testbed."""

    name: str
    kind: NodeKind


@dataclass
class Topology:
    """The testbed shape: which hops each access path crosses.

    The default mirrors the paper's prototype: the application machine, a
    Placeless reference server (per-user document space), a Placeless base
    server, and content repositories behind the base server.
    """

    placement: CachePlacement = CachePlacement.APPLICATION_LEVEL
    nodes: list[Node] = field(default_factory=lambda: [
        Node("workstation", NodeKind.APPLICATION),
        Node("placeless-ref", NodeKind.REFERENCE_SERVER),
        Node("placeless-base", NodeKind.BASE_SERVER),
    ])

    def hit_path(self) -> list[str]:
        """Hops crossed when the cache hits (cache → application)."""
        if self.placement is CachePlacement.APPLICATION_LEVEL:
            return ["local"]
        return ["app-to-reference"]

    def fetch_path(self) -> list[str]:
        """Hops crossed on a full fetch, excluding repository service time.

        The request crosses application→reference and reference→base once
        in each direction; the repository hop is crossed by the base
        server.  We charge each hop once with the response size, matching
        how the dominant (response-carrying) direction scales.
        """
        return [
            "app-to-reference",
            "reference-to-base",
            "base-to-repository",
        ]

    def notifier_path(self) -> list[str]:
        """Hops a notifier invalidation crosses to reach the cache."""
        if self.placement is CachePlacement.APPLICATION_LEVEL:
            return ["reference-to-base", "app-to-reference"]
        return ["reference-to-base"]


@dataclass
class ClusterTopology:
    """Per-shard peer links of a multi-cache cluster.

    The paper's notifier model (AFS-style callbacks) was designed for
    *many* caches; the cluster layer runs N shards and moves memo
    records and content bytes between them.  This class names the
    shards, resolves the hop a ``src → dst`` transfer crosses, and —
    because :class:`~repro.sim.latency.LatencyModel` refuses unknown
    hop names — registers every per-pair override into the model so
    cross-shard traffic is charged on the virtual clock like any other
    network crossing.

    Links are symmetric by default: an override registered for
    ``(a, b)`` also answers ``(b, a)``.  Pairs without an override use
    the shared ``shard-to-shard`` hop from
    :data:`~repro.sim.latency.DEFAULT_HOPS`.
    """

    shards: list[str] = field(default_factory=list)
    #: Per-pair link cost overrides, keyed ``(src, dst)``.
    overrides: dict[tuple[str, str], "HopCost"] = field(
        default_factory=dict
    )
    #: Hop name used for pairs without an override.
    default_link: str = "shard-to-shard"

    def add_shard(self, name: str) -> None:
        """Register one shard; rejects duplicates."""
        if name in self.shards:
            raise WorkloadError(f"duplicate shard name: {name!r}")
        self.shards.append(name)

    def remove_shard(self, name: str) -> None:
        """Forget one shard (its overrides stay registered; harmless)."""
        try:
            self.shards.remove(name)
        except ValueError:
            raise WorkloadError(f"unknown shard: {name!r}") from None

    @staticmethod
    def link_name(src: str, dst: str) -> str:
        """The latency-model hop name of one override direction."""
        return f"shard-link:{src}->{dst}"

    def set_link(self, src: str, dst: str, cost: "HopCost") -> None:
        """Override the ``src ↔ dst`` link cost (symmetric)."""
        for shard in (src, dst):
            if shard not in self.shards:
                raise WorkloadError(f"unknown shard: {shard!r}")
        self.overrides[(src, dst)] = cost

    def link_path(self, src: str, dst: str) -> list[str]:
        """Hops one ``src → dst`` transfer crosses ([] when local)."""
        if src == dst:
            return []
        for pair in ((src, dst), (dst, src)):
            if pair in self.overrides:
                return [self.link_name(*pair)]
        return [self.default_link]

    def install(self, latency: "LatencyModel") -> None:
        """Register every override hop into *latency*'s hop table.

        Idempotent; must run before the first cross-shard charge, or
        the model raises ``WorkloadError`` for the unknown hop name.
        """
        for (src, dst), cost in self.overrides.items():
            latency.hops[self.link_name(src, dst)] = cost
