"""Placement of applications, caches, Placeless servers and repositories.

Section 4 of the paper reports experiments with caches "co-located with
the Placeless server and on the machine where applications are run".  The
topology module captures that choice: given a cache placement it yields
the ordered list of hops a request crosses on the hit path and on the
miss/no-cache path, which the latency model turns into milliseconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["NodeKind", "Node", "CachePlacement", "Topology"]


class NodeKind(enum.Enum):
    """Role of a machine in the simulated testbed."""

    APPLICATION = "application"
    REFERENCE_SERVER = "reference-server"
    BASE_SERVER = "base-server"
    REPOSITORY = "repository"


class CachePlacement(enum.Enum):
    """Where the content cache sits, per §4 of the paper."""

    #: Same machine (and address space) as the application; hits cost only
    #: the ``local`` hop.  This is the configuration Table 1 measures.
    APPLICATION_LEVEL = "application-level"
    #: Co-located with the Placeless reference server; hits still cross
    #: the application→reference hop.
    SERVER_COLOCATED = "server-colocated"


@dataclass
class Node:
    """One machine in the testbed."""

    name: str
    kind: NodeKind


@dataclass
class Topology:
    """The testbed shape: which hops each access path crosses.

    The default mirrors the paper's prototype: the application machine, a
    Placeless reference server (per-user document space), a Placeless base
    server, and content repositories behind the base server.
    """

    placement: CachePlacement = CachePlacement.APPLICATION_LEVEL
    nodes: list[Node] = field(default_factory=lambda: [
        Node("workstation", NodeKind.APPLICATION),
        Node("placeless-ref", NodeKind.REFERENCE_SERVER),
        Node("placeless-base", NodeKind.BASE_SERVER),
    ])

    def hit_path(self) -> list[str]:
        """Hops crossed when the cache hits (cache → application)."""
        if self.placement is CachePlacement.APPLICATION_LEVEL:
            return ["local"]
        return ["app-to-reference"]

    def fetch_path(self) -> list[str]:
        """Hops crossed on a full fetch, excluding repository service time.

        The request crosses application→reference and reference→base once
        in each direction; the repository hop is crossed by the base
        server.  We charge each hop once with the response size, matching
        how the dominant (response-carrying) direction scales.
        """
        return [
            "app-to-reference",
            "reference-to-base",
            "base-to-repository",
        ]

    def notifier_path(self) -> list[str]:
        """Hops a notifier invalidation crosses to reach the cache."""
        if self.placement is CachePlacement.APPLICATION_LEVEL:
            return ["reference-to-base", "app-to-reference"]
        return ["reference-to-base"]
