"""Deterministic latency model for the simulated testbed.

Table 1 of the paper measures document access times through three paths:

* **no cache** — application → Placeless servers → repository and back;
* **cache miss** — the same, plus the cost of creating the minimum
  notifier set and returning one TTL verifier;
* **cache hit** — application → application-level cache only.

The latencies the paper saw are a function of (a) network hops between the
application, the Placeless reference/base servers and the repository and
(b) repository service time, both roughly affine in the transferred size.
We model exactly that: each hop and each repository has a fixed setup cost
plus a per-byte cost, with optional deterministic jitter drawn from a
seeded RNG so repeated runs are identical.

The default constants were calibrated so that the three Table-1 documents
land in the same relative bands the paper reports (tens of ms uncached for
web documents, ~1 ms for a local cache hit, small miss overhead).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import RepositoryOfflineError, WorkloadError

__all__ = ["HopCost", "RepositoryCost", "LatencySample", "LatencyModel"]


@dataclass(frozen=True)
class HopCost:
    """Cost of crossing one network hop.

    ``fixed_ms`` models propagation + protocol overhead; ``per_kb_ms``
    models serialization at the hop's bandwidth.
    """

    fixed_ms: float
    per_kb_ms: float = 0.0

    def cost_ms(self, size_bytes: int) -> float:
        """Latency for moving *size_bytes* across this hop."""
        return self.fixed_ms + self.per_kb_ms * (size_bytes / 1024.0)


@dataclass(frozen=True)
class RepositoryCost:
    """Service time of a content repository.

    ``connect_ms`` is paid once per request (TCP + request parsing for a
    web server, RPC setup for NFS); ``per_kb_ms`` is the read/transmit
    rate.  ``offline`` lets failure-injection tests simulate unreachable
    repositories.
    """

    connect_ms: float
    per_kb_ms: float = 0.0
    offline: bool = False

    def cost_ms(self, size_bytes: int) -> float:
        """Service latency for producing *size_bytes* of content."""
        return self.connect_ms + self.per_kb_ms * (size_bytes / 1024.0)


@dataclass
class LatencySample:
    """Itemised latency of one operation, for reporting and assertions."""

    label: str
    parts: list[tuple[str, float]] = field(default_factory=list)

    def add(self, name: str, cost_ms: float) -> None:
        """Append one itemised component."""
        self.parts.append((name, cost_ms))

    @property
    def total_ms(self) -> float:
        """Sum of all components."""
        return sum(cost for _, cost in self.parts)


#: Default hop table for the paper's testbed shape.  The application talks
#: to the Placeless *reference* server, which talks to the *base* server,
#: which talks to the repository.  An application-level cache sits in the
#: same process as the application (``local`` hop).
DEFAULT_HOPS: dict[str, HopCost] = {
    "local": HopCost(fixed_ms=0.05, per_kb_ms=0.01),
    "app-to-reference": HopCost(fixed_ms=1.2, per_kb_ms=0.35),
    "reference-to-base": HopCost(fixed_ms=1.0, per_kb_ms=0.30),
    "base-to-repository": HopCost(fixed_ms=0.8, per_kb_ms=0.25),
    # Peer link between two cache shards in a cluster (same machine
    # room as the reference servers, cheaper than the WAN-ish hops but
    # never free): cross-shard memo imports and gossip are charged here.
    "shard-to-shard": HopCost(fixed_ms=0.4, per_kb_ms=0.12),
}

#: Default repository table.  ``parcweb`` is an intranet web server,
#: ``www`` an internet one, ``nfs`` a LAN filer; ``live`` streams and is
#: never cacheable, so its cost matters only for the uncached path.
DEFAULT_REPOSITORIES: dict[str, RepositoryCost] = {
    "parcweb": RepositoryCost(connect_ms=9.0, per_kb_ms=1.6),
    "www": RepositoryCost(connect_ms=55.0, per_kb_ms=6.5),
    "nfs": RepositoryCost(connect_ms=2.5, per_kb_ms=0.6),
    "dms": RepositoryCost(connect_ms=6.0, per_kb_ms=1.1),
    "live": RepositoryCost(connect_ms=12.0, per_kb_ms=2.0),
    "mail": RepositoryCost(connect_ms=4.0, per_kb_ms=0.9),
    "memory": RepositoryCost(connect_ms=0.02, per_kb_ms=0.005),
}


class LatencyModel:
    """Maps hops and repository fetches to virtual-milliseconds costs.

    Parameters
    ----------
    hops, repositories:
        Override tables; unknown names raise :class:`WorkloadError` at use
        so configuration mistakes surface immediately.
    jitter_fraction:
        If non-zero, each cost is multiplied by a factor drawn uniformly
        from ``[1 - j, 1 + j]`` using a seeded RNG — deterministic across
        runs but avoids perfectly identical repeated measurements.
    seed:
        Seed for the jitter RNG.
    """

    def __init__(
        self,
        hops: dict[str, HopCost] | None = None,
        repositories: dict[str, RepositoryCost] | None = None,
        jitter_fraction: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= jitter_fraction < 1.0:
            raise WorkloadError(
                f"jitter_fraction must be in [0, 1): {jitter_fraction}"
            )
        self.hops = dict(DEFAULT_HOPS if hops is None else hops)
        self.repositories = dict(
            DEFAULT_REPOSITORIES if repositories is None else repositories
        )
        self._jitter_fraction = jitter_fraction
        self._rng = random.Random(seed)
        self._down_links: set[str] = set()

    def _jitter(self, cost_ms: float) -> float:
        if self._jitter_fraction == 0.0:
            return cost_ms
        low = 1.0 - self._jitter_fraction
        high = 1.0 + self._jitter_fraction
        return cost_ms * self._rng.uniform(low, high)

    def hop_cost_ms(self, hop: str, size_bytes: int = 0) -> float:
        """Latency of moving *size_bytes* across the named hop."""
        try:
            table_entry = self.hops[hop]
        except KeyError:
            raise WorkloadError(f"unknown hop: {hop!r}") from None
        if hop in self._down_links:
            raise RepositoryOfflineError(f"network link {hop!r} is down")
        return self._jitter(table_entry.cost_ms(size_bytes))

    def set_link_down(self, hop: str, down: bool = True) -> None:
        """Toggle a topology link's reachability (failure injection).

        The scheduled-window counterpart lives in
        :class:`~repro.faults.plan.FaultPlan`; this is the manual toggle
        for tests that flip a link mid-scenario.
        """
        if hop not in self.hops:
            raise WorkloadError(f"unknown hop: {hop!r}")
        if down:
            self._down_links.add(hop)
        else:
            self._down_links.discard(hop)

    def repository_cost_ms(self, repository: str, size_bytes: int) -> float:
        """Service latency of fetching *size_bytes* from the repository."""
        try:
            table_entry = self.repositories[repository]
        except KeyError:
            raise WorkloadError(f"unknown repository: {repository!r}") from None
        if table_entry.offline:
            raise RepositoryOfflineError(
                f"repository {repository!r} is offline"
            )
        return self._jitter(table_entry.cost_ms(size_bytes))

    def set_repository_offline(self, repository: str, offline: bool = True) -> None:
        """Toggle a repository's reachability (failure injection)."""
        try:
            current = self.repositories[repository]
        except KeyError:
            raise WorkloadError(f"unknown repository: {repository!r}") from None
        self.repositories[repository] = RepositoryCost(
            connect_ms=current.connect_ms,
            per_kb_ms=current.per_kb_ms,
            offline=offline,
        )
