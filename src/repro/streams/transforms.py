"""Generic transform streams that custom active-property streams build on.

Section 2: "active properties that modify the document content create a
chain of custom output-streams that will each operate subsequently on the
content that is being written", and symmetrically for reads.  Three
granularities cover the paper's examples:

* **Buffered** — the transform needs the whole content (translation,
  summarisation): the input variant drains its inner stream on first read;
  the output variant applies the transform at close before forwarding.
* **Chunk** — the transform is byte-local (compression-like filters,
  case-folding): applied per read/write call.
* **Line** — the transform is line-local (spell-correcting a text line at
  a time).
"""

from __future__ import annotations

from typing import Callable

from repro.streams.base import InputStream, OutputStream

__all__ = [
    "BufferedTransformInputStream",
    "BufferedTransformOutputStream",
    "ChunkTransformInputStream",
    "ChunkTransformOutputStream",
    "LineTransformInputStream",
    "text_transform",
]

BytesTransform = Callable[[bytes], bytes]


def text_transform(fn: Callable[[str], str], encoding: str = "utf-8") -> BytesTransform:
    """Lift a ``str → str`` function to a ``bytes → bytes`` transform.

    Undecodable bytes are passed through unchanged rather than raising, so
    text-oriented properties degrade gracefully on binary content — the
    behaviour a deployed spelling corrector would need.
    """

    def transform(data: bytes) -> bytes:
        try:
            decoded = data.decode(encoding)
        except UnicodeDecodeError:
            return data
        return fn(decoded).encode(encoding)

    return transform


class BufferedTransformInputStream(InputStream):
    """Input stream applying a whole-content transform.

    The inner stream is drained lazily on the first read, transformed
    once, and the result served from a buffer.  This matches properties
    whose output depends on the entire document (translate, summarize).
    """

    def __init__(self, inner: InputStream, transform: BytesTransform) -> None:
        super().__init__()
        self._inner = inner
        self._transform = transform
        self._buffer: bytes | None = None
        self._position = 0

    def _materialize(self) -> bytes:
        if self._buffer is None:
            raw = self._inner.read(-1)
            self._buffer = self._transform(raw)
        return self._buffer

    def _read_chunk(self, size: int) -> bytes:
        buffer = self._materialize()
        chunk = buffer[self._position : self._position + size]
        self._position += len(chunk)
        return chunk

    def _on_close(self) -> None:
        self._inner.close()


class BufferedTransformOutputStream(OutputStream):
    """Output stream applying a whole-content transform at close.

    Writes accumulate; when the application closes the stream the
    transform runs once and the result is written to the downstream
    stream, which is then closed.  This is how a spelling corrector on the
    write path sees the full document before the repository does.
    """

    def __init__(self, downstream: OutputStream, transform: BytesTransform) -> None:
        super().__init__()
        self._downstream = downstream
        self._transform = transform
        self._pieces: list[bytes] = []

    def _write_chunk(self, data: bytes) -> None:
        self._pieces.append(data)

    def _on_close(self) -> None:
        transformed = self._transform(b"".join(self._pieces))
        if transformed:
            self._downstream.write(transformed)
        self._downstream.close()


class ChunkTransformInputStream(InputStream):
    """Input stream applying a byte-local transform to each chunk read.

    Only sound for transforms where ``t(a + b) == t(a) + t(b)``; callers
    wanting context across chunk boundaries should use the buffered or
    line variants.
    """

    def __init__(self, inner: InputStream, transform: BytesTransform) -> None:
        super().__init__()
        self._inner = inner
        self._transform = transform

    def _read_chunk(self, size: int) -> bytes:
        chunk = self._inner.read(size)
        if not chunk:
            return b""
        return self._transform(chunk)

    def _on_close(self) -> None:
        self._inner.close()


class ChunkTransformOutputStream(OutputStream):
    """Output stream applying a byte-local transform to each write."""

    def __init__(self, downstream: OutputStream, transform: BytesTransform) -> None:
        super().__init__()
        self._downstream = downstream
        self._transform = transform

    def _write_chunk(self, data: bytes) -> None:
        self._downstream.write(self._transform(data))

    def _on_close(self) -> None:
        self._downstream.close()


class LineTransformInputStream(InputStream):
    """Input stream applying a transform to each ``\\n``-terminated line.

    Partial lines are held back until their terminator (or end of stream)
    arrives, so the transform always sees complete lines regardless of the
    chunk sizes the reader uses.
    """

    def __init__(self, inner: InputStream, transform: BytesTransform) -> None:
        super().__init__()
        self._inner = inner
        self._transform = transform
        self._carry = b""
        self._out = b""
        self._inner_done = False

    def _refill(self, want: int) -> None:
        while len(self._out) < want and not self._inner_done:
            chunk = self._inner.read(4096)
            if not chunk:
                self._inner_done = True
                if self._carry:
                    self._out += self._transform(self._carry)
                    self._carry = b""
                break
            data = self._carry + chunk
            lines = data.split(b"\n")
            self._carry = lines.pop()  # last piece has no terminator yet
            for line in lines:
                self._out += self._transform(line) + b"\n"

    def _read_chunk(self, size: int) -> bytes:
        self._refill(size)
        chunk, self._out = self._out[:size], self._out[size:]
        return chunk

    def _on_close(self) -> None:
        self._inner.close()
