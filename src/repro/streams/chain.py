"""Builders applying property stream-wrappers in the paper's order.

Read path (§2): "The execution of custom input stream functionality on
the read path occurs first at the base document and then at the document
reference."  Content therefore flows

    repository → base-property streams → reference-property streams → app

which, in wrapper terms, means reference wrappers wrap *outside* base
wrappers: the application reads from the outermost (last reference
property's) stream.

Write path: "custom output-streams on the write path are first executed
at the document reference and then at the base document" — the
application writes into the outermost stream, which is the *first*
reference property's; data then flows through the remaining reference
wrappers, the base wrappers, and finally the bit-provider's sink.

Both builders fail **closed**: a wrapper that raises during chain
construction closes the partially-built chain before the error
propagates, so no half-wrapped stream leaks to the caller.

This module is also the stream seam of the containment layer:
:func:`apply_read_wrapper` / :func:`apply_write_wrapper` are the single
points where property stream code actually runs on a document path.
Without a containment guard they preserve the historical absorb+wrap
behaviour byte-for-byte (plus optional seed-deterministic misbehaviour
injection from the fault plan); with a guard attached to the context
they route through its breakers, budgets and exception firewalls.
"""

from __future__ import annotations

import typing
from typing import Any, Callable, Iterable

from repro.errors import BudgetExceededError, PropertyError, StreamError
from repro.streams.base import InputStream, OutputStream

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.placeless.document import PathMeta
    from repro.placeless.properties import ActiveProperty
    from repro.sim.context import SimContext

__all__ = [
    "build_input_chain",
    "build_output_chain",
    "drain",
    "apply_read_wrapper",
    "apply_write_wrapper",
    "property_site",
    "read_chain_properties",
    "injected_property_error",
    "FirewallInputStream",
    "FirewallOutputStream",
    "ByteCapInputStream",
    "CorruptingInputStream",
    "CorruptingOutputStream",
]

InputWrapper = Callable[[InputStream], InputStream]
OutputWrapper = Callable[[OutputStream], OutputStream]


def build_input_chain(
    source: InputStream,
    wrappers: Iterable[InputWrapper],
) -> InputStream:
    """Wrap *source* with each wrapper, in execution order.

    *wrappers* must be supplied in the order the properties execute on the
    read path (base-document properties first, then reference
    properties).  The first wrapper ends up innermost — closest to the
    repository — so it transforms the content first, exactly as §2's
    calling chain describes.  Returns the outermost stream the application
    reads from.

    Fails closed: a raising wrapper closes the chain built so far before
    the error propagates.
    """
    stream = source
    for wrap in wrappers:
        try:
            stream = wrap(stream)
        except Exception:
            stream.close()
            raise
    return stream


def build_output_chain(
    sink: OutputStream,
    wrappers: Iterable[OutputWrapper],
) -> OutputStream:
    """Wrap *sink* with each wrapper, in execution order.

    *wrappers* must be supplied in the order the properties execute on the
    write path (reference properties first, then base properties).  The
    first wrapper ends up outermost — it is handed "to the next property
    in the calling chain ... or if it is the last to the application" — so
    the application's writes hit it first.  Returns the outermost stream
    the application writes into.

    Fails closed: a raising wrapper closes the chain built so far before
    the error propagates.
    """
    stream = sink
    for wrap in reversed(list(wrappers)):
        try:
            stream = wrap(stream)
        except Exception:
            stream.close()
            raise
    return stream


def drain(source: InputStream, chunk_size: int = 4096) -> bytes:
    """Read *source* to end of stream in *chunk_size* pieces and close it.

    Reading chunk-wise (rather than ``read(-1)``) exercises the chunk and
    line transform paths the way a real application would.
    """
    pieces = []
    try:
        while True:
            chunk = source.read(chunk_size)
            if not chunk:
                break
            pieces.append(chunk)
    finally:
        source.close()
    return b"".join(pieces)


# -- the stream seam of the containment layer ----------------------------------


def property_site(prop: "ActiveProperty") -> str:
    """Breaker/fault site label for one property's stream wrappers."""
    return f"stream:{prop.name}"


def read_chain_properties(reference) -> tuple:
    """The active properties on *reference*'s read path, in chain order.

    Base-document properties first, then reference properties — the
    execution order §2 prescribes and :func:`build_input_chain`
    realises.  Metadata-only (no streams are built), so the chain
    signature and chain fingerprint machinery can predict a read path
    without running it.
    """
    from repro.events.types import EventType

    return tuple(
        reference.base.stream_chain(EventType.GET_INPUT_STREAM)
        + reference.stream_chain(EventType.GET_INPUT_STREAM)
    )


def injected_property_error(prop: "ActiveProperty") -> PropertyError:
    """The exception an injected *raise*-mode misbehaviour throws."""
    return PropertyError(
        f"injected failure in property {prop.name!r}"
    )


def apply_read_wrapper(
    ctx: "SimContext",
    prop: "ActiveProperty",
    stream: InputStream,
    event: Any,
    meta: "PathMeta",
) -> InputStream:
    """Run one property's read-path interposition (absorb + wrap).

    This is where untrusted property code executes on the read path.
    With a containment guard on the context the invocation runs behind
    its breaker, budget and firewall; without one, behaviour is the
    historical ``meta.absorb_property`` + ``prop.wrap_input`` —
    augmented only by the fault plan's seed-deterministic property
    misbehaviour, which (uncontained) propagates to the application.
    """
    guard = getattr(ctx, "containment", None)
    if guard is not None:
        return guard.wrap_input(prop, stream, event, meta)
    plan = ctx.faults
    mode = None
    if plan is not None and not getattr(prop, "is_infrastructure", False):
        mode = plan.check_property(property_site(prop))
    meta.absorb_property(ctx, prop)
    if mode == "runaway" and plan is not None:
        ctx.charge(plan.property_runaway_cost_ms)
    if mode == "raise":
        raise injected_property_error(prop)
    wrapped = prop.wrap_input(stream, event)
    if mode == "corrupt":
        wrapped = CorruptingInputStream(wrapped, property_site(prop))
    return wrapped


def apply_write_wrapper(
    ctx: "SimContext",
    prop: "ActiveProperty",
    stream: OutputStream,
    event: Any,
) -> OutputStream:
    """Run one property's write-path interposition (charge + wrap).

    The write-path twin of :func:`apply_read_wrapper`.
    """
    guard = getattr(ctx, "containment", None)
    if guard is not None:
        return guard.wrap_output(prop, stream, event)
    plan = ctx.faults
    mode = None
    if plan is not None and not getattr(prop, "is_infrastructure", False):
        mode = plan.check_property(property_site(prop))
    ctx.charge(prop.execution_cost_ms)
    if mode == "runaway" and plan is not None:
        ctx.charge(plan.property_runaway_cost_ms)
    if mode == "raise":
        raise injected_property_error(prop)
    wrapped = prop.wrap_output(stream, event)
    if mode == "corrupt":
        wrapped = CorruptingOutputStream(wrapped, property_site(prop))
    return wrapped


class FirewallInputStream(InputStream):
    """Exception firewall around a property's input stream.

    Reports the stream's fate to the containment guard: ``on_failure``
    once if any read raises (the error still propagates — a mid-stream
    failure cannot be skipped retroactively, but the breaker learns),
    ``on_success`` once when end of stream is reached cleanly.
    """

    def __init__(
        self,
        inner: InputStream,
        on_failure: Callable[[BaseException], None],
        on_success: Callable[[], None],
    ) -> None:
        super().__init__()
        self._inner = inner
        self._on_failure = on_failure
        self._on_success = on_success
        self._reported = False

    def _read_chunk(self, size: int) -> bytes:
        try:
            chunk = self._inner.read(size)
        except Exception as error:
            if not self._reported:
                self._reported = True
                self._on_failure(error)
            raise
        if not chunk and not self._reported:
            self._reported = True
            self._on_success()
        return chunk

    def _on_close(self) -> None:
        self._inner.close()


class FirewallOutputStream(OutputStream):
    """Exception firewall around a property's output stream.

    ``on_failure`` fires once if any write raises (the error
    propagates); ``on_success`` fires at a clean close.
    """

    def __init__(
        self,
        inner: OutputStream,
        on_failure: Callable[[BaseException], None],
        on_success: Callable[[], None],
    ) -> None:
        super().__init__()
        self._inner = inner
        self._on_failure = on_failure
        self._on_success = on_success
        self._reported = False

    def _write_chunk(self, data: bytes) -> None:
        try:
            self._inner.write(data)
        except Exception as error:
            if not self._reported:
                self._reported = True
                self._on_failure(error)
            raise

    def _on_close(self) -> None:
        self._inner.close()
        if not self._reported:
            self._reported = True
            self._on_success()


class ByteCapInputStream(InputStream):
    """Enforces an execution budget's byte cap on a property stream."""

    def __init__(self, inner: InputStream, max_bytes: int, site: str) -> None:
        super().__init__()
        self._inner = inner
        self._max_bytes = max_bytes
        self._site = site
        self.bytes_read = 0

    def _read_chunk(self, size: int) -> bytes:
        chunk = self._inner.read(size)
        self.bytes_read += len(chunk)
        if self.bytes_read > self._max_bytes:
            raise BudgetExceededError(
                f"{self._site}: streamed {self.bytes_read} bytes, "
                f"budget {self._max_bytes}"
            )
        return chunk

    def _on_close(self) -> None:
        self._inner.close()


class CorruptingInputStream(InputStream):
    """Injected *corrupt-output* misbehaviour on the read path.

    Delivers one garbled chunk, then fails mid-stream — a transformer
    whose output framing broke partway through, detectably.
    """

    def __init__(self, inner: InputStream, site: str) -> None:
        super().__init__()
        self._inner = inner
        self._site = site
        self._delivered = False

    def _read_chunk(self, size: int) -> bytes:
        if self._delivered:
            raise StreamError(
                f"{self._site}: injected corrupt output mid-stream"
            )
        self._delivered = True
        chunk = self._inner.read(size)
        return bytes(byte ^ 0x5A for byte in chunk)

    def _on_close(self) -> None:
        self._inner.close()


class CorruptingOutputStream(OutputStream):
    """Injected *corrupt-output* misbehaviour on the write path.

    The first write fails with a stream error — the transformer mangled
    its output and downstream framing rejected it — so no corrupt bytes
    reach the bit-provider.
    """

    def __init__(self, inner: OutputStream, site: str) -> None:
        super().__init__()
        self._inner = inner
        self._site = site

    def _write_chunk(self, data: bytes) -> None:
        raise StreamError(
            f"{self._site}: injected corrupt output on write"
        )

    def _on_close(self) -> None:
        self._inner.close()
