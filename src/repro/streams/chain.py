"""Builders applying property stream-wrappers in the paper's order.

Read path (§2): "The execution of custom input stream functionality on
the read path occurs first at the base document and then at the document
reference."  Content therefore flows

    repository → base-property streams → reference-property streams → app

which, in wrapper terms, means reference wrappers wrap *outside* base
wrappers: the application reads from the outermost (last reference
property's) stream.

Write path: "custom output-streams on the write path are first executed
at the document reference and then at the base document" — the
application writes into the outermost stream, which is the *first*
reference property's; data then flows through the remaining reference
wrappers, the base wrappers, and finally the bit-provider's sink.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.streams.base import InputStream, OutputStream

__all__ = ["build_input_chain", "build_output_chain", "drain"]

InputWrapper = Callable[[InputStream], InputStream]
OutputWrapper = Callable[[OutputStream], OutputStream]


def build_input_chain(
    source: InputStream,
    wrappers: Iterable[InputWrapper],
) -> InputStream:
    """Wrap *source* with each wrapper, in execution order.

    *wrappers* must be supplied in the order the properties execute on the
    read path (base-document properties first, then reference
    properties).  The first wrapper ends up innermost — closest to the
    repository — so it transforms the content first, exactly as §2's
    calling chain describes.  Returns the outermost stream the application
    reads from.
    """
    stream = source
    for wrap in wrappers:
        stream = wrap(stream)
    return stream


def build_output_chain(
    sink: OutputStream,
    wrappers: Iterable[OutputWrapper],
) -> OutputStream:
    """Wrap *sink* with each wrapper, in execution order.

    *wrappers* must be supplied in the order the properties execute on the
    write path (reference properties first, then base properties).  The
    first wrapper ends up outermost — it is handed "to the next property
    in the calling chain ... or if it is the last to the application" — so
    the application's writes hit it first.  Returns the outermost stream
    the application writes into.
    """
    stream = sink
    for wrap in reversed(list(wrappers)):
        stream = wrap(stream)
    return stream


def drain(source: InputStream, chunk_size: int = 4096) -> bytes:
    """Read *source* to end of stream in *chunk_size* pieces and close it.

    Reading chunk-wise (rather than ``read(-1)``) exercises the chunk and
    line transform paths the way a real application would.
    """
    pieces = []
    try:
        while True:
            chunk = source.read(chunk_size)
            if not chunk:
                break
            pieces.append(chunk)
    finally:
        source.close()
    return b"".join(pieces)
