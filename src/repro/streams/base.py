"""Stream protocol and concrete byte-buffer streams.

The protocol intentionally mirrors ``java.io``'s minimal surface — the
paper's properties only need ``read``/``write``/``close`` plus wrapping —
rather than Python's richer ``io`` ABCs, so the transform-chaining
semantics stay obvious.
"""

from __future__ import annotations

import abc

from repro.errors import StreamClosedError

__all__ = [
    "InputStream",
    "OutputStream",
    "BytesInputStream",
    "BytesOutputStream",
    "CountingInputStream",
    "TeeOutputStream",
    "NullOutputStream",
]


class InputStream(abc.ABC):
    """A readable byte stream.

    Subclasses implement :meth:`_read_chunk`; the base class handles
    closed-state checking and the ``read everything`` convention
    (``size < 0``).
    """

    def __init__(self) -> None:
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    def read(self, size: int = -1) -> bytes:
        """Read up to *size* bytes; ``size < 0`` reads to end of stream.

        Returns ``b""`` exactly at end of stream.
        """
        if self._closed:
            raise StreamClosedError("read from closed stream")
        if size < 0:
            pieces = []
            while True:
                chunk = self._read_chunk(65536)
                if not chunk:
                    break
                pieces.append(chunk)
            return b"".join(pieces)
        if size == 0:
            return b""
        return self._read_chunk(size)

    def read_all(self) -> bytes:
        """Read to end of stream (alias for ``read(-1)``)."""
        return self.read(-1)

    def close(self) -> None:
        """Close this stream and release any wrapped streams."""
        if not self._closed:
            self._closed = True
            self._on_close()

    def __enter__(self) -> "InputStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @abc.abstractmethod
    def _read_chunk(self, size: int) -> bytes:
        """Produce at most *size* bytes, ``b""`` at end of stream."""

    def _on_close(self) -> None:
        """Hook for subclasses to propagate close to wrapped streams."""


class OutputStream(abc.ABC):
    """A writable byte stream.

    Subclasses implement :meth:`_write_chunk`; :meth:`close` flushes any
    buffered transformation output downstream before closing.
    """

    def __init__(self) -> None:
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    def write(self, data: bytes) -> int:
        """Write *data*; returns the number of bytes accepted."""
        if self._closed:
            raise StreamClosedError("write to closed stream")
        self._write_chunk(bytes(data))
        return len(data)

    def close(self) -> None:
        """Flush and close this stream (and any downstream streams)."""
        if not self._closed:
            self._closed = True
            self._on_close()

    def __enter__(self) -> "OutputStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @abc.abstractmethod
    def _write_chunk(self, data: bytes) -> None:
        """Accept *data*."""

    def _on_close(self) -> None:
        """Hook for subclasses to flush/propagate close downstream."""


class BytesInputStream(InputStream):
    """An input stream over an in-memory byte string."""

    def __init__(self, data: bytes) -> None:
        super().__init__()
        self._data = bytes(data)
        self._position = 0

    def _read_chunk(self, size: int) -> bytes:
        chunk = self._data[self._position : self._position + size]
        self._position += len(chunk)
        return chunk

    @property
    def remaining(self) -> int:
        """Bytes not yet read."""
        return len(self._data) - self._position


class BytesOutputStream(OutputStream):
    """An output stream accumulating into an in-memory buffer."""

    def __init__(self) -> None:
        super().__init__()
        self._pieces: list[bytes] = []

    def _write_chunk(self, data: bytes) -> None:
        self._pieces.append(data)

    def getvalue(self) -> bytes:
        """All bytes written so far (valid before or after close)."""
        return b"".join(self._pieces)


class CountingInputStream(InputStream):
    """Pass-through input stream that counts bytes and read calls.

    Used by properties (e.g. the read-audit trail) that must observe
    operations without touching content.
    """

    def __init__(self, inner: InputStream) -> None:
        super().__init__()
        self._inner = inner
        self.bytes_read = 0
        self.read_calls = 0

    def _read_chunk(self, size: int) -> bytes:
        self.read_calls += 1
        chunk = self._inner.read(size)
        self.bytes_read += len(chunk)
        return chunk

    def _on_close(self) -> None:
        self._inner.close()


class TeeOutputStream(OutputStream):
    """Output stream duplicating writes to two downstream streams.

    Used by e.g. replication properties that keep a copy at a second site
    while the primary write proceeds.
    """

    def __init__(self, primary: OutputStream, secondary: OutputStream) -> None:
        super().__init__()
        self._primary = primary
        self._secondary = secondary

    def _write_chunk(self, data: bytes) -> None:
        self._primary.write(data)
        self._secondary.write(data)

    def _on_close(self) -> None:
        self._primary.close()
        self._secondary.close()


class NullOutputStream(OutputStream):
    """Discards everything written to it (used in event-only forwarding)."""

    def __init__(self) -> None:
        super().__init__()
        self.bytes_discarded = 0

    def _write_chunk(self, data: bytes) -> None:
        self.bytes_discarded += len(data)
