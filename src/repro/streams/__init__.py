"""Java-stream-like content I/O with custom-stream chaining.

The Placeless content I/O model "is based on Java Input and Output
streams" (§2, footnote 1).  Active properties that transform content do so
by interposing *custom streams*: on the read path each interested property
wraps the stream produced so far in its own input stream; on the write
path each wraps the downstream output stream.  This package provides the
stream protocol, concrete byte-buffer streams, generic transform streams,
and the chain builders that apply wrappers in the paper's order.
"""

from repro.streams.base import (
    BytesInputStream,
    BytesOutputStream,
    CountingInputStream,
    InputStream,
    NullOutputStream,
    OutputStream,
    TeeOutputStream,
)
from repro.streams.chain import build_input_chain, build_output_chain, drain
from repro.streams.transforms import (
    BufferedTransformInputStream,
    BufferedTransformOutputStream,
    ChunkTransformInputStream,
    ChunkTransformOutputStream,
    LineTransformInputStream,
    text_transform,
)

__all__ = [
    "InputStream",
    "OutputStream",
    "BytesInputStream",
    "BytesOutputStream",
    "CountingInputStream",
    "TeeOutputStream",
    "NullOutputStream",
    "BufferedTransformInputStream",
    "BufferedTransformOutputStream",
    "ChunkTransformInputStream",
    "ChunkTransformOutputStream",
    "LineTransformInputStream",
    "text_transform",
    "build_input_chain",
    "build_output_chain",
    "drain",
]
