"""Workload generation: corpora, user populations and access traces.

Everything the benchmark harness replays: the three Table-1 documents
(sizes taken from the paper), synthetic multi-repository corpora with
heterogeneous property chains, deterministic text generation (so the
transform properties have something real to chew on), Zipf-popularity
access traces interleaved with the mutation events that drive the four
invalidation classes, and multi-user populations with personalized
property assignments.
"""

from repro.workload.churn import (
    ChurnCatalog,
    ChurnEvent,
    ChurnEventKind,
    ChurnSpec,
    ZipfSampler,
    generate_churn,
    universal_documents,
)
from repro.workload.documents import (
    CorpusDocument,
    CorpusSpec,
    build_corpus,
    build_table1_documents,
    generate_text,
)
from repro.workload.trace import (
    TraceEvent,
    TraceEventKind,
    TraceSpec,
    generate_trace,
    trace_from_jsonl,
    trace_to_jsonl,
    zipf_indices,
)
from repro.workload.runner import RunnerReport, TraceRunner
from repro.workload.users import Population, build_population

__all__ = [
    "ChurnCatalog",
    "ChurnEvent",
    "ChurnEventKind",
    "ChurnSpec",
    "ZipfSampler",
    "generate_churn",
    "universal_documents",
    "generate_text",
    "CorpusDocument",
    "CorpusSpec",
    "build_corpus",
    "build_table1_documents",
    "TraceEvent",
    "TraceEventKind",
    "TraceSpec",
    "generate_trace",
    "trace_to_jsonl",
    "trace_from_jsonl",
    "zipf_indices",
    "Population",
    "build_population",
    "TraceRunner",
    "RunnerReport",
]
