"""Million-entry churn workloads: lazy corpora + lifecycle traces.

The Table-1-era workloads (:mod:`repro.workload.documents`,
:mod:`repro.workload.trace`) materialize every document up front and
draw a closed population of indices — fine at 10^2 documents, hopeless
at 10^6, where eager materialization alone (text generation, provider
objects, origin records) costs minutes of wall clock and gigabytes of
RSS before the first read.  This module adds the scale pieces:

* :class:`ZipfSampler` — inverse-CDF Zipf over an ``array('d')``
  cumulative table, samplable over any live prefix, so one table built
  once serves a population that grows by publishes;
* :class:`ChurnCatalog` — a *lazy* corpus.  One seeded RNG pass fixes
  every document's size and repository at construction (the same draws,
  in the same order, :func:`~repro.workload.documents.build_corpus`
  makes), but text generation, provider construction and kernel import
  happen per document on first touch.  Materializing all documents in
  index order is byte-identical to the eager builder — a pinned-digest
  test holds the two together;
* :class:`ChurnSpec` / :func:`generate_churn` — a streaming trace
  generator with the dynamics a long-lived document population actually
  has: Zipf popularity over the *live* set, publish/perish churn, flash
  crowds, day/night load cycles and a personal/universal document mix.

Everything is a pure function of the spec's seed: same spec, same
events, on every platform (``random.Random`` is stable across CPython
versions for the methods used here).
"""

from __future__ import annotations

import enum
import random
import typing
from array import array
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterator

from repro.errors import WorkloadError
from repro.providers.filesystem import FileSystemProvider
from repro.providers.simfs import SimulatedFileSystem
from repro.providers.web import WebOrigin, WebProvider
from repro.workload.documents import (
    CorpusDocument,
    CorpusSpec,
    generate_text,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ids import UserId
    from repro.placeless.kernel import PlacelessKernel
    from repro.providers.base import BitProvider

__all__ = [
    "ZipfSampler",
    "ChurnCatalog",
    "ChurnEventKind",
    "ChurnEvent",
    "ChurnSpec",
    "generate_churn",
    "universal_documents",
]


class ZipfSampler:
    """Inverse-CDF Zipf(alpha) sampling over ranks ``[0, n_items)``.

    The cumulative harmonic table lives in an ``array('d')`` — 8 bytes
    per rank instead of a boxed float per rank, which at 10^6 ranks is
    the difference between an 8 MB table and ~36 MB of float objects.
    :meth:`sample` draws over a caller-chosen live prefix, so a
    population that grows by publishes reuses one table instead of
    rebuilding the distribution per event.
    """

    __slots__ = ("n_items", "alpha", "_cumulative")

    def __init__(self, n_items: int, alpha: float = 0.8) -> None:
        if n_items <= 0:
            raise WorkloadError(f"n_items must be positive: {n_items}")
        if alpha < 0:
            raise WorkloadError(f"alpha must be non-negative: {alpha}")
        self.n_items = n_items
        self.alpha = alpha
        cumulative = array("d")
        total = 0.0
        for rank in range(n_items):
            total += 1.0 / (rank + 1) ** alpha
            cumulative.append(total)
        self._cumulative = cumulative

    def sample(self, rng: random.Random, n_live: int | None = None) -> int:
        """One rank draw, restricted to the first *n_live* ranks."""
        if n_live is None:
            n_live = self.n_items
        elif not 0 < n_live <= self.n_items:
            raise WorkloadError(
                f"n_live must be in (0, {self.n_items}]: {n_live}"
            )
        cumulative = self._cumulative
        total = cumulative[n_live - 1]
        return bisect_left(cumulative, rng.random() * total, 0, n_live - 1)


class ChurnCatalog:
    """A lazily-materialized synthetic corpus.

    Construction performs exactly one pass over the spec's RNG, fixing
    each index's size and repository with the *same draws in the same
    order* as the eager :func:`~repro.workload.documents.build_corpus`
    loop — the scalars land in ``array`` columns (9 bytes per document)
    instead of built documents.  :meth:`document` materializes index
    *i* on first touch: deterministic text (seeded per index,
    independent of materialization order), the provider, the kernel
    import.  A churn run over a million-document catalog therefore pays
    materialization only for the documents the trace actually touches.

    Materializing every index in order (:meth:`materialize_all`) yields
    a corpus byte-identical to the eager builder's — including document
    ids, which the kernel mints in import order.
    """

    def __init__(
        self,
        kernel: "PlacelessKernel",
        owner: "UserId",
        spec: CorpusSpec | None = None,
    ) -> None:
        spec = spec or CorpusSpec()
        weights = [w for _, w in spec.repository_mix]
        names = [n for n, _ in spec.repository_mix]
        if abs(sum(weights) - 1.0) > 1e-9:
            raise WorkloadError("repository_mix probabilities must sum to 1")
        self.kernel = kernel
        self.owner = owner
        self.spec = spec
        self._names = names
        # The one RNG pass: identical draw order to the eager builder
        # (lognormvariate then choices, per index), so the per-index
        # scalars are the same no matter which builder ran.
        rng = random.Random(spec.seed)
        sizes = array("l")
        repositories = array("b")
        for _ in range(spec.n_documents):
            size = int(rng.lognormvariate(spec.size_mu, spec.size_sigma))
            sizes.append(max(spec.min_size, min(spec.max_size, size)))
            repositories.append(names.index(rng.choices(names, weights)[0]))
        self._sizes = sizes
        self._repositories = repositories
        self._filesystem = SimulatedFileSystem(kernel.ctx.clock)
        self._origins = {
            "parcweb": WebOrigin(kernel.ctx.clock, host="parcweb"),
            "www": WebOrigin(kernel.ctx.clock, host="www"),
        }
        self._documents: dict[int, CorpusDocument] = {}

    def __len__(self) -> int:
        return self.spec.n_documents

    @property
    def materialized_count(self) -> int:
        """Documents built so far (the lazy saving is ``len - this``)."""
        return len(self._documents)

    def size_of(self, index: int) -> int:
        """Index *i*'s content size, without materializing it."""
        return self._sizes[index]

    def repository_of(self, index: int) -> str:
        """Index *i*'s repository name, without materializing it."""
        return self._names[self._repositories[index]]

    def peek(self, index: int) -> CorpusDocument | None:
        """The document if already materialized, else ``None``."""
        return self._documents.get(index)

    def document(self, index: int) -> CorpusDocument:
        """Index *i*'s document, materializing it on first touch."""
        built = self._documents.get(index)
        if built is not None:
            return built
        if not 0 <= index < self.spec.n_documents:
            raise WorkloadError(
                f"document index out of range: {index} "
                f"(catalog holds {self.spec.n_documents})"
            )
        spec = self.spec
        size = self._sizes[index]
        content = generate_text(size, seed=spec.seed * 100_003 + index)
        repository = self._names[self._repositories[index]]
        label = f"doc-{index:04d}"
        provider: "BitProvider"
        if repository == "nfs":
            path = f"/corpus/{label}.txt"
            self._filesystem.write(path, content)
            provider = FileSystemProvider(
                self.kernel.ctx, self._filesystem, path
            )
        else:
            origin = self._origins[repository]
            url = f"/{label}.html"
            origin.publish(url, content, ttl_ms=spec.ttl_ms)
            provider = WebProvider(self.kernel.ctx, origin, url)
        reference = self.kernel.import_document(self.owner, provider, label)
        built = CorpusDocument(
            reference=reference,
            provider=provider,
            repository=repository,
            size_bytes=size,
            label=label,
        )
        self._documents[index] = built
        return built

    def materialize_all(self) -> list[CorpusDocument]:
        """Every document, in index order (the eager builder's output)."""
        return [self.document(index) for index in range(self.spec.n_documents)]


# -- churn traces ---------------------------------------------------------------


class ChurnEventKind(enum.Enum):
    """What one churn-trace step does."""

    READ = "read"
    WRITE = "write"
    PUBLISH = "publish"
    PERISH = "perish"


@dataclass(slots=True)
class ChurnEvent:
    """One step of a churn trace."""

    kind: ChurnEventKind
    document_index: int
    user_index: int
    #: Virtual milliseconds to advance before executing this event.
    think_time_ms: float = 0.0
    #: Step-specific detail (e.g. new content seed for a WRITE).
    detail: int = 0


@dataclass
class ChurnSpec:
    """Configuration for :func:`generate_churn`.

    The trace runs over a catalog of ``n_documents`` indices of which
    ``n_live_start`` exist at time zero; PUBLISH events bring the rest
    into existence in index order and PERISH events retire live ones.
    Popularity is Zipf over the live set's *rank order* (publish order;
    a perish swap-fills the vacated rank from the tail, a deterministic
    small perturbation).  A flash crowd redirects ``flash_share`` of
    reads to one document for ``flash_duration`` events.  The day/night
    cycle stretches think times by ``night_think_factor`` for the night
    fraction of each ``cycle_period``-event period.
    """

    n_events: int = 10_000
    n_documents: int = 1000
    n_live_start: int = 500
    n_users: int = 4
    zipf_alpha: float = 0.8
    #: Per-event probabilities; the remainder of 1 is READ.
    p_write: float = 0.02
    p_publish: float = 0.01
    p_perish: float = 0.005
    #: Probability per event of *starting* a flash crowd (when idle).
    p_flash: float = 0.0005
    flash_duration: int = 500
    flash_share: float = 0.6
    #: Day/night load cycle; 0 disables it.
    cycle_period: int = 0
    day_fraction: float = 0.7
    night_think_factor: float = 4.0
    mean_think_time_ms: float = 0.0
    #: Fraction of documents carrying only universal (user-independent)
    #: properties; the rest are personalized per user.  Universal
    #: documents are the ones signature sharing/adoption can serve
    #: across users (§3).
    universal_fraction: float = 0.5
    seed: int = 0

    def validate(self) -> None:
        """Raise on an unsatisfiable configuration."""
        if not 0 < self.n_live_start <= self.n_documents:
            raise WorkloadError(
                "n_live_start must be in (0, n_documents]: "
                f"{self.n_live_start} of {self.n_documents}"
            )
        if self.n_users <= 0:
            raise WorkloadError(f"n_users must be positive: {self.n_users}")
        total = self.p_write + self.p_publish + self.p_perish
        if total > 1.0 + 1e-9:
            raise WorkloadError("event-kind probabilities exceed 1")
        if not 0.0 <= self.universal_fraction <= 1.0:
            raise WorkloadError(
                f"universal_fraction must be in [0, 1]: "
                f"{self.universal_fraction}"
            )


def universal_documents(spec: ChurnSpec) -> set[int]:
    """The deterministic set of universal document indices.

    A seeded draw per index (independent of the event stream), so the
    split is stable whether or not a trace is ever generated.
    """
    rng = random.Random(spec.seed ^ 0x5EED)
    return {
        index
        for index in range(spec.n_documents)
        if rng.random() < spec.universal_fraction
    }


def generate_churn(spec: ChurnSpec) -> Iterator[ChurnEvent]:
    """Yield *spec.n_events* churn events deterministically.

    Streaming: state is O(live documents), never O(events), so a
    10^7-event trace over a 10^6-document catalog generates in constant
    memory beyond the live list.  Invariants (pinned by the hypothesis
    suite):

    * same spec → identical event stream, every time;
    * no READ/WRITE of a document before its PUBLISH or after its
      PERISH;
    * a PUBLISH introduces each index at most once, in index order;
    * popularity is monotone in rank over the stable prefix.
    """
    spec.validate()
    rng = random.Random(spec.seed)
    zipf = ZipfSampler(spec.n_documents, spec.zipf_alpha)
    #: Live documents in rank order; index into this list is the
    #: popularity rank the Zipf draw selects.
    live: list[int] = list(range(spec.n_live_start))
    next_index = spec.n_live_start
    flash_document = -1
    flash_remaining = 0
    night_start = (
        int(spec.cycle_period * spec.day_fraction)
        if spec.cycle_period > 0
        else 0
    )

    for step in range(spec.n_events):
        think = 0.0
        if spec.mean_think_time_ms > 0:
            think = rng.expovariate(1.0 / spec.mean_think_time_ms)
            if spec.cycle_period > 0:
                if (step % spec.cycle_period) >= night_start:
                    think *= spec.night_think_factor

        roll = rng.random()
        if roll < spec.p_write:
            kind = ChurnEventKind.WRITE
        elif roll < spec.p_write + spec.p_publish:
            kind = ChurnEventKind.PUBLISH
        elif roll < spec.p_write + spec.p_publish + spec.p_perish:
            kind = ChurnEventKind.PERISH
        else:
            kind = ChurnEventKind.READ

        if kind is ChurnEventKind.PUBLISH:
            if next_index < spec.n_documents:
                live.append(next_index)
                yield ChurnEvent(
                    kind=kind,
                    document_index=next_index,
                    user_index=0,
                    think_time_ms=think,
                )
                next_index += 1
                continue
            kind = ChurnEventKind.READ  # catalog exhausted: read instead
        elif kind is ChurnEventKind.PERISH:
            if len(live) > 1:
                victim_rank = rng.randrange(len(live))
                victim = live[victim_rank]
                # Swap-remove: the tail document inherits the vacated
                # rank.  O(1), deterministic, and the rank perturbation
                # only ever *demotes* popularity mass toward the tail.
                live[victim_rank] = live[-1]
                live.pop()
                if victim == flash_document:
                    flash_remaining = 0
                    flash_document = -1
                yield ChurnEvent(
                    kind=kind,
                    document_index=victim,
                    user_index=0,
                    think_time_ms=think,
                )
                continue
            kind = ChurnEventKind.READ  # nothing perishable: read instead

        # Flash-crowd bookkeeping (READ/WRITE events only).
        if flash_remaining > 0:
            flash_remaining -= 1
            if flash_remaining == 0:
                flash_document = -1
        elif spec.p_flash > 0 and rng.random() < spec.p_flash:
            flash_document = live[zipf.sample(rng, len(live))]
            flash_remaining = spec.flash_duration

        if (
            flash_document >= 0
            and kind is ChurnEventKind.READ
            and rng.random() < spec.flash_share
        ):
            document = flash_document
        else:
            document = live[zipf.sample(rng, len(live))]

        yield ChurnEvent(
            kind=kind,
            document_index=document,
            user_index=rng.randrange(spec.n_users),
            think_time_ms=think,
            detail=rng.randrange(1 << 30),
        )
