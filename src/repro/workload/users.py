"""User populations: many users sharing a corpus through personal references.

"since users can personalize their document use by attaching different
active properties to a document, caching the content for these users may
mean that different versions of the content need to be cached" (§1) —
but also, sharing is possible "when no active properties transform the
content or when all the transformations requested by the users are the
same" (§3).  :func:`build_population` constructs both situations: a
fraction of users get personalizing transform chains, the rest read the
plain document, with chain assignment drawn from a seeded RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.ids import UserId
from repro.placeless.kernel import PlacelessKernel
from repro.placeless.reference import DocumentReference
from repro.properties.spellcheck import SpellingCorrectorProperty
from repro.properties.summarize import SummaryProperty
from repro.properties.translate import TranslationProperty
from repro.workload.documents import CorpusDocument

__all__ = ["Population", "build_population"]

#: The personalization chains users may draw (name → factory).
CHAIN_FACTORIES = {
    "plain": lambda: [],
    "translate": lambda: [TranslationProperty()],
    "spellcheck": lambda: [SpellingCorrectorProperty()],
    "summarize": lambda: [SummaryProperty()],
    "spellcheck+translate": lambda: [
        SpellingCorrectorProperty(),
        TranslationProperty(),
    ],
}


@dataclass
class Population:
    """Users, their references per corpus document, and chain labels."""

    users: list[UserId]
    #: references[user_index][document_index]
    references: list[list[DocumentReference]]
    #: chain label assigned to each user (same chain on all their docs).
    chains: list[str]

    def reference(self, user_index: int, document_index: int) -> DocumentReference:
        """The reference of one user to one corpus document."""
        return self.references[user_index][document_index]


def build_population(
    kernel: PlacelessKernel,
    corpus: list[CorpusDocument],
    n_users: int,
    personalized_fraction: float = 0.5,
    seed: int = 0,
) -> Population:
    """Create *n_users* with references to every corpus document.

    ``personalized_fraction`` of the users get a (randomly drawn)
    transforming chain attached to each of their references; the rest
    stay plain, so their transformed content is byte-identical and the
    cache can share it via content signatures.
    """
    rng = random.Random(seed)
    chain_names = [name for name in CHAIN_FACTORIES if name != "plain"]
    users: list[UserId] = []
    references: list[list[DocumentReference]] = []
    chains: list[str] = []
    for user_index in range(n_users):
        user = kernel.create_user(f"user-{user_index:03d}")
        users.append(user)
        personalized = rng.random() < personalized_fraction
        chain_name = rng.choice(chain_names) if personalized else "plain"
        chains.append(chain_name)
        row: list[DocumentReference] = []
        for document in corpus:
            reference = kernel.space(user).add_reference(
                document.reference.base, hint=document.label
            )
            for prop in CHAIN_FACTORIES[chain_name]():
                reference.attach(prop)
            row.append(reference)
        references.append(row)
    return Population(users=users, references=references, chains=chains)
