"""Document corpora: the Table-1 trio and synthetic multi-repo corpora.

Table 1 names three documents by source and size:

* ``parcweb`` — 1915 bytes (the PARC intranet server);
* a ``www`` document — 10 883 bytes;
* a ``www`` document — 1104 bytes.

:func:`build_table1_documents` recreates exactly those three.
:func:`build_corpus` builds larger synthetic corpora whose sizes,
repositories and property chains are drawn from a seeded RNG, for the
replacement/sharing/consistency benches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.placeless.kernel import PlacelessKernel
from repro.placeless.reference import DocumentReference
from repro.providers.base import BitProvider
from repro.providers.web import WebOrigin, WebProvider
from repro.ids import UserId

__all__ = [
    "generate_text",
    "CorpusDocument",
    "CorpusSpec",
    "build_table1_documents",
    "build_corpus",
]

#: Word pool for deterministic document text.  Includes the words the
#: transform properties know about so spell-checks and translations
#: actually change bytes.
_WORDS = (
    "the a and of for with active property properties document documents "
    "cache caching system user users content placeless server reference "
    "base verifier notifier stream event workshop paper teh recieve "
    "seperate documnet propertys consistancy performence is are world "
    "hello replication version summary translate policy cost"
).split()


def generate_text(size_bytes: int, seed: int = 0) -> bytes:
    """Deterministic English-ish text of exactly *size_bytes* bytes.

    Words are drawn from a pool that overlaps the transform properties'
    dictionaries; lines wrap at ~72 columns, paragraphs every 6 lines.
    """
    if size_bytes < 0:
        raise WorkloadError(f"size must be non-negative: {size_bytes}")
    rng = random.Random(seed)
    pieces: list[str] = []
    line_len = 0
    lines_in_paragraph = 0
    total = 0
    while total < size_bytes:
        word = rng.choice(_WORDS)
        if line_len + len(word) + 1 > 72:
            if lines_in_paragraph >= 5:
                separator = "\n\n"
                lines_in_paragraph = 0
            else:
                separator = "\n"
                lines_in_paragraph += 1
            line_len = 0
        elif pieces:
            separator = " "
        else:
            separator = ""
        chunk = separator + word
        line_len += len(chunk)
        pieces.append(chunk)
        total += len(chunk)
    text = "".join(pieces)[:size_bytes]
    return text.encode("ascii")


@dataclass
class CorpusDocument:
    """One corpus member: the reference plus provenance for reporting."""

    reference: DocumentReference
    provider: BitProvider
    repository: str
    size_bytes: int
    label: str
    #: Names of active properties attached for this document (on the
    #: owner's reference), for result attribution.
    property_names: list[str] = field(default_factory=list)


def build_table1_documents(
    kernel: PlacelessKernel,
    owner: UserId,
    ttl_ms: float = 60_000.0,
) -> list[CorpusDocument]:
    """The paper's three Table-1 documents, verbatim sizes.

    "No active properties were associated with the documents at either
    the base or the reference in this experiment." (§4)
    """
    specs = [
        ("parcweb", "parcweb", "/index.html", 1915),
        ("www-large", "www", "/paper.ps", 10_883),
        ("www-small", "www", "/note.html", 1104),
    ]
    documents: list[CorpusDocument] = []
    for index, (label, host, url, size) in enumerate(specs):
        origin = WebOrigin(kernel.ctx.clock, host=host)
        origin.publish(url, generate_text(size, seed=index), ttl_ms=ttl_ms)
        provider = WebProvider(kernel.ctx, origin, url)
        reference = kernel.import_document(owner, provider, label)
        documents.append(
            CorpusDocument(
                reference=reference,
                provider=provider,
                repository=host,
                size_bytes=size,
                label=label,
            )
        )
    return documents


@dataclass
class CorpusSpec:
    """Configuration for a synthetic corpus."""

    n_documents: int = 100
    #: (repository name, probability) — must sum to 1.
    repository_mix: tuple[tuple[str, float], ...] = (
        ("nfs", 0.4),
        ("parcweb", 0.3),
        ("www", 0.3),
    )
    #: Log-normal size parameters (median ≈ exp(mu) bytes).
    size_mu: float = 7.6   # median ≈ 2 KB
    size_sigma: float = 1.2
    min_size: int = 128
    max_size: int = 200_000
    ttl_ms: float = 60_000.0
    seed: int = 42


def build_corpus(
    kernel: PlacelessKernel,
    owner: UserId,
    spec: CorpusSpec | None = None,
) -> list[CorpusDocument]:
    """Build a synthetic corpus of documents across repositories.

    Documents are owned by *owner*; callers attach property chains and
    create other users' references afterwards (see
    :func:`repro.workload.users.build_population`).
    """
    # Delegates to the lazy churn catalog, materialized in index order —
    # byte-identical output (a pinned-digest test holds the builders
    # together), one implementation of the draw order.
    from repro.workload.churn import ChurnCatalog

    return ChurnCatalog(kernel, owner, spec).materialize_all()
