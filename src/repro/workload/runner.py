"""Trace runner: executes a generated trace against a deployment.

The benches each hand-roll a small loop over
:class:`~repro.workload.trace.TraceEvent`; the runner is the reusable,
fully-general version covering every event kind — demand reads through a
cache (or bare kernel), in-band writes (through the cache or by a
separate writer principal), out-of-band repository mutation, property
attach/detach toggling, chain reordering and external-value changes —
with per-kind accounting.  Experiments that need bespoke bookkeeping
(e.g. A1's per-configuration staleness) keep their own loops; new
experiments and user studies can start from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.cache.instrumentation import StageRecorder
from repro.cache.manager import DocumentCache
from repro.errors import (
    ContainmentError,
    PropertyError,
    ProviderError,
    StreamError,
    WorkloadError,
)
from repro.placeless.kernel import PlacelessKernel
from repro.placeless.reference import DocumentReference
from repro.properties.translate import TranslationProperty
from repro.workload.documents import CorpusDocument, generate_text
from repro.workload.trace import TraceEvent, TraceEventKind

__all__ = ["RunnerReport", "TraceRunner"]


@dataclass
class RunnerReport:
    """Per-kind accounting of one trace execution."""

    events: int = 0
    reads: int = 0
    read_latency_ms: float = 0.0
    hits: int = 0
    #: Reads that failed with a provider error (outage/unavailability)
    #: even after the cache's retries and degradation modes.
    read_failures: int = 0
    #: Reads answered in a degradation mode (stale-on-error or a fetch
    #: that bypassed a failed backing level).
    degraded_reads: int = 0
    writes: int = 0
    #: In-band writes rejected by an offline repository.
    write_failures: int = 0
    out_of_band_updates: int = 0
    property_attaches: int = 0
    property_detaches: int = 0
    reorders: int = 0
    external_changes: int = 0
    #: Per-document external values after the run (for assertions).
    externals: dict[int, int] = field(default_factory=dict)

    @property
    def mean_read_latency_ms(self) -> float:
        """Average virtual read latency (0.0 with no reads)."""
        return self.read_latency_ms / self.reads if self.reads else 0.0

    @property
    def hit_ratio(self) -> float:
        """Hits over reads (0.0 with no reads)."""
        return self.hits / self.reads if self.reads else 0.0

    @property
    def availability(self) -> float:
        """Successfully answered reads over reads (1.0 with no reads).

        Degraded serves count as available — that is what the
        degradation modes buy.
        """
        if self.reads == 0:
            return 1.0
        return (self.reads - self.read_failures) / self.reads


class TraceRunner:
    """Executes trace events against a corpus + user population.

    Parameters
    ----------
    kernel:
        The deployment's kernel.
    corpus:
        The documents, indexed by the trace's ``document_index``.
    references:
        ``references[user_index][document_index]`` — each user's handle
        to each document (a single-user run passes one row).
    caches:
        ``None`` (no caching: reads go straight through the kernel), one
        shared cache, or one cache per user.
    writes_via_cache:
        When True, WRITE events go through the acting user's cache; when
        False (default) they are issued by a dedicated *writer* principal
        directly through the kernel — modelling other applications
        updating documents behind the readers' backs (but in-band).
    seed_salt:
        Mixed into generated write contents so two runners with the same
        trace can still produce distinct bytes if desired.
    """

    def __init__(
        self,
        kernel: PlacelessKernel,
        corpus: list[CorpusDocument],
        references: list[list[DocumentReference]],
        caches: DocumentCache | list[DocumentCache] | None = None,
        writes_via_cache: bool = False,
        seed_salt: int = 0,
    ) -> None:
        if not references or not all(
            len(row) == len(corpus) for row in references
        ):
            raise WorkloadError(
                "references must be a user x document matrix over the corpus"
            )
        self.kernel = kernel
        self.corpus = corpus
        self.references = references
        if caches is None or isinstance(caches, DocumentCache):
            self._caches = [caches] * len(references)
        else:
            if len(caches) != len(references):
                raise WorkloadError("need one cache per user (or one shared)")
            self._caches = list(caches)
        self.writes_via_cache = writes_via_cache
        self.seed_salt = seed_salt
        self._writer_refs: dict[int, DocumentReference] = {}
        self._writer = None
        #: Per-document external values mutated by EXTERNAL_CHANGE events;
        #: external-dependency properties may sample these.
        self.externals: dict[int, int] = {}

    # -- helpers ---------------------------------------------------------------

    def external_value(self, document_index: int) -> int:
        """Current external value for a document (0 before any change)."""
        return self.externals.get(document_index, 0)

    def stage_breakdown(self) -> StageRecorder:
        """Fleet-wide per-stage outcome/latency breakdown.

        Merges every distinct cache's :class:`StageRecorder` (a shared
        cache is counted once), so a trace run can report which pipeline
        stages its reads hit and what each outcome cost in virtual time.
        """
        merged = StageRecorder()
        seen: set[int] = set()
        for cache in self._caches:
            if cache is None or id(cache) in seen:
                continue
            seen.add(id(cache))
            merged.merge(cache.stage_breakdown())
        return merged

    def _writer_reference(self, document_index: int) -> DocumentReference:
        if self._writer is None:
            self._writer = self.kernel.create_user("trace-writer")
        reference = self._writer_refs.get(document_index)
        if reference is None:
            reference = self.kernel.space(self._writer).add_reference(
                self.corpus[document_index].reference.base
            )
            self._writer_refs[document_index] = reference
        return reference

    def _toggle_property(
        self, reference: DocumentReference, report: RunnerReport
    ) -> None:
        name = "runner-translate"
        if reference.has_property(name):
            reference.detach_by_name(name)
            report.property_detaches += 1
        else:
            reference.attach(TranslationProperty(name=name))
            report.property_attaches += 1

    def _rotate_chain(
        self, reference: DocumentReference, report: RunnerReport
    ) -> None:
        chain = [
            p for p in reference.active_properties()
            if not getattr(p, "is_infrastructure", False)
        ]
        if len(chain) < 2:
            return
        infra = [
            p.property_id for p in reference.active_properties()
            if getattr(p, "is_infrastructure", False)
        ]
        ids = [p.property_id for p in chain]
        reference.reorder(ids[1:] + ids[:1] + infra)
        report.reorders += 1

    # -- execution ------------------------------------------------------------

    def execute(self, events: Iterable[TraceEvent]) -> RunnerReport:
        """Run every event; returns the accounting report."""
        report = RunnerReport()
        for event in events:
            report.events += 1
            if event.think_time_ms:
                self.kernel.ctx.clock.advance(event.think_time_ms)
            document = self.corpus[event.document_index]
            reference = self.references[event.user_index][event.document_index]
            cache = self._caches[event.user_index]

            if event.kind is TraceEventKind.READ:
                report.reads += 1
                try:
                    if cache is None:
                        outcome = self.kernel.read(reference)
                        report.read_latency_ms += outcome.elapsed_ms
                    else:
                        outcome = cache.read(reference)
                        report.read_latency_ms += outcome.elapsed_ms
                        if outcome.hit:
                            report.hits += 1
                        if outcome.degraded:
                            report.degraded_reads += 1
                except (ProviderError, PropertyError, StreamError,
                        ContainmentError):
                    # The repository/link is down (or active-property
                    # code blew up mid-path) and every degradation mode
                    # was exhausted; the trace carries on — that is
                    # precisely what availability measures.
                    report.read_failures += 1
            elif event.kind is TraceEventKind.WRITE:
                content = generate_text(
                    document.size_bytes,
                    seed=event.detail ^ self.seed_salt,
                )
                try:
                    if self.writes_via_cache and cache is not None:
                        cache.write(reference, content)
                    else:
                        self.kernel.write(
                            self._writer_reference(event.document_index),
                            content,
                        )
                except (ProviderError, PropertyError, StreamError,
                        ContainmentError):
                    report.write_failures += 1
                else:
                    report.writes += 1
            elif event.kind is TraceEventKind.OUT_OF_BAND_UPDATE:
                content = generate_text(
                    document.size_bytes,
                    seed=(event.detail ^ self.seed_salt) + 1,
                )
                document.provider.mutate_out_of_band(content)
                report.out_of_band_updates += 1
            elif event.kind is TraceEventKind.PROPERTY_CHANGE:
                self._toggle_property(reference, report)
            elif event.kind is TraceEventKind.PROPERTY_REORDER:
                self._rotate_chain(reference, report)
            elif event.kind is TraceEventKind.EXTERNAL_CHANGE:
                self.externals[event.document_index] = (
                    self.externals.get(event.document_index, 0) + 1
                )
                report.external_changes += 1
        report.externals = dict(self.externals)
        return report
