"""Access traces: Zipf-popularity reads interleaved with mutations.

Web and document workloads of the period follow Zipf-like popularity
(the Greedy-Dual-Size paper's evaluation does too), so reads draw
document indices from a Zipf distribution.  Mutation events are mixed in
at configurable rates, one per consistency class, so a single trace can
drive the notifier/verifier and invalidation experiments:

* ``WRITE`` — in-band write through Placeless (class 1, snooped);
* ``OUT_OF_BAND_UPDATE`` — repository mutated directly (class 1, only a
  verifier catches it);
* ``PROPERTY_CHANGE`` — attach/detach/upgrade of a transforming property
  (class 2);
* ``PROPERTY_REORDER`` — permute a chain (class 3);
* ``EXTERNAL_CHANGE`` — perturb external data a property depends on
  (class 4).
"""

from __future__ import annotations

import bisect
import enum
import itertools
import json
import random
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import WorkloadError

__all__ = [
    "zipf_indices",
    "TraceEventKind",
    "TraceEvent",
    "TraceSpec",
    "generate_trace",
    "trace_to_jsonl",
    "trace_from_jsonl",
]


def zipf_indices(
    n_items: int, n_samples: int, alpha: float = 0.8, seed: int = 0
) -> list[int]:
    """Sample *n_samples* indices in ``[0, n_items)`` with Zipf(alpha).

    Index 0 is the most popular.  Uses inverse-CDF sampling over the
    finite harmonic weights, so any alpha ≥ 0 works (alpha = 0 is
    uniform).
    """
    if n_items <= 0:
        raise WorkloadError(f"n_items must be positive: {n_items}")
    if alpha < 0:
        raise WorkloadError(f"alpha must be non-negative: {alpha}")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** alpha for rank in range(n_items)]
    cumulative = list(itertools.accumulate(weights))
    total = cumulative[-1]
    return [
        bisect.bisect_left(cumulative, rng.random() * total)
        for _ in range(n_samples)
    ]


class TraceEventKind(enum.Enum):
    """What one trace step does."""

    READ = "read"
    WRITE = "write"
    OUT_OF_BAND_UPDATE = "out-of-band-update"
    PROPERTY_CHANGE = "property-change"
    PROPERTY_REORDER = "property-reorder"
    EXTERNAL_CHANGE = "external-change"


@dataclass
class TraceEvent:
    """One step of a trace."""

    kind: TraceEventKind
    document_index: int
    user_index: int
    #: Virtual milliseconds to advance before executing this event
    #: (inter-arrival gap).
    think_time_ms: float = 0.0
    #: Step-specific detail (e.g. new content seed).
    detail: int = 0


@dataclass
class TraceSpec:
    """Configuration for :func:`generate_trace`."""

    n_events: int = 1000
    n_documents: int = 100
    n_users: int = 1
    zipf_alpha: float = 0.8
    #: Probabilities per event kind; the remainder goes to READ.
    p_write: float = 0.0
    p_out_of_band: float = 0.0
    p_property_change: float = 0.0
    p_property_reorder: float = 0.0
    p_external_change: float = 0.0
    #: Mean think time between events (exponential); 0 disables gaps.
    mean_think_time_ms: float = 0.0
    seed: int = 0

    def mutation_probability(self) -> float:
        """Total probability of non-read events."""
        return (
            self.p_write
            + self.p_out_of_band
            + self.p_property_change
            + self.p_property_reorder
            + self.p_external_change
        )


def generate_trace(spec: TraceSpec) -> Iterator[TraceEvent]:
    """Yield *spec.n_events* trace events deterministically.

    Every event draws its own document (Zipf) and user (uniform), so
    mutations hit popular documents more often — the worst case for
    cache consistency, and the realistic one.
    """
    if spec.mutation_probability() > 1.0 + 1e-9:
        raise WorkloadError("event-kind probabilities exceed 1")
    rng = random.Random(spec.seed)
    documents = zipf_indices(
        spec.n_documents, spec.n_events, spec.zipf_alpha, seed=spec.seed + 1
    )
    kinds_and_probs = [
        (TraceEventKind.WRITE, spec.p_write),
        (TraceEventKind.OUT_OF_BAND_UPDATE, spec.p_out_of_band),
        (TraceEventKind.PROPERTY_CHANGE, spec.p_property_change),
        (TraceEventKind.PROPERTY_REORDER, spec.p_property_reorder),
        (TraceEventKind.EXTERNAL_CHANGE, spec.p_external_change),
    ]
    for step in range(spec.n_events):
        roll = rng.random()
        kind = TraceEventKind.READ
        for candidate, probability in kinds_and_probs:
            if roll < probability:
                kind = candidate
                break
            roll -= probability
        think = (
            rng.expovariate(1.0 / spec.mean_think_time_ms)
            if spec.mean_think_time_ms > 0
            else 0.0
        )
        yield TraceEvent(
            kind=kind,
            document_index=documents[step],
            user_index=rng.randrange(spec.n_users),
            think_time_ms=think,
            detail=rng.randrange(1 << 30),
        )


def trace_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Serialize a trace as JSON lines (one event per line).

    Traces are the reproducibility unit of an experiment: serializing
    them lets a run be archived, diffed and replayed on another machine
    (or another implementation) byte-for-byte.
    """
    lines = []
    for event in events:
        lines.append(
            json.dumps(
                {
                    "kind": event.kind.value,
                    "doc": event.document_index,
                    "user": event.user_index,
                    "think_ms": event.think_time_ms,
                    "detail": event.detail,
                },
                separators=(",", ":"),
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def trace_from_jsonl(text: str) -> list[TraceEvent]:
    """Parse a trace previously serialized by :func:`trace_to_jsonl`."""
    events = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            events.append(
                TraceEvent(
                    kind=TraceEventKind(record["kind"]),
                    document_index=int(record["doc"]),
                    user_index=int(record["user"]),
                    think_time_ms=float(record.get("think_ms", 0.0)),
                    detail=int(record.get("detail", 0)),
                )
            )
        except (KeyError, ValueError, json.JSONDecodeError) as error:
            raise WorkloadError(
                f"bad trace line {line_number}: {error}"
            ) from error
    return events
