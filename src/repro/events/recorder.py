"""Event recorder: observability for property debugging.

Active properties are invisible machinery; when a chain misbehaves the
first question is "what was dispatched, where, in what order?".  The
:class:`EventRecorder` is an infrastructure active property that records
every event dispatched at its attachment point (base or reference) with
timestamps, and renders a readable timeline.  Being infrastructure, its
own attachment never triggers notifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.events.types import Event, EventType
from repro.placeless.properties import ActiveProperty

__all__ = ["RecordedEvent", "EventRecorder"]


@dataclass
class RecordedEvent:
    """One observed dispatch."""

    at_ms: float
    event: Event

    def render(self) -> str:
        """One timeline line."""
        return f"{self.at_ms:10.3f}ms  {self.event.describe()}"


class EventRecorder(ActiveProperty):
    """Records every event dispatched at its attachment point."""

    is_infrastructure = True
    execution_cost_ms = 0.0

    def __init__(
        self,
        watch: set[EventType] | None = None,
        name: str = "event-recorder",
    ) -> None:
        super().__init__(name)
        self.watch = set(watch) if watch else set(EventType)
        self.records: list[RecordedEvent] = []

    def events_of_interest(self) -> set[EventType]:
        return set(self.watch)

    def handle(self, event: Event) -> Any:
        record = RecordedEvent(at_ms=event.at_ms, event=event)
        self.records.append(record)
        return record

    def events_seen(self, event_type: EventType | None = None) -> list[Event]:
        """All recorded events, optionally filtered by type."""
        if event_type is None:
            return [record.event for record in self.records]
        return [
            record.event
            for record in self.records
            if record.event.type is event_type
        ]

    def count(self, event_type: EventType) -> int:
        """How many events of *event_type* were recorded."""
        return len(self.events_seen(event_type))

    def clear(self) -> None:
        """Discard the timeline."""
        self.records.clear()

    def timeline(self) -> str:
        """The readable dispatch timeline."""
        if not self.records:
            return "(no events recorded)"
        return "\n".join(record.render() for record in self.records)
