"""Event vocabulary for the Placeless Documents system.

The paper names ``getInputStream``, ``getOutputStream``, ``modify
property``, ``set property`` and ``timer`` as examples of events active
properties can register for; the prototype additionally needs events for
property removal and re-ordering (both invalidate caches, §3), for content
updates snooped through the system, and for the operations a cache
forwards when a property voted ``CACHEABLE_WITH_EVENTS``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.ids import DocumentId, ReferenceId, UserId

__all__ = ["EventType", "Event"]


class EventType(enum.Enum):
    """Every event kind a property may register for."""

    #: An application asked to read the document's content.  Properties on
    #: this event may interpose a custom input stream (the read path).
    GET_INPUT_STREAM = "get-input-stream"
    #: An application asked to write the document's content.  Properties on
    #: this event may interpose a custom output stream (the write path).
    GET_OUTPUT_STREAM = "get-output-stream"
    #: A new property was attached to the document.
    SET_PROPERTY = "set-property"
    #: An existing property's state/parameters changed (e.g. a spelling
    #: corrector upgraded to a new release).
    MODIFY_PROPERTY = "modify-property"
    #: A property was detached from the document.
    REMOVE_PROPERTY = "remove-property"
    #: The relative order of active properties changed (§3 consistency
    #: class 3: spell-check before vs. after translation differs).
    REORDER_PROPERTIES = "reorder-properties"
    #: A timer subscription fired (drives e.g. nightly replication).
    TIMER = "timer"
    #: Content was updated *through* the Placeless system (in-band); the
    #: system snoops these, unlike out-of-band repository changes.
    CONTENT_UPDATED = "content-updated"
    #: A cache with a ``CACHEABLE_WITH_EVENTS`` entry served a read hit and
    #: forwards the operation so registered properties still observe it,
    #: without the system executing the full read.
    READ_FORWARDED = "read-forwarded"
    #: Same as :attr:`READ_FORWARDED` for writes under a write-back cache.
    WRITE_FORWARDED = "write-forwarded"

    @property
    def is_stream_event(self) -> bool:
        """True for the two events that carry stream interposition."""
        return self in (EventType.GET_INPUT_STREAM, EventType.GET_OUTPUT_STREAM)

    @property
    def is_forwarded(self) -> bool:
        """True for operations forwarded by a cache rather than executed."""
        return self in (EventType.READ_FORWARDED, EventType.WRITE_FORWARDED)


@dataclass
class Event:
    """One occurrence of an event on a document.

    Attributes
    ----------
    type:
        The event kind.
    document_id:
        The base document the event concerns.
    user_id:
        The acting user (owner of the reference the operation came
        through), or ``None`` for events with no acting user (timers,
        out-of-band notifications).
    reference_id:
        The reference the operation came through, when applicable.
    payload:
        Event-kind-specific details (e.g. the property id for property
        mutations, the new order for reorders, byte counts for forwarded
        operations).
    at_ms:
        Virtual time the event was raised.
    """

    type: EventType
    document_id: DocumentId
    user_id: UserId | None = None
    reference_id: ReferenceId | None = None
    payload: dict[str, Any] = field(default_factory=dict)
    at_ms: float = 0.0

    def describe(self) -> str:
        """Human-readable one-line description for traces and logs."""
        who = str(self.user_id) if self.user_id else "<system>"
        return f"{self.type.value} on {self.document_id} by {who} @{self.at_ms:.3f}ms"
