"""Per-attachment-point event registration and ordered dispatch.

Each base document and each document reference owns one
:class:`EventDispatcher`.  When an event occurs, "all registered
properties on that document are invoked" (§2) — in the order the
properties are attached, because §3 makes property *order* a consistency
dimension (spell-check before vs. after translation).

The dispatcher does not know about base-vs-reference ordering; the
document objects compose their two dispatchers in the paper's order
(reads: base first, then reference; writes: reference first, then base).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import UnknownEventError
from repro.events.types import Event, EventType
from repro.ids import PropertyId

__all__ = ["Registration", "EventDispatcher"]

Handler = Callable[[Event], Any]


@dataclass
class Registration:
    """One property's interest in one event type."""

    property_id: PropertyId
    event_type: EventType
    handler: Handler
    active: bool = True

    def cancel(self) -> None:
        """Stop this registration from receiving further events."""
        self.active = False


class EventDispatcher:
    """Ordered event registration table for one attachment point.

    Registrations for each event type are kept in a list whose order
    follows property attachment order; :meth:`reorder` re-sorts every list
    when the owning document's property chain is permuted.
    """

    def __init__(self) -> None:
        self._registrations: dict[EventType, list[Registration]] = {
            event_type: [] for event_type in EventType
        }

    def register(
        self,
        property_id: PropertyId,
        event_type: EventType,
        handler: Handler,
    ) -> Registration:
        """Register *handler* for *event_type* on behalf of a property."""
        if event_type not in self._registrations:
            raise UnknownEventError(event_type)
        registration = Registration(property_id, event_type, handler)
        self._registrations[event_type].append(registration)
        return registration

    def unregister_property(self, property_id: PropertyId) -> int:
        """Drop every registration owned by *property_id*.

        Returns the number of registrations removed.  Called when a
        property is detached from its document.
        """
        removed = 0
        for event_type, registrations in self._registrations.items():
            kept = [r for r in registrations if r.property_id != property_id]
            removed += len(registrations) - len(kept)
            self._registrations[event_type] = kept
        return removed

    def registered_properties(self, event_type: EventType) -> list[PropertyId]:
        """Property ids with live registrations for *event_type*, in order."""
        return [
            r.property_id
            for r in self._registrations[event_type]
            if r.active
        ]

    def has_listener(self, event_type: EventType) -> bool:
        """True if any live registration exists for *event_type*."""
        return any(r.active for r in self._registrations[event_type])

    def reorder(self, chain_order: list[PropertyId]) -> None:
        """Re-sort registrations to follow a new property chain order.

        Properties absent from *chain_order* (e.g. infrastructure handlers
        registered by the system itself) keep their relative order and sort
        after the ordered chain, preserving the invariant that user-visible
        transformations happen in chain order.
        """
        rank = {pid: index for index, pid in enumerate(chain_order)}
        fallback = len(rank)
        for event_type, registrations in self._registrations.items():
            self._registrations[event_type] = sorted(
                registrations,
                key=lambda r: rank.get(r.property_id, fallback),
            )

    def dispatch(self, event: Event) -> list[Any]:
        """Invoke every live handler registered for the event's type.

        Handlers run in registration (chain) order; each handler's return
        value is collected.  Handlers are invoked against a snapshot of the
        registration list, so a handler that registers or cancels
        registrations affects only future dispatches.
        """
        results: list[Any] = []
        for registration in list(self._registrations[event.type]):
            if not registration.active:
                continue
            results.append(registration.handler(event))
        return results
