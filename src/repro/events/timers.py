"""Timer events driven by the virtual clock.

The paper's replication property "is invoked only as a result of timer
events, assuming that Eyal's replication between PARC and Rice occurs only
once at the end of the day".  The :class:`TimerService` lets a property
subscribe to one-shot or periodic timers; when a timer fires, the service
raises a :class:`~repro.events.types.Event` of type ``TIMER`` through the
document's dispatcher so the normal dispatch machinery (including ordering
and cancellation) applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ClockError
from repro.events.types import Event, EventType
from repro.ids import DocumentId, PropertyId
from repro.sim.clock import ScheduledCall, VirtualClock

__all__ = ["TimerSubscription", "TimerService"]


@dataclass
class TimerSubscription:
    """A live timer owned by one property on one document."""

    property_id: PropertyId
    document_id: DocumentId
    period_ms: float | None
    deliver: Callable[[Event], None]
    cancelled: bool = False
    fires: int = 0
    _scheduled: ScheduledCall | None = field(default=None, repr=False)

    def cancel(self) -> None:
        """Stop the timer; a periodic timer will not re-arm."""
        self.cancelled = True
        if self._scheduled is not None:
            self._scheduled.cancel()


class TimerService:
    """Schedules TIMER events for properties on the virtual clock."""

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._subscriptions: list[TimerSubscription] = []

    @property
    def clock(self) -> VirtualClock:
        """The clock driving this service."""
        return self._clock

    def subscribe_once(
        self,
        property_id: PropertyId,
        document_id: DocumentId,
        delay_ms: float,
        deliver: Callable[[Event], None],
    ) -> TimerSubscription:
        """Fire one TIMER event after *delay_ms*."""
        return self._subscribe(property_id, document_id, delay_ms, None, deliver)

    def subscribe_periodic(
        self,
        property_id: PropertyId,
        document_id: DocumentId,
        period_ms: float,
        deliver: Callable[[Event], None],
    ) -> TimerSubscription:
        """Fire a TIMER event every *period_ms* until cancelled."""
        if period_ms <= 0:
            raise ClockError(f"period must be positive: {period_ms}")
        return self._subscribe(
            property_id, document_id, period_ms, period_ms, deliver
        )

    def live_subscriptions(self) -> list[TimerSubscription]:
        """All subscriptions that have not been cancelled."""
        return [s for s in self._subscriptions if not s.cancelled]

    def _subscribe(
        self,
        property_id: PropertyId,
        document_id: DocumentId,
        first_delay_ms: float,
        period_ms: float | None,
        deliver: Callable[[Event], None],
    ) -> TimerSubscription:
        subscription = TimerSubscription(
            property_id=property_id,
            document_id=document_id,
            period_ms=period_ms,
            deliver=deliver,
        )
        self._subscriptions.append(subscription)
        self._arm(subscription, first_delay_ms)
        return subscription

    def _arm(self, subscription: TimerSubscription, delay_ms: float) -> None:
        def fire() -> None:
            if subscription.cancelled:
                return
            subscription.fires += 1
            event = Event(
                type=EventType.TIMER,
                document_id=subscription.document_id,
                payload={"property_id": subscription.property_id},
                at_ms=self._clock.now_ms,
            )
            subscription.deliver(event)
            if subscription.period_ms is not None and not subscription.cancelled:
                self._arm(subscription, subscription.period_ms)

        subscription._scheduled = self._clock.call_after(delay_ms, fire)
