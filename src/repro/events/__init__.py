"""Event system: the vocabulary and dispatch machinery active properties use.

Active properties in Placeless Documents are event driven (§2 of the
paper): they register for events such as ``get_input_stream``,
``get_output_stream``, property mutations and timers, and are invoked when
those events occur on their document.  This package provides:

* :mod:`repro.events.types` — the event vocabulary and payload record;
* :mod:`repro.events.dispatcher` — per-attachment-point registration with
  the paper's dispatch order (reads run base-then-reference, writes run
  reference-then-base);
* :mod:`repro.events.timers` — timer events driven by the virtual clock.
"""

from repro.events.dispatcher import EventDispatcher, Registration
from repro.events.recorder import EventRecorder, RecordedEvent
from repro.events.timers import TimerService, TimerSubscription
from repro.events.types import Event, EventType

__all__ = [
    "Event",
    "EventType",
    "EventDispatcher",
    "Registration",
    "TimerService",
    "TimerSubscription",
    "EventRecorder",
    "RecordedEvent",
]
