"""The Placeless kernel: users, spaces, base documents and routed I/O.

The kernel stands in for the pair of Placeless servers in the paper's
prototype (one serving the user's references, one the base documents).
It owns the simulation context, mints users and documents, and routes
read/write operations while charging the network hops the request
crosses, so that an uncached access pays

    app → reference server → base server → repository

exactly as Table 1's "no cache" column does.

:meth:`PlacelessKernel.read` and :meth:`PlacelessKernel.write` are also
the cache pipeline's backing operations: the read pipeline's fetch stage
calls ``read`` on a miss (the returned
:class:`~repro.placeless.document.PathMeta` feeds the admission vote,
the verifier installation and the replacement cost), and the write
pipeline's interpose/flush stages call ``write``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DocumentNotFoundError, SpaceNotFoundError
from repro.events.timers import TimerService
from repro.ids import DocumentId, UserId
from repro.placeless.document import BaseDocument, PathMeta
from repro.placeless.reference import DocumentReference
from repro.placeless.space import DocumentSpace
from repro.providers.base import BitProvider
from repro.sim.context import SimContext
from repro.streams.chain import drain

__all__ = ["KernelReadOutcome", "KernelStats", "PlacelessKernel"]


@dataclass
class KernelReadOutcome:
    """A fully-drained read: final content plus the path's cache metadata."""

    content: bytes
    meta: PathMeta
    source_size: int
    elapsed_ms: float

    @property
    def size(self) -> int:
        """Size of the content as delivered to the application."""
        return len(self.content)


@dataclass
class KernelStats:
    """Operation counters for reporting."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0


class PlacelessKernel:
    """Top-level façade over the whole middleware."""

    def __init__(self, ctx: SimContext | None = None) -> None:
        self.ctx = ctx or SimContext()
        self.timers = TimerService(self.ctx.clock)
        self.stats = KernelStats()
        self._spaces: dict[UserId, DocumentSpace] = {}
        self._documents: dict[DocumentId, BaseDocument] = {}

    # -- principals ---------------------------------------------------------

    def create_user(self, name: str) -> UserId:
        """Register a user and create their document space."""
        user = self.ctx.ids.user(name)
        self._spaces[user] = DocumentSpace(self.ctx, user)
        return user

    def create_group(self, name: str, members: list[UserId]) -> UserId:
        """Register a group principal with a shared document space.

        §1: document spaces "can be owned by an individual or a group of
        people".  The group gets its own principal id; references in the
        group space are owned by that principal, so all members see the
        same properties — and share the same cached version.
        """
        for member in members:
            self.space(member)  # validate each member exists
        group = self.ctx.ids.user(f"group-{name}")
        self._spaces[group] = DocumentSpace(
            self.ctx, group, members=set(members)
        )
        return group

    def space(self, user: UserId) -> DocumentSpace:
        """The user's document space."""
        try:
            return self._spaces[user]
        except KeyError:
            raise SpaceNotFoundError(user) from None

    def users(self) -> list[UserId]:
        """All registered users."""
        return list(self._spaces)

    # -- documents -----------------------------------------------------------

    def create_document(
        self,
        owner: UserId,
        provider: BitProvider,
        hint: str | None = None,
    ) -> BaseDocument:
        """Create a base document linked to *provider*, owned by *owner*."""
        self.space(owner)  # validate the owner exists
        document_id = self.ctx.ids.document(hint)
        base = BaseDocument(self.ctx, document_id, owner, provider)
        self._documents[document_id] = base
        return base

    def import_document(
        self,
        owner: UserId,
        provider: BitProvider,
        hint: str | None = None,
    ) -> DocumentReference:
        """Create a base document *and* the owner's reference to it."""
        base = self.create_document(owner, provider, hint)
        return self.space(owner).add_reference(base, hint)

    def document(self, document_id: DocumentId) -> BaseDocument:
        """Look up a base document by id."""
        try:
            return self._documents[document_id]
        except KeyError:
            raise DocumentNotFoundError(document_id) from None

    def documents(self) -> list[BaseDocument]:
        """All base documents, in creation order."""
        return list(self._documents.values())

    # -- routed I/O ---------------------------------------------------------------

    def read(self, reference: DocumentReference) -> KernelReadOutcome:
        """Execute a full (uncached) read through the middleware.

        Charges the repository fetch, every active property on the read
        path, and the network hops between application, reference server
        and base server.  Returns the final content together with the
        accumulated caching metadata.
        """
        started_ms = self.ctx.clock.now_ms
        result = reference.open_input()
        content = drain(result.stream)
        for hop in self.ctx.topology.fetch_path():
            self.ctx.charge_hop(hop, len(content))
        self.stats.reads += 1
        self.stats.bytes_read += len(content)
        return KernelReadOutcome(
            content=content,
            meta=result.meta,
            source_size=result.source_size,
            elapsed_ms=self.ctx.clock.now_ms - started_ms,
        )

    def write(self, reference: DocumentReference, content: bytes) -> float:
        """Execute a full write through the middleware; returns elapsed ms."""
        started_ms = self.ctx.clock.now_ms
        result = reference.open_output()
        result.stream.write(content)
        result.stream.close()
        for hop in self.ctx.topology.fetch_path():
            self.ctx.charge_hop(hop, len(content))
        self.stats.writes += 1
        self.stats.bytes_written += len(content)
        return self.ctx.clock.now_ms - started_ms
