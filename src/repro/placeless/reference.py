"""Document references: each user's personal handle to a base document.

"A document reference points to the base document.  Each user of the
document owns a separate document reference." (§2)  Personal properties
attach here and are seen only by the reference's owner.  The reference
orchestrates the full read and write paths, composing the base half in
the paper's order.
"""

from __future__ import annotations

from typing import Any

from repro.events.types import Event, EventType
from repro.ids import ReferenceId, UserId
from repro.placeless.document import (
    BaseDocument,
    PathMeta,
    ReadResult,
    WriteResult,
)
from repro.placeless.properties import AttachmentSite
from repro.placeless.propertyset import PropertyHolder
from repro.sim.context import SimContext
from repro.streams.chain import apply_read_wrapper, apply_write_wrapper

__all__ = ["DocumentReference"]


class DocumentReference(PropertyHolder):
    """One user's reference to a base document, with personal properties."""

    site = AttachmentSite.REFERENCE

    def __init__(
        self,
        ctx: SimContext,
        reference_id: ReferenceId,
        owner: UserId,
        base: BaseDocument,
    ) -> None:
        super().__init__(ctx, owner)
        self.reference_id = reference_id
        self.base = base
        base.register_reference(self)

    @property
    def document_id(self):
        """The base document's id (references share the document id)."""
        return self.base.document_id

    def make_event(
        self,
        event_type: EventType,
        user: UserId | None = None,
        payload: dict[str, Any] | None = None,
    ) -> Event:
        return Event(
            type=event_type,
            document_id=self.base.document_id,
            user_id=user or self.owner,
            reference_id=self.reference_id,
            payload=payload or {},
            at_ms=self.ctx.clock.now_ms,
        )

    # -- read path ----------------------------------------------------------

    def open_input(self) -> ReadResult:
        """Run the full read path and return the application's stream.

        Order per §2: the call is forwarded to the base document, whose
        properties execute first; then this reference's properties
        execute, wrapping their custom input streams outermost so the
        application reads through them last.
        """
        event = self.make_event(EventType.GET_INPUT_STREAM)
        meta = PathMeta()
        stream, source_size = self.base.begin_read(event, meta)
        self.dispatcher.dispatch(event)
        for prop in self.stream_chain(EventType.GET_INPUT_STREAM):
            stream = apply_read_wrapper(self.ctx, prop, stream, event, meta)
        return ReadResult(stream=stream, meta=meta, source_size=source_size)

    def read_content(self) -> bytes:
        """Convenience: run the read path and drain the stream."""
        return self.open_input().read_all()

    # -- write path ----------------------------------------------------------

    def open_output(self) -> WriteResult:
        """Run the full write path and return the application's stream.

        The call forwards to the base document first (its properties are
        *dispatched* there, and their custom output streams sit closest
        to the bit-provider); this reference's custom output streams wrap
        outermost, so they execute first on written content — "custom
        output-streams on the write path are first executed at the
        document reference and then at the base document" (§2).
        """
        event = self.make_event(EventType.GET_OUTPUT_STREAM)
        stream, sink = self.base.begin_write(event)
        self.dispatcher.dispatch(event)
        ref_chain = self.stream_chain(EventType.GET_OUTPUT_STREAM)
        # Within the reference chain, the first property executes first
        # (outermost); wrap in reverse so chain order is execution order.
        for prop in reversed(ref_chain):
            stream = apply_write_wrapper(self.ctx, prop, stream, event)
        return WriteResult(stream=stream, sink=sink)

    def write_content(self, content: bytes) -> None:
        """Convenience: run the write path, write *content*, close."""
        result = self.open_output()
        result.stream.write(content)
        result.stream.close()

    def describe(self) -> str:
        """Human-readable summary for traces."""
        return (
            f"{self.reference_id} -> {self.base.document_id} "
            f"(owner {self.owner}, {len(self._properties)} personal properties)"
        )
