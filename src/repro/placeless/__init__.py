"""The Placeless Documents middleware core.

Implements §2 of the paper: base documents holding the link to content
(via a bit-provider), per-user document references, universal and
personal properties (static or active), per-user document spaces, and the
kernel that routes read/write operations along the paper's paths —

* read path: bit-provider → base-document properties → reference
  properties → application;
* write path: application → reference properties → base-document
  properties → bit-provider.
"""

from repro.placeless.collection import DocumentCollection
from repro.placeless.document import BaseDocument, ReadResult, WriteResult
from repro.placeless.kernel import PlacelessKernel
from repro.placeless.query import (
    HasProperty,
    IsActive,
    NameMatches,
    Predicate,
    PropertyValue,
    Query,
)
from repro.placeless.properties import (
    ActiveProperty,
    AttachmentSite,
    Property,
    StaticProperty,
)
from repro.placeless.reference import DocumentReference
from repro.placeless.space import DocumentSpace

__all__ = [
    "Property",
    "StaticProperty",
    "ActiveProperty",
    "AttachmentSite",
    "BaseDocument",
    "ReadResult",
    "WriteResult",
    "DocumentReference",
    "DocumentSpace",
    "DocumentCollection",
    "PlacelessKernel",
    "Query",
    "HasProperty",
    "PropertyValue",
    "NameMatches",
    "IsActive",
    "Predicate",
]
