"""Property model: static labels and active (code-carrying) properties.

"Properties can be static labels like 'budget related', or active objects
that implement a desired behavior" (§1).  Active properties are event
driven (§2): on attachment they register for the events they care about;
when dispatched on the read or write path they may interpose custom
streams; and for caching (§3) they can vote a cacheability level, return
a verifier, and contribute their execution time to the replacement cost.
"""

from __future__ import annotations

import abc
import enum
import typing
from typing import Any

from repro.cache.cacheability import Cacheability
from repro.cache.verifiers import Verifier
from repro.events.dispatcher import EventDispatcher, Registration
from repro.events.types import Event, EventType
from repro.ids import PropertyId, UserId
from repro.streams.base import InputStream, OutputStream

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.placeless.document import BaseDocument
    from repro.placeless.reference import DocumentReference

__all__ = ["AttachmentSite", "Property", "StaticProperty", "ActiveProperty"]


class AttachmentSite(enum.Enum):
    """Where a property is attached.

    Properties on the base document are *universal* (seen by every user
    with a reference); properties on a reference are *personal* (seen only
    by the reference's owner).
    """

    BASE = "base"
    REFERENCE = "reference"


class Property(abc.ABC):
    """Common behaviour of static and active properties.

    A property instance is attached to at most one document object at a
    time; identity (:class:`~repro.ids.PropertyId`) is assigned at attach
    time by the owning kernel's id generator.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.property_id: PropertyId | None = None
        self.site: AttachmentSite | None = None
        self.owner: UserId | None = None
        self._attachment: "BaseDocument | DocumentReference | None" = None

    @property
    def is_attached(self) -> bool:
        """True while the property is attached to a document object."""
        return self._attachment is not None

    @property
    def attachment(self) -> "BaseDocument | DocumentReference | None":
        """The document object this property is attached to, if any."""
        return self._attachment

    @property
    @abc.abstractmethod
    def is_active(self) -> bool:
        """True for active (code-carrying) properties."""

    def _bind(
        self,
        attachment: "BaseDocument | DocumentReference",
        property_id: PropertyId,
        site: AttachmentSite,
        owner: UserId,
    ) -> None:
        """Called by the document object when the property is attached."""
        self._attachment = attachment
        self.property_id = property_id
        self.site = site
        self.owner = owner

    def _unbind(self) -> None:
        """Called by the document object when the property is detached."""
        self._attachment = None
        self.site = None

    def describe(self) -> str:
        """Human-readable summary for traces."""
        kind = "active" if self.is_active else "static"
        return f"{kind} property {self.name!r} ({self.property_id})"


class StaticProperty(Property):
    """A static label: a statement about the document's context.

    Examples from the paper: ``budget related``, ``1999 workshop
    submission``, ``read by 11/30``.  Static properties carry a value and
    never register for events.
    """

    def __init__(self, name: str, value: Any = True) -> None:
        super().__init__(name)
        self.value = value

    @property
    def is_active(self) -> bool:
        return False


class ActiveProperty(Property):
    """Base class for active properties.

    Subclasses declare the events they want via :meth:`events_of_interest`
    and override the hooks that matter to them:

    * :meth:`handle` — arbitrary event processing;
    * :meth:`wrap_input` / :meth:`wrap_output` — custom stream
      interposition on the read / write path (only consulted when the
      property registered for the corresponding stream event);
    * :meth:`cacheability_vote` — the property's vote, aggregated to the
      most restrictive across the read path;
    * :meth:`make_verifier` — an optional verifier handed to the cache
      along with the content;
    * :attr:`execution_cost_ms` — simulated execution time, charged per
      read-path dispatch and accumulated into the replacement cost.

    ``version`` participates in the transform signature so upgrading a
    property ("If Eyal were to upgrade his spelling corrector to a new
    release") changes the signature and triggers MODIFY_PROPERTY-based
    invalidation.
    """

    #: Simulated execution time per dispatch, in virtual milliseconds.
    execution_cost_ms: float = 0.1

    def __init__(self, name: str, version: int = 1) -> None:
        super().__init__(name)
        self.version = version
        self.dispatch_count = 0
        self._registrations: list[Registration] = []

    @property
    def is_active(self) -> bool:
        return True

    # -- registration ------------------------------------------------------

    def events_of_interest(self) -> set[EventType]:
        """Event types this property registers for (default: none)."""
        return set()

    def register_with(self, dispatcher: EventDispatcher) -> None:
        """Register interest with the attachment point's dispatcher."""
        assert self.property_id is not None, "property must be bound first"
        for event_type in self.events_of_interest():
            registration = dispatcher.register(
                self.property_id, event_type, self._dispatched
            )
            self._registrations.append(registration)

    def cancel_registrations(self) -> None:
        """Cancel every live registration (on detach)."""
        for registration in self._registrations:
            registration.cancel()
        self._registrations.clear()

    def _dispatched(self, event: Event) -> Any:
        self.dispatch_count += 1
        return self.handle(event)

    # -- behaviour hooks -----------------------------------------------------

    def on_attach(self) -> None:
        """Called once after binding and event registration (default: no-op).

        Properties that need infrastructure — e.g. the replication
        property subscribing to a timer — set it up here, reading their
        attachment point from :attr:`attachment`.
        """

    def on_detach(self) -> None:
        """Called just before registrations are cancelled (default: no-op)."""

    def handle(self, event: Event) -> Any:
        """Process one event (default: no-op)."""

    def wrap_input(self, stream: InputStream, event: Event) -> InputStream:
        """Interpose on the read path (default: pass-through)."""
        return stream

    def wrap_output(self, stream: OutputStream, event: Event) -> OutputStream:
        """Interpose on the write path (default: pass-through)."""
        return stream

    # -- caching hooks ---------------------------------------------------------

    def cacheability_vote(self) -> Cacheability | None:
        """This property's cacheability vote, or ``None`` to abstain."""
        return None

    def make_verifier(self) -> Verifier | None:
        """A verifier to hand to the cache, or ``None``."""
        return None

    def requests_pinning(self) -> bool:
        """True when this property asks the cache to pin the entry.

        §5's "always available" QoS requirement: a pinned entry is never
        chosen as a replacement victim.  Default: no pinning.
        """
        return False

    def replacement_cost_bonus_ms(self) -> float:
        """Extra replacement cost this property contributes beyond its
        execution time.

        §5 suggests QoS properties "influence cache replacement ... to
        inflate replacement costs"; they do it through this hook.
        Default: no bonus.
        """
        return 0.0

    #: True when this property transforms content on the read path; used
    #: to decide whether two users' chains produce identical content.
    transforms_reads: bool = False

    def transform_signature(self) -> str | None:
        """Stable identity of this property's read-path transformation.

        ``None`` when the property does not transform reads.  Two chains
        with equal ordered signature lists produce byte-identical content
        from the same source bytes, which is what lets the cache share
        entries between users via content signatures.
        """
        if not self.transforms_reads:
            return None
        return f"{type(self).__name__}/{self.name}/v{self.version}"

    def fingerprint_config(self) -> str:
        """Configuration that affects this property's read-path output.

        Subclasses whose transformation depends on constructor state
        beyond ``name``/``version`` (a target language, a summary
        length, a threshold) return a stable rendering of it here so
        two differently-configured instances of the same class
        fingerprint differently.  Default: no extra configuration.
        """
        return ""

    def fingerprint(self) -> str:
        """Stable identity of this property for chain fingerprinting.

        Covers code identity (the fully-qualified class), the attachment
        name, the release version (so :meth:`upgrade` — the paper's
        MODIFY_PROPERTY case — changes it) and any
        :meth:`fingerprint_config`.  Position in the chain is *not*
        included here; :meth:`ChainFingerprint.compose
        <repro.cache.memo.ChainFingerprint.compose>` tags positions when
        folding, which is what makes reordering observable (invalidation
        class (c)).
        """
        cls = type(self)
        base = f"{cls.__module__}.{cls.__qualname__}/{self.name}/v{self.version}"
        config = self.fingerprint_config()
        return f"{base}?{config}" if config else base

    # -- modification ------------------------------------------------------------

    def upgrade(self, new_version: int | None = None) -> None:
        """Upgrade the property to a new release (a *modification*, §3).

        Bumps the version and raises a MODIFY_PROPERTY event through the
        attachment point so notifiers can invalidate dependent cache
        entries.
        """
        self.version = new_version if new_version is not None else self.version + 1
        if self._attachment is not None:
            self._attachment.property_modified(self)
