"""Property-based document selection — the Placeless organizing idiom.

Placeless's premise is that properties *replace places*: users find
documents by what is stated about them ("budget related", "1999 workshop
submission"), not by where they live.  This module provides the query
combinators that make static properties useful: predicates over a
reference's visible properties (personal ones plus the base document's
universal ones), composable with ``&``, ``|`` and ``~``, evaluated
against a document space.

Queries also feed collections
(:meth:`~repro.placeless.collection.DocumentCollection.from_query`), so
"tailored caching for related documents" composes with property-based
grouping.
"""

from __future__ import annotations

import abc
import fnmatch
from typing import Any, Callable

from repro.placeless.properties import Property, StaticProperty
from repro.placeless.reference import DocumentReference
from repro.placeless.space import DocumentSpace

__all__ = [
    "Query",
    "HasProperty",
    "PropertyValue",
    "NameMatches",
    "IsActive",
    "Predicate",
]


def _visible_properties(reference: DocumentReference) -> list[Property]:
    """The properties a reference's owner sees: personal + universal."""
    return list(reference.properties) + list(reference.base.properties)


class Query(abc.ABC):
    """A composable predicate over document references."""

    @abc.abstractmethod
    def matches(self, reference: DocumentReference) -> bool:
        """True when *reference* satisfies the query."""

    def run(self, space: DocumentSpace) -> list[DocumentReference]:
        """All references in *space* matching this query."""
        return [
            reference
            for reference in space.references()
            if self.matches(reference)
        ]

    def __and__(self, other: "Query") -> "Query":
        return _And(self, other)

    def __or__(self, other: "Query") -> "Query":
        return _Or(self, other)

    def __invert__(self) -> "Query":
        return _Not(self)


class _And(Query):
    """Both sub-queries must match."""

    def __init__(self, left: Query, right: Query) -> None:
        self.left = left
        self.right = right

    def matches(self, reference: DocumentReference) -> bool:
        return self.left.matches(reference) and self.right.matches(reference)


class _Or(Query):
    """Either sub-query may match."""

    def __init__(self, left: Query, right: Query) -> None:
        self.left = left
        self.right = right

    def matches(self, reference: DocumentReference) -> bool:
        return self.left.matches(reference) or self.right.matches(reference)


class _Not(Query):
    """Inverts a sub-query."""

    def __init__(self, inner: Query) -> None:
        self.inner = inner

    def matches(self, reference: DocumentReference) -> bool:
        return not self.inner.matches(reference)


class HasProperty(Query):
    """Matches references carrying a property with this exact name."""

    def __init__(self, name: str) -> None:
        self.name = name

    def matches(self, reference: DocumentReference) -> bool:
        return any(
            prop.name == self.name
            for prop in _visible_properties(reference)
        )


class PropertyValue(Query):
    """Matches references with a static property of this name and value."""

    def __init__(self, name: str, value: Any) -> None:
        self.name = name
        self.value = value

    def matches(self, reference: DocumentReference) -> bool:
        for prop in _visible_properties(reference):
            if (
                isinstance(prop, StaticProperty)
                and prop.name == self.name
                and prop.value == self.value
            ):
                return True
        return False


class NameMatches(Query):
    """Matches references carrying a property whose name fits a glob."""

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern

    def matches(self, reference: DocumentReference) -> bool:
        return any(
            fnmatch.fnmatch(prop.name, self.pattern)
            for prop in _visible_properties(reference)
        )


class IsActive(Query):
    """Matches references with at least one (non-infrastructure) active
    property — i.e. documents with behaviour attached."""

    def matches(self, reference: DocumentReference) -> bool:
        return any(
            prop.is_active and not getattr(prop, "is_infrastructure", False)
            for prop in _visible_properties(reference)
        )


class Predicate(Query):
    """Wraps an arbitrary reference predicate (the escape hatch)."""

    def __init__(
        self, fn: Callable[[DocumentReference], bool], label: str = "predicate"
    ) -> None:
        self.fn = fn
        self.label = label

    def matches(self, reference: DocumentReference) -> bool:
        return self.fn(reference)
