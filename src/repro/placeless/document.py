"""Base documents: the shared link to a document's actual content.

"A base document is the link to the actual content of the document and is
generally owned by either the author of the content or the person or
group that imported the document into the local environment." (§2)

The base document owns the bit-provider, the universal property chain,
and the base half of the read and write paths.  Read/write results carry
the caching metadata §3 requires the read path to accumulate: verifiers,
cacheability votes aggregated to the most restrictive, and the
replacement cost (bit-provider retrieval cost plus each property's
execution time).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field
from typing import Any

from repro.cache.cacheability import Cacheability
from repro.cache.verifiers import Verifier
from repro.content.signature import ContentSignature, sign
from repro.events.types import Event, EventType
from repro.ids import DocumentId, UserId
from repro.placeless.properties import ActiveProperty, AttachmentSite
from repro.placeless.propertyset import PropertyHolder
from repro.providers.base import BitProvider
from repro.sim.context import SimContext
from repro.streams.base import (
    BytesInputStream,
    BytesOutputStream,
    InputStream,
    OutputStream,
)
from repro.streams.chain import apply_read_wrapper, apply_write_wrapper

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.placeless.reference import DocumentReference

__all__ = ["PathMeta", "ReadResult", "WriteResult", "BaseDocument"]


@dataclass
class PathMeta:
    """Caching metadata accumulated while a read path executes.

    §3 (Cache Management): the cache receives, along with the content,
    the consistency verifiers, the aggregated cacheability indicator, and
    the replacement cost built up along the read path.
    """

    verifiers: list[Verifier] = field(default_factory=list)
    votes: list[Cacheability] = field(default_factory=list)
    replacement_cost_ms: float = 0.0
    #: Ordered transform signatures (base chain then reference chain);
    #: equal lists over the same source bytes produce identical content.
    chain_signature: tuple[str, ...] = ()
    #: Number of active properties dispatched along the path.
    properties_executed: int = 0
    #: Signature of the raw source bytes at fetch time; used by the cache
    #: for ground-truth staleness accounting in experiments.
    source_signature: ContentSignature | None = None
    #: True when a property on the path asked for the entry to be pinned
    #: ("always available", §5).
    pin: bool = False
    #: Optional transformers skipped by the containment layer on this
    #: path; any skip marks the served result degraded.
    contained_skips: int = 0
    #: *Required* transformers skipped by the containment layer: the
    #: untransformed result must never be admitted to a cache, so every
    #: access forces a miss to the kernel until the breaker closes.
    contained_required: int = 0

    @property
    def cacheability(self) -> Cacheability:
        """Most restrictive vote along the path."""
        return Cacheability.aggregate(self.votes)

    def absorb_property(self, ctx: SimContext, prop: ActiveProperty) -> None:
        """Charge and record one active property's read-path execution."""
        ctx.charge(prop.execution_cost_ms)
        self.replacement_cost_ms += prop.execution_cost_ms
        self.replacement_cost_ms += prop.replacement_cost_bonus_ms()
        self.properties_executed += 1
        if prop.requests_pinning():
            self.pin = True
        vote = prop.cacheability_vote()
        if vote is not None:
            self.votes.append(vote)
        verifier = prop.make_verifier()
        if verifier is not None:
            self.verifiers.append(verifier)
        signature = prop.transform_signature()
        if signature is not None:
            self.chain_signature = self.chain_signature + (signature,)


@dataclass
class ReadResult:
    """What a completed ``get_input_stream`` call returns.

    The application reads from :attr:`stream`; a cache interposed between
    the application and Placeless additionally consumes :attr:`meta`.
    """

    stream: InputStream
    meta: PathMeta
    source_size: int

    def read_all(self) -> bytes:
        """Drain and close the stream (convenience)."""
        try:
            return self.stream.read(-1)
        finally:
            self.stream.close()


@dataclass
class WriteResult:
    """What a completed ``get_output_stream`` call returns.

    The application writes into :attr:`stream` and closes it; closing
    flushes the custom-stream chain down to the bit-provider.
    """

    stream: OutputStream
    #: Sink that can report what reached the repository, for tests.
    sink: "_ProviderSink"


class _ProviderSink(BytesOutputStream):
    """Terminal output stream: on close, stores the bytes in-band.

    The store itself raises CONTENT_UPDATED through the base document's
    dispatcher (via the provider's snoop listeners), which is how
    Placeless "can snoop on all update operations" made through it (§3).
    """

    def __init__(self, document: "BaseDocument", event: Event) -> None:
        super().__init__()
        self._document = document
        self._event = event
        self.stored = False

    def _on_close(self) -> None:
        self._document.provider.store(self.getvalue())
        self.stored = True


class BaseDocument(PropertyHolder):
    """The shared per-document object holding provider + universal chain."""

    site = AttachmentSite.BASE

    def __init__(
        self,
        ctx: SimContext,
        document_id: DocumentId,
        owner: UserId,
        provider: BitProvider,
    ) -> None:
        super().__init__(ctx, owner)
        self.document_id = document_id
        self.provider = provider
        self._references: list["DocumentReference"] = []
        # Snoop in-band stores: every store through the provider raises
        # CONTENT_UPDATED on this document.
        provider.on_update(self._content_updated)

    # -- event construction ---------------------------------------------------

    def make_event(
        self,
        event_type: EventType,
        user: UserId | None = None,
        payload: dict[str, Any] | None = None,
    ) -> Event:
        return Event(
            type=event_type,
            document_id=self.document_id,
            user_id=user,
            payload=payload or {},
            at_ms=self.ctx.clock.now_ms,
        )

    # -- reference bookkeeping ---------------------------------------------------

    def register_reference(self, reference: "DocumentReference") -> None:
        """Record a new reference pointing at this base document."""
        self._references.append(reference)

    def unregister_reference(self, reference: "DocumentReference") -> None:
        """Forget a dropped reference."""
        if reference in self._references:
            self._references.remove(reference)

    @property
    def references(self) -> list["DocumentReference"]:
        """All live references to this base document."""
        return list(self._references)

    # -- read path (base half) ------------------------------------------------

    def begin_read(self, event: Event, meta: PathMeta) -> tuple[InputStream, int]:
        """Fetch content and run the base half of the read path.

        Dispatches GET_INPUT_STREAM on the universal chain, fetches from
        the bit-provider (charging repository latency and seeding the
        replacement cost), then wraps the raw stream with the universal
        chain's custom input streams — "first at the base document" (§2).
        Returns the stream after base-side wrapping plus the raw size.
        """
        self.dispatcher.dispatch(event)
        fetch = self.provider.fetch()
        meta.source_signature = sign(fetch.content)
        meta.replacement_cost_ms += fetch.retrieval_cost_ms
        meta.votes.append(fetch.cacheability)
        if fetch.verifier is not None:
            meta.verifiers.append(fetch.verifier)
        stream: InputStream = BytesInputStream(fetch.content)
        for prop in self.stream_chain(EventType.GET_INPUT_STREAM):
            stream = apply_read_wrapper(self.ctx, prop, stream, event, meta)
        return stream, len(fetch.content)

    # -- write path (base half) ------------------------------------------------

    def begin_write(self, event: Event) -> tuple[OutputStream, "_ProviderSink"]:
        """Open the provider sink and run the base half of the write path.

        Dispatches GET_OUTPUT_STREAM on the universal chain (the paper's
        versioning property runs here, snapshotting the old content
        before it is overwritten), then wraps the provider sink with the
        universal chain's custom output streams — they execute *after*
        the reference's, so they sit innermost, closest to the provider.
        """
        self.dispatcher.dispatch(event)
        sink = _ProviderSink(self, event)
        stream: OutputStream = sink
        # Base wrappers execute last on the write path, hence are applied
        # innermost; within the base chain, chain order is preserved by
        # wrapping in reverse.
        base_chain = self.stream_chain(EventType.GET_OUTPUT_STREAM)
        for prop in reversed(base_chain):
            stream = apply_write_wrapper(self.ctx, prop, stream, event)
        return stream, sink

    # -- change snooping -----------------------------------------------------------

    def _content_updated(self, content: bytes) -> None:
        event = self.make_event(
            EventType.CONTENT_UPDATED,
            payload={"size": len(content)},
        )
        self.dispatcher.dispatch(event)

    def describe(self) -> str:
        """Human-readable summary for traces."""
        return (
            f"{self.document_id} (owner {self.owner}, "
            f"{len(self._properties)} universal properties, "
            f"{len(self._references)} references)"
        )
