"""Shared property-holding behaviour of base documents and references.

Both attachment points manage an *ordered* chain of properties — order is
semantically significant (§3: "the result of applying a spell checking
property to a document varies whether it is applied before or after a
language translation property") — and both raise property-lifecycle
events (SET / MODIFY / REMOVE / REORDER) through their dispatcher so
notifier properties can observe them.
"""

from __future__ import annotations

import abc
from typing import Any, Iterator

from repro.errors import (
    DuplicatePropertyError,
    PropertyNotFoundError,
    PropertyOrderError,
)
from repro.events.dispatcher import EventDispatcher
from repro.events.types import Event, EventType
from repro.ids import PropertyId, UserId
from repro.placeless.properties import ActiveProperty, AttachmentSite, Property
from repro.sim.context import SimContext

__all__ = ["PropertyHolder"]


class PropertyHolder(abc.ABC):
    """Ordered property chain + lifecycle-event plumbing."""

    site: AttachmentSite

    def __init__(self, ctx: SimContext, owner: UserId) -> None:
        self.ctx = ctx
        self.owner = owner
        self.dispatcher = EventDispatcher()
        self._properties: list[Property] = []

    # -- event construction (site-specific) ---------------------------------

    @abc.abstractmethod
    def make_event(
        self,
        event_type: EventType,
        user: UserId | None = None,
        payload: dict[str, Any] | None = None,
    ) -> Event:
        """Build an event carrying this attachment point's identifiers."""

    # -- chain access ----------------------------------------------------------

    @property
    def properties(self) -> list[Property]:
        """The property chain, in attachment (execution) order."""
        return list(self._properties)

    def active_properties(self) -> list[ActiveProperty]:
        """Only the active properties, in chain order."""
        return [p for p in self._properties if isinstance(p, ActiveProperty)]

    def find_property(self, name: str) -> Property:
        """First property named *name*; raises if absent."""
        for prop in self._properties:
            if prop.name == name:
                return prop
        raise PropertyNotFoundError(name)

    def has_property(self, name: str) -> bool:
        """True if any attached property is named *name*."""
        return any(p.name == name for p in self._properties)

    def __iter__(self) -> Iterator[Property]:
        return iter(self._properties)

    def __len__(self) -> int:
        return len(self._properties)

    # -- chain mutation ----------------------------------------------------------

    def attach(self, prop: Property, acting_user: UserId | None = None) -> Property:
        """Attach *prop* at the end of the chain.

        Raises SET_PROPERTY through the dispatcher after registration so
        notifiers (including ones attached earlier) observe the addition.
        """
        if prop.is_attached:
            raise DuplicatePropertyError(
                f"{prop.name!r} is already attached elsewhere"
            )
        property_id = self.ctx.ids.property(prop.name)
        prop._bind(self, property_id, self.site, acting_user or self.owner)
        self._properties.append(prop)
        # Announce the addition to the *previously* registered properties
        # before registering the newcomer, so a property does not observe
        # its own attachment (mirroring removal, where the property is
        # unregistered before REMOVE_PROPERTY is raised).
        self.dispatcher.dispatch(
            self.make_event(
                EventType.SET_PROPERTY,
                user=acting_user or self.owner,
                payload=self._property_payload(prop),
            )
        )
        if isinstance(prop, ActiveProperty):
            prop.register_with(self.dispatcher)
            prop.on_attach()
        return prop

    @staticmethod
    def _property_payload(prop: Property) -> dict[str, Any]:
        """Event payload describing a property, for notifier filtering.

        Notifiers only invalidate for "additions or deletions of active
        properties that could modify the content" (§3), so the payload
        carries whether the property is active, whether it transforms
        reads, and whether it is cache infrastructure (notifiers
        themselves must not trigger each other).
        """
        return {
            "property_id": prop.property_id,
            "name": prop.name,
            "is_active": prop.is_active,
            "transforms_reads": getattr(prop, "transforms_reads", False),
            "infrastructure": getattr(prop, "is_infrastructure", False),
        }

    def detach(self, prop: Property, acting_user: UserId | None = None) -> None:
        """Detach *prop*, cancelling its registrations.

        Raises REMOVE_PROPERTY *after* the removal (with the property no
        longer registered), so the remover does not observe its own event.
        """
        if prop not in self._properties:
            raise PropertyNotFoundError(prop.name)
        self._properties.remove(prop)
        if isinstance(prop, ActiveProperty):
            prop.on_detach()
            prop.cancel_registrations()
            self.dispatcher.unregister_property(prop.property_id)
        payload = self._property_payload(prop)
        prop._unbind()
        self.dispatcher.dispatch(
            self.make_event(
                EventType.REMOVE_PROPERTY,
                user=acting_user or self.owner,
                payload=payload,
            )
        )

    def detach_by_name(self, name: str, acting_user: UserId | None = None) -> None:
        """Detach the first property named *name*."""
        self.detach(self.find_property(name), acting_user)

    def reorder(
        self,
        new_order: list[PropertyId],
        acting_user: UserId | None = None,
    ) -> None:
        """Permute the property chain to *new_order* (a full permutation).

        Dispatch order of every registered handler follows, and a
        REORDER_PROPERTIES event is raised (§3 consistency class 3).
        """
        current = {p.property_id: p for p in self._properties}
        if set(new_order) != set(current) or len(new_order) != len(current):
            raise PropertyOrderError(
                "new order must be a permutation of the attached properties"
            )
        old_order = [p.property_id for p in self._properties]
        self._properties = [current[pid] for pid in new_order]
        self.dispatcher.reorder(new_order)
        self.dispatcher.dispatch(
            self.make_event(
                EventType.REORDER_PROPERTIES,
                user=acting_user or self.owner,
                payload={"old_order": old_order, "new_order": list(new_order)},
            )
        )

    def property_modified(self, prop: Property) -> None:
        """Raise MODIFY_PROPERTY for *prop* (e.g. after an upgrade)."""
        self.dispatcher.dispatch(
            self.make_event(
                EventType.MODIFY_PROPERTY,
                user=prop.owner,
                payload=self._property_payload(prop),
            )
        )

    # -- read/write path helpers --------------------------------------------

    def stream_chain(self, event_type: EventType) -> list[ActiveProperty]:
        """Active properties registered for a stream event, in chain order.

        These are the properties whose custom streams join the calling
        chain for that operation.
        """
        registered = set(self.dispatcher.registered_properties(event_type))
        return [
            p for p in self.active_properties() if p.property_id in registered
        ]
