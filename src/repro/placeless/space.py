"""Document spaces: the per-user component managing references.

"The API actually does not contain calls directly on document references
or base documents, but instead on document spaces, which are the system
components that manage base documents and document references on a
per-user basis." (§2, footnote 3)

A space owns every reference its user holds and offers lookup by
reference id and by the referenced document id.
"""

from __future__ import annotations

from repro.errors import ReferenceNotFoundError
from repro.ids import DocumentId, ReferenceId, UserId
from repro.placeless.document import BaseDocument
from repro.placeless.reference import DocumentReference
from repro.sim.context import SimContext

__all__ = ["DocumentSpace"]


class DocumentSpace:
    """All of one principal's document references.

    "The scope of a property applies to a document within a document
    space that can be owned by an individual or a group of people." (§1)
    A space owned by a group principal carries the member set; properties
    attached to the group's references are seen by every member, and a
    cache entry for a group reference is shared by the whole group (the
    entry key is the group principal).
    """

    def __init__(
        self,
        ctx: SimContext,
        owner: UserId,
        members: set[UserId] | None = None,
    ) -> None:
        self.ctx = ctx
        self.owner = owner
        #: For group spaces, the human members; an individual's space has
        #: exactly themselves.
        self.members: set[UserId] = set(members) if members else {owner}
        self._references: dict[ReferenceId, DocumentReference] = {}

    @property
    def is_group(self) -> bool:
        """True when this space is owned by a group principal."""
        return self.members != {self.owner}

    def is_member(self, user: UserId) -> bool:
        """True if *user* may act through this space."""
        return user == self.owner or user in self.members

    def add_member(self, user: UserId) -> None:
        """Add a user to a group space."""
        self.members.add(user)

    def remove_member(self, user: UserId) -> None:
        """Remove a user from a group space (no-op if absent)."""
        self.members.discard(user)

    def add_reference(
        self, base: BaseDocument, hint: str | None = None
    ) -> DocumentReference:
        """Create a new reference to *base* owned by this space's user."""
        reference_id = self.ctx.ids.reference(hint or base.document_id.value)
        reference = DocumentReference(self.ctx, reference_id, self.owner, base)
        self._references[reference_id] = reference
        return reference

    def drop_reference(self, reference_id: ReferenceId) -> None:
        """Remove a reference from this space (the base document remains)."""
        reference = self.get(reference_id)
        reference.base.unregister_reference(reference)
        del self._references[reference_id]

    def get(self, reference_id: ReferenceId) -> DocumentReference:
        """Look up a reference by id."""
        try:
            return self._references[reference_id]
        except KeyError:
            raise ReferenceNotFoundError(reference_id) from None

    def reference_for_document(self, document_id: DocumentId) -> DocumentReference:
        """This user's reference to *document_id* (first if several)."""
        for reference in self._references.values():
            if reference.base.document_id == document_id:
                return reference
        raise ReferenceNotFoundError(document_id)

    def has_reference_to(self, document_id: DocumentId) -> bool:
        """True if this space holds a reference to *document_id*."""
        return any(
            r.base.document_id == document_id
            for r in self._references.values()
        )

    def references(self) -> list[DocumentReference]:
        """All references in this space."""
        return list(self._references.values())

    def __len__(self) -> int:
        return len(self._references)
