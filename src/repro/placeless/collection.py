"""Document collections: groups of related documents.

§5 closes with: "mechanisms that tailor caching for related documents
(e.g., contained in a collection) have not been investigated."  We
implement the obvious candidate mechanism — collection-aware prefetch —
on top of this grouping primitive.  A collection belongs to one user and
groups that user's references; Placeless collections were themselves
property-based, so membership here can also be derived from a property
name (every reference carrying e.g. ``project-x`` joins).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import PlacelessError
from repro.ids import DocumentId, UserId
from repro.placeless.reference import DocumentReference
from repro.placeless.space import DocumentSpace

__all__ = ["DocumentCollection"]


class DocumentCollection:
    """A named group of one user's document references."""

    def __init__(self, name: str, owner: UserId) -> None:
        self.name = name
        self.owner = owner
        self._members: list[DocumentReference] = []

    def add(self, reference: DocumentReference) -> None:
        """Add a reference (must belong to the collection's owner)."""
        if reference.owner != self.owner:
            raise PlacelessError(
                f"reference {reference.reference_id} belongs to "
                f"{reference.owner}, not {self.owner}"
            )
        if reference not in self._members:
            self._members.append(reference)

    def remove(self, reference: DocumentReference) -> None:
        """Remove a member (no-op if absent)."""
        if reference in self._members:
            self._members.remove(reference)

    def members(self) -> list[DocumentReference]:
        """All member references, in insertion order."""
        return list(self._members)

    def siblings_of(self, reference: DocumentReference) -> list[DocumentReference]:
        """Every member except *reference* itself."""
        return [member for member in self._members if member is not reference]

    def document_ids(self) -> set[DocumentId]:
        """The base-document ids of all members."""
        return {member.base.document_id for member in self._members}

    def __contains__(self, reference: DocumentReference) -> bool:
        return reference in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[DocumentReference]:
        return iter(self._members)

    @classmethod
    def from_property(
        cls, name: str, space: DocumentSpace, property_name: str
    ) -> "DocumentCollection":
        """Collect every reference in *space* carrying *property_name*.

        Mirrors how Placeless itself forms collections: membership is a
        statement made by properties, not an explicit list.
        """
        collection = cls(name, space.owner)
        for reference in space.references():
            if reference.has_property(property_name):
                collection.add(reference)
        return collection

    @classmethod
    def from_query(
        cls, name: str, space: DocumentSpace, query
    ) -> "DocumentCollection":
        """Collect every reference in *space* matching a
        :class:`~repro.placeless.query.Query`."""
        collection = cls(name, space.owner)
        for reference in query.run(space):
            collection.add(reference)
        return collection
