"""Exception hierarchy for the Placeless Documents reproduction.

Every error raised by the library derives from :class:`PlacelessError` so
applications can catch library failures with a single ``except`` clause
while still being able to discriminate the common failure modes the paper's
design implies (unknown documents, revoked references, property faults,
cache-consistency violations, provider I/O problems).
"""

from __future__ import annotations

__all__ = [
    "PlacelessError",
    "DocumentNotFoundError",
    "ReferenceNotFoundError",
    "SpaceNotFoundError",
    "PropertyError",
    "PropertyNotFoundError",
    "PropertyOrderError",
    "DuplicatePropertyError",
    "ProviderError",
    "ContentUnavailableError",
    "RepositoryOfflineError",
    "StreamError",
    "StreamClosedError",
    "EventError",
    "UnknownEventError",
    "CacheError",
    "CacheEntryNotFoundError",
    "StorageError",
    "UncacheableContentError",
    "CacheCapacityError",
    "VerifierError",
    "NotifierError",
    "NotificationLostError",
    "LeaseExpiredError",
    "ContainmentError",
    "CircuitOpenError",
    "BudgetExceededError",
    "DeadlineExceededError",
    "OverloadShedError",
    "PermissionDeniedError",
    "NFSError",
    "BadFileHandleError",
    "ClockError",
    "SchedulerError",
    "WorkloadError",
]


class PlacelessError(Exception):
    """Base class for every error raised by this library."""


class DocumentNotFoundError(PlacelessError, KeyError):
    """A base document id did not resolve to a live base document."""


class ReferenceNotFoundError(PlacelessError, KeyError):
    """A document reference id did not resolve within a document space."""


class SpaceNotFoundError(PlacelessError, KeyError):
    """A user's document space is not registered with the kernel."""


class PropertyError(PlacelessError):
    """Base class for property-related failures."""


class PropertyNotFoundError(PropertyError, KeyError):
    """Lookup of a property by name/id failed."""


class PropertyOrderError(PropertyError):
    """An invalid reordering of a property chain was requested."""


class DuplicatePropertyError(PropertyError):
    """A property with the same id is already attached to the document."""


class ProviderError(PlacelessError):
    """Base class for bit-provider failures."""


class ContentUnavailableError(ProviderError):
    """The bit-provider could not produce content for the document."""


class RepositoryOfflineError(ProviderError):
    """The simulated repository is offline / unreachable."""


class StreamError(PlacelessError):
    """Base class for stream failures."""


class StreamClosedError(StreamError, ValueError):
    """An operation was attempted on a closed stream."""


class EventError(PlacelessError):
    """Base class for event-dispatch failures."""


class UnknownEventError(EventError, KeyError):
    """An event type outside the registered vocabulary was raised."""


class CacheError(PlacelessError):
    """Base class for cache failures."""


class CacheEntryNotFoundError(CacheError, KeyError):
    """A (document, user) pair has no entry in the cache."""


class StorageError(CacheError):
    """The durable L2 tier could not complete a disk operation.

    Raised by the storage layer on checksum mismatches, unknown
    signatures and injected disk faults.  The L2 tier itself converts
    these into storage-breaker failures and L1-only fallbacks — the
    error escapes only through the direct :mod:`repro.storage` APIs,
    never through a cache read.
    """


class UncacheableContentError(CacheError):
    """An attempt was made to insert content voted UNCACHEABLE."""


class CacheCapacityError(CacheError):
    """An object larger than the entire cache capacity was inserted."""


class VerifierError(CacheError):
    """A verifier failed while validating a cache entry.

    The paper's design treats a *failing* verifier (one that raises, as
    opposed to one that returns ``False``) as an invalid entry, so the
    manager converts this error into a conservative invalidation.
    """


class NotifierError(CacheError):
    """A notifier could not deliver an invalidation."""


class NotificationLostError(NotifierError):
    """The invalidation channel lost at least one notification.

    Raised at the bus seam when receiver-side gap detection (sequence
    numbers on a leased channel) proves that a pushed invalidation never
    arrived — the paper's lost-callback problem made *detectable*.  The
    recovery layer converts it into an anti-entropy resync rather than
    letting the cache serve stale transformed content forever.
    """


class LeaseExpiredError(CacheError):
    """A notifier-channel lease lapsed before it was renewed.

    Raised at the lease seam when the cache could not renew its
    registration within the lease term (e.g. a network partition blocked
    the renewal).  A lapsed lease means pushed invalidations can no
    longer be trusted to have arrived; the holder must resync against
    server state before trusting its entries again.
    """


class ContainmentError(CacheError):
    """Base class for containment-layer refusals.

    Raised when the containment layer (circuit breakers + execution
    budgets around property code) decides an access cannot be served —
    the *deny* fallback — rather than silently degrading it.
    """


class CircuitOpenError(ContainmentError):
    """A circuit breaker is open and the policy's fallback is *deny*.

    The (document, code-site) pair has failed repeatedly; until the
    probation delay elapses and a half-open probe succeeds, accesses
    that cannot be served without the broken property are refused with
    this typed error instead of running the misbehaving code again.
    """


class BudgetExceededError(ContainmentError):
    """A property invocation exceeded its execution budget.

    Budgets cap each invocation's virtual-ms cost and the bytes it may
    stream; property code that runs away past either cap is aborted
    with this error, which the containment guard converts into a
    breaker failure plus the configured fallback.
    """


class DeadlineExceededError(CacheError):
    """A read's end-to-end deadline budget ran out mid-pipeline.

    The paper's QoS property promises a maximum access time per
    document; the overload layer turns that promise into a
    :class:`~repro.overload.DeadlineBudget` carried through the read
    context and charged at every expensive seam (fetch, chain
    execution, retry backoff, single-flight follower wait, shard hop).
    When the budget is exhausted before the bytes are ready, the
    pipeline raises this error *into* the existing degradation ladder
    — a bounded-stale serve is preferred to a late answer — and only
    sheds the read when no acceptable stale copy exists.
    """


class OverloadShedError(CacheError):
    """An admission controller refused a read to protect goodput.

    Raised before any pipeline work happens when the token-bucket /
    sojourn gate decides the system is past saturation and this read's
    priority class (derived from the chain's QoS property) is the one
    to sacrifice.  A shed read did zero fetch or chain work — the
    whole point is that rejecting it early keeps the reads that *are*
    admitted inside their deadlines.
    """


class PermissionDeniedError(PlacelessError):
    """The acting user does not own the reference or base document."""


class NFSError(PlacelessError):
    """Base class for the NFS translation-layer failures."""


class BadFileHandleError(NFSError, KeyError):
    """A file handle is unknown or already closed."""


class ClockError(PlacelessError):
    """Misuse of the virtual clock (e.g. scheduling in the past)."""


class SchedulerError(PlacelessError):
    """Misuse of a read-path scheduler (e.g. waiting on a flight from
    the sequential scheduler, or nesting an async batch inside a
    running event loop)."""


class WorkloadError(PlacelessError):
    """A workload/trace generator was configured inconsistently."""
