"""Composite bit-provider: documents composed of multiple sources.

"Verifiers can also serve documents that are composed of multiple
sources, like news summaries constructed from several web sites; in that
case, verifiers can check the consistency of each of the sources." (§3)

The composite fetches every part, combines them with a composer function
(default: concatenation with part headers), charges the sum of the parts'
repository costs, returns a :class:`CompositeVerifier` over the parts'
verifiers, and aggregates the parts' cacheability votes to the most
restrictive — a news summary with one live part is uncacheable.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.cache.cacheability import Cacheability
from repro.cache.verifiers import CompositeVerifier, Verifier
from repro.errors import ProviderError
from repro.providers.base import BitProvider, ProviderFetch
from repro.sim.context import SimContext

__all__ = ["CompositeProvider"]

Composer = Callable[[Sequence[bytes]], bytes]


def _default_composer(parts: Sequence[bytes]) -> bytes:
    sections = []
    for index, part in enumerate(parts):
        sections.append(f"=== source {index} ===\n".encode() + part)
    return b"\n".join(sections)


class CompositeProvider(BitProvider):
    """Combines the content of several child providers into one document."""

    repository_name = "memory"  # composition itself is local

    def __init__(
        self,
        ctx: SimContext,
        parts: Sequence[BitProvider],
        composer: Composer | None = None,
    ) -> None:
        super().__init__(ctx)
        if not parts:
            raise ProviderError("composite provider needs at least one part")
        self.parts = list(parts)
        self._composer = composer or _default_composer

    def fetch(self) -> ProviderFetch:
        """Fetch every part (each charging its own repository latency)."""
        fetches = [part.fetch() for part in self.parts]
        content = self._composer([f.content for f in fetches])
        self.fetch_count += 1
        part_verifiers = [f.verifier for f in fetches if f.verifier is not None]
        verifier: Verifier | None = None
        if part_verifiers:
            verifier = CompositeVerifier(part_verifiers)
        return ProviderFetch(
            content=content,
            verifier=verifier,
            retrieval_cost_ms=sum(f.retrieval_cost_ms for f in fetches),
            cacheability=Cacheability.aggregate(f.cacheability for f in fetches),
        )

    def make_verifier(self) -> Verifier | None:
        """Composite over the parts' fresh verifiers."""
        part_verifiers = [
            v for v in (part.make_verifier() for part in self.parts) if v
        ]
        if not part_verifiers:
            return None
        return CompositeVerifier(part_verifiers)

    def estimated_retrieval_cost_ms(self) -> float:
        return sum(part.estimated_retrieval_cost_ms() for part in self.parts)

    def _retrieve(self) -> bytes:
        return self._composer([part.peek() for part in self.parts])

    def _store(self, content: bytes) -> None:
        raise ProviderError("a composed document cannot be written directly")
