"""Live-feed bit-provider: content changes on every access.

"properties that change the content of the document or the bit provider
may deem a document uncacheable if the retrieved content changes each
time it is accessed, e.g., its source is live video" (§3).  The provider
synthesizes a fresh frame from the virtual clock (and a frame counter)
per retrieval and votes :attr:`Cacheability.UNCACHEABLE`.
"""

from __future__ import annotations

from typing import Callable

from repro.cache.cacheability import Cacheability
from repro.cache.verifiers import AlwaysInvalidVerifier, Verifier
from repro.errors import ProviderError
from repro.providers.base import BitProvider
from repro.sim.context import SimContext

__all__ = ["LiveFeedProvider"]


def _default_frame(now_ms: float, frame_number: int) -> bytes:
    header = f"FRAME {frame_number} @ {now_ms:.3f}ms\n".encode()
    # A deterministic "video" payload whose bytes differ per frame.
    body = bytes((frame_number + offset) % 256 for offset in range(1024))
    return header + body


class LiveFeedProvider(BitProvider):
    """Synthesizes a new frame each retrieval; uncacheable by design."""

    repository_name = "live"

    def __init__(
        self,
        ctx: SimContext,
        frame_source: Callable[[float, int], bytes] | None = None,
    ) -> None:
        super().__init__(ctx)
        self._frame_source = frame_source or _default_frame
        self._frame_number = 0

    @property
    def frames_served(self) -> int:
        """How many frames have been synthesized so far."""
        return self._frame_number

    def cacheability(self) -> Cacheability:
        return Cacheability.UNCACHEABLE

    def make_verifier(self) -> Verifier:
        """Defensive: even if cached in error, every hit invalidates."""
        return AlwaysInvalidVerifier()

    def _retrieve(self) -> bytes:
        self._frame_number += 1
        return self._frame_source(self.ctx.clock.now_ms, self._frame_number)

    def _store(self, content: bytes) -> None:
        raise ProviderError("a live feed cannot be written")
