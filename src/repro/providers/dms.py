"""Document-management-system bit-provider.

Section 1 lists "document management systems (DMS)" among the content
sources Placeless attaches properties to.  The simulated DMS is a
versioned repository with checkout/checkin semantics: every checkin
creates an immutable new version; the provider serves the head version
and its verifier probes the head version number, so both in-band and
out-of-band checkins are caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.verifiers import ModificationTimeVerifier, Verifier
from repro.errors import ContentUnavailableError, ProviderError
from repro.providers.base import BitProvider
from repro.sim.clock import VirtualClock
from repro.sim.context import SimContext

__all__ = ["DocumentManagementSystem", "DMSProvider"]


@dataclass
class _DmsItem:
    """One managed document: immutable version history plus lock state."""

    versions: list[bytes] = field(default_factory=list)
    checkin_times_ms: list[float] = field(default_factory=list)
    locked_by: str | None = None


@dataclass
class DocumentManagementSystem:
    """A versioned repository with exclusive checkout locks."""

    clock: VirtualClock
    _items: dict[str, _DmsItem] = field(default_factory=dict)

    def create(self, name: str, content: bytes) -> None:
        """Register a new managed document with an initial version."""
        if name in self._items:
            raise ProviderError(f"document already managed: {name}")
        item = _DmsItem()
        item.versions.append(bytes(content))
        item.checkin_times_ms.append(self.clock.now_ms)
        self._items[name] = item

    def head(self, name: str) -> bytes:
        """Content of the newest version."""
        return self._item(name).versions[-1]

    def head_version(self, name: str) -> int:
        """1-based version number of the newest version."""
        return len(self._item(name).versions)

    def version(self, name: str, number: int) -> bytes:
        """Content of a specific (1-based) version."""
        item = self._item(name)
        if not 1 <= number <= len(item.versions):
            raise ContentUnavailableError(
                f"{name} has no version {number}"
            )
        return item.versions[number - 1]

    def checkout(self, name: str, who: str) -> bytes:
        """Take the exclusive edit lock and return the head content."""
        item = self._item(name)
        if item.locked_by is not None and item.locked_by != who:
            raise ProviderError(
                f"{name} is checked out by {item.locked_by}"
            )
        item.locked_by = who
        return item.versions[-1]

    def checkin(self, name: str, who: str, content: bytes) -> int:
        """Create a new version and release the lock; returns its number."""
        item = self._item(name)
        if item.locked_by is not None and item.locked_by != who:
            raise ProviderError(
                f"{name} is checked out by {item.locked_by}"
            )
        item.versions.append(bytes(content))
        item.checkin_times_ms.append(self.clock.now_ms)
        item.locked_by = None
        return len(item.versions)

    def documents(self) -> list[str]:
        """All managed document names, sorted."""
        return sorted(self._items)

    def _item(self, name: str) -> _DmsItem:
        try:
            return self._items[name]
        except KeyError:
            raise ContentUnavailableError(
                f"not managed by DMS: {name}"
            ) from None


class DMSProvider(BitProvider):
    """Serves the head version of one DMS-managed document.

    In-band stores check in a new version under a system principal; the
    verifier probes the head version number.
    """

    repository_name = "dms"

    def __init__(
        self,
        ctx: SimContext,
        dms: DocumentManagementSystem,
        name: str,
        principal: str = "placeless",
    ) -> None:
        super().__init__(ctx)
        self.dms = dms
        self.name = name
        self.principal = principal

    def make_verifier(self) -> Verifier:
        return ModificationTimeVerifier(
            probe=lambda: float(self.dms.head_version(self.name)),
            observed_mtime_ms=float(self.dms.head_version(self.name)),
            cost_ms=0.4,
        )

    def _retrieve(self) -> bytes:
        return self.dms.head(self.name)

    def _store(self, content: bytes) -> None:
        self.dms.checkout(self.name, self.principal)
        self.dms.checkin(self.name, self.principal, content)
