"""File system bit-provider (the paper's NFS-client provider).

"The bit-provider, in this case an NFS client, opens the corresponding
file for writing and returns the handle to the base document." (§2)

Fetches read the file from a :class:`~repro.providers.simfs.SimulatedFileSystem`;
the verifier polls the file's last-modification time exactly as §3's
example: "The bit-provider for the file corresponding to the paper draft
returns a verifier that polls the last-modification time of the file."
"""

from __future__ import annotations

from repro.cache.verifiers import ModificationTimeVerifier, Verifier
from repro.providers.base import BitProvider
from repro.providers.simfs import SimulatedFileSystem
from repro.sim.context import SimContext

__all__ = ["FileSystemProvider"]


class FileSystemProvider(BitProvider):
    """Serves one file from a simulated NFS filer."""

    repository_name = "nfs"

    def __init__(
        self,
        ctx: SimContext,
        filesystem: SimulatedFileSystem,
        path: str,
        verifier_poll_cost_ms: float = 0.5,
    ) -> None:
        super().__init__(ctx)
        self.filesystem = filesystem
        self.path = path
        self._verifier_poll_cost_ms = verifier_poll_cost_ms

    def make_verifier(self) -> Verifier:
        """An mtime-polling verifier snapshotting the current mtime."""
        return ModificationTimeVerifier(
            probe=lambda: self.filesystem.mtime_ms(self.path),
            observed_mtime_ms=self.filesystem.mtime_ms(self.path),
            cost_ms=self._verifier_poll_cost_ms,
        )

    def _retrieve(self) -> bytes:
        return self.filesystem.read(self.path)

    def _store(self, content: bytes) -> None:
        self.filesystem.write(self.path, content)
