"""In-process memory bit-provider.

The simplest provider: content lives in the provider object itself.  Used
for documents created directly inside Placeless and heavily in tests.
Its verifier is a generation check — every store bumps a generation
counter, so out-of-band mutations are still detectable.
"""

from __future__ import annotations

from repro.cache.verifiers import ModificationTimeVerifier, Verifier
from repro.providers.base import BitProvider
from repro.sim.context import SimContext

__all__ = ["MemoryProvider"]


class MemoryProvider(BitProvider):
    """Holds content in memory; the cheapest repository in the model."""

    repository_name = "memory"

    def __init__(self, ctx: SimContext, content: bytes = b"") -> None:
        super().__init__(ctx)
        self._content = bytes(content)
        self._generation = 0

    @property
    def generation(self) -> int:
        """Monotone store counter, used as a pseudo-mtime."""
        return self._generation

    def make_verifier(self) -> Verifier:
        return ModificationTimeVerifier(
            probe=lambda: float(self._generation),
            observed_mtime_ms=float(self._generation),
            cost_ms=0.01,
        )

    def _retrieve(self) -> bytes:
        return self._content

    def _store(self, content: bytes) -> None:
        self._content = content
        self._generation += 1
