"""E-mail bit-providers: an append-only repository family.

§1 lists mail servers among the content sources Placeless unifies.  Mail
has a consistency model the other repositories don't exercise:

* an individual **message** is immutable once delivered — the perfect
  cache citizen, verified trivially;
* a **mailbox digest** (the folder listing an inbox view renders) changes
  every time new mail arrives — an append-only source whose verifier
  probes the message count.

New mail is delivered by the outside world (out-of-band by definition);
only verifiers can catch a stale digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.verifiers import (
    AlwaysValidVerifier,
    ModificationTimeVerifier,
    Verifier,
)
from repro.errors import ContentUnavailableError, ProviderError
from repro.providers.base import BitProvider
from repro.sim.clock import VirtualClock
from repro.sim.context import SimContext

__all__ = ["Message", "MailServer", "MessageProvider", "MailboxDigestProvider"]


@dataclass(frozen=True)
class Message:
    """One immutable delivered message."""

    uid: int
    sender: str
    subject: str
    body: bytes
    received_ms: float

    def render(self) -> bytes:
        """RFC-822-ish rendering served as document content."""
        header = (
            f"From: {self.sender}\n"
            f"Subject: {self.subject}\n"
            f"Date: {self.received_ms:.0f}ms\n\n"
        )
        return header.encode() + self.body


@dataclass
class MailServer:
    """A simulated mail store: named mailboxes of append-only messages."""

    clock: VirtualClock
    _mailboxes: dict[str, list[Message]] = field(default_factory=dict)
    _next_uid: int = 1

    def deliver(
        self, mailbox: str, sender: str, subject: str, body: bytes
    ) -> Message:
        """Deliver new mail (an out-of-band event by nature)."""
        message = Message(
            uid=self._next_uid,
            sender=sender,
            subject=subject,
            body=bytes(body),
            received_ms=self.clock.now_ms,
        )
        self._next_uid += 1
        self._mailboxes.setdefault(mailbox, []).append(message)
        return message

    def messages(self, mailbox: str) -> list[Message]:
        """All messages in *mailbox*, oldest first."""
        return list(self._mailboxes.get(mailbox, []))

    def message(self, mailbox: str, uid: int) -> Message:
        """Look up one message by uid."""
        for candidate in self._mailboxes.get(mailbox, []):
            if candidate.uid == uid:
                return candidate
        raise ContentUnavailableError(f"no message {uid} in {mailbox}")

    def count(self, mailbox: str) -> int:
        """Number of messages in *mailbox*."""
        return len(self._mailboxes.get(mailbox, []))

    def digest(self, mailbox: str) -> bytes:
        """The folder listing: one line per message."""
        lines = [f"Mailbox: {mailbox}"]
        for message in self._mailboxes.get(mailbox, []):
            lines.append(
                f"{message.uid:5d}  {message.sender:<24} {message.subject}"
            )
        return ("\n".join(lines) + "\n").encode()


class MessageProvider(BitProvider):
    """Serves one immutable message."""

    repository_name = "mail"

    def __init__(
        self, ctx: SimContext, server: MailServer, mailbox: str, uid: int
    ) -> None:
        super().__init__(ctx)
        self.server = server
        self.mailbox = mailbox
        self.uid = uid

    def make_verifier(self) -> Verifier:
        """Messages never change; the entry is valid forever."""
        return AlwaysValidVerifier()

    def _retrieve(self) -> bytes:
        return self.server.message(self.mailbox, self.uid).render()

    def _store(self, content: bytes) -> None:
        raise ProviderError("delivered messages are immutable")


class MailboxDigestProvider(BitProvider):
    """Serves a mailbox's folder listing; stale once new mail arrives."""

    repository_name = "mail"

    def __init__(
        self, ctx: SimContext, server: MailServer, mailbox: str
    ) -> None:
        super().__init__(ctx)
        self.server = server
        self.mailbox = mailbox

    def make_verifier(self) -> Verifier:
        return ModificationTimeVerifier(
            probe=lambda: float(self.server.count(self.mailbox)),
            observed_mtime_ms=float(self.server.count(self.mailbox)),
            cost_ms=0.3,
        )

    def _retrieve(self) -> bytes:
        return self.server.digest(self.mailbox)

    def _store(self, content: bytes) -> None:
        raise ProviderError("a mailbox digest is derived, not writable")
