"""The bit-provider protocol.

A bit-provider is the active property that retrieves (and stores) a base
document's actual content.  For caching (§3) a fetch additionally yields:

* a **verifier** for the original source ("the bit-provider will most
  likely return a verifier for the original source of the document");
* the **retrieval cost**, which seeds the replacement cost the cache's
  Greedy-Dual-Size policy uses ("this value is initialized with the cost
  determined by the bit-provider to retrieve the original content from the
  storage repository");
* a **cacheability vote** (a live video source votes UNCACHEABLE).

Providers distinguish *in-band* stores (through Placeless, snoopable) from
*out-of-band* mutations (directly at the repository, invisible to
Placeless until a verifier catches them) — the dual update model of §3.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

from repro.cache.cacheability import Cacheability
from repro.cache.verifiers import Verifier
from repro.content.signature import ContentSignature, sign
from repro.sim.context import SimContext
from repro.streams.base import BytesInputStream, InputStream

__all__ = ["ProviderFetch", "BitProvider"]


@dataclass
class ProviderFetch:
    """Everything one content retrieval yields."""

    content: bytes
    verifier: Verifier | None
    retrieval_cost_ms: float
    cacheability: Cacheability = Cacheability.UNRESTRICTED

    @property
    def size(self) -> int:
        """Size of the fetched content in bytes."""
        return len(self.content)


class BitProvider(abc.ABC):
    """Base class for all bit-providers.

    Subclasses implement :meth:`_retrieve` (bytes currently at the
    repository), :meth:`_store` (write bytes to the repository in-band)
    and :meth:`make_verifier`.  The base class handles latency charging
    and fetch bookkeeping.
    """

    #: Name in the latency model's repository table.
    repository_name: str = "memory"

    def __init__(self, ctx: SimContext) -> None:
        self.ctx = ctx
        self.fetch_count = 0
        self.store_count = 0
        #: Identity-keyed single-slot memo for :meth:`peek_signature`.
        self._signature_memo: "tuple[bytes, ContentSignature] | None" = None
        #: Callbacks invoked after each in-band store, used by the kernel
        #: to snoop content updates (§3 consistency class 1, in-band).
        self._update_listeners: list[Callable[[bytes], None]] = []

    # -- content retrieval -------------------------------------------------

    def fetch(self) -> ProviderFetch:
        """Retrieve the current content, charging repository latency.

        When the context carries a :class:`~repro.faults.plan.FaultPlan`
        the fetch is gated through it first: scheduled outage windows
        raise :class:`~repro.errors.RepositoryOfflineError`, probability
        draws raise :class:`~repro.errors.ContentUnavailableError`.
        """
        if self.ctx.faults is not None:
            self.ctx.faults.check_fetch(self.repository_name)
        content = self._retrieve()
        cost = self.ctx.charge_repository(self.repository_name, len(content))
        self.fetch_count += 1
        return ProviderFetch(
            content=content,
            verifier=self.make_verifier(),
            retrieval_cost_ms=cost,
            cacheability=self.cacheability(),
        )

    def open_input(self) -> InputStream:
        """A stream over a fresh fetch (convenience for the read path)."""
        return BytesInputStream(self.fetch().content)

    def peek(self) -> bytes:
        """Current content *without* charging latency or counting a fetch.

        For assertions in tests and for verifier probes whose cost is
        accounted via the verifier's own ``cost_ms``.
        """
        return self._retrieve()

    def peek_signature(self) -> "ContentSignature":
        """Signature of the current content, without charging latency.

        Staleness probes (write-back ``is_stale``, the transform memo's
        source check) call this once per read; re-hashing an unchanged
        blob each time dominates the probe cost at churn-workload rates.
        Every concrete provider returns the *same bytes object* until the
        repository content is replaced, so a single-slot memo keyed on
        the object's identity is exact: mutation swaps in a new bytes
        object and misses the memo.
        """
        content = self._retrieve()
        memo = self._signature_memo
        if memo is not None and memo[0] is content:
            return memo[1]
        signature = sign(content)
        self._signature_memo = (content, signature)
        return signature

    # -- content storage ---------------------------------------------------

    def store(self, content: bytes) -> float:
        """Write *content* in-band (through Placeless); returns the cost.

        In-band stores are snoopable: every registered update listener is
        invoked, which is how notifier properties learn about updates made
        through the system.

        An offline repository rejects writes too: fault-plan outage
        windows raise before anything is stored, which is what write-back
        flush retries exercise.
        """
        if self.ctx.faults is not None:
            self.ctx.faults.check_store(self.repository_name)
        cost = self.ctx.charge_repository(self.repository_name, len(content))
        self._store(bytes(content))
        self.store_count += 1
        for listener in list(self._update_listeners):
            listener(content)
        return cost

    def mutate_out_of_band(self, content: bytes) -> None:
        """Change the repository content *behind Placeless's back*.

        Models "updates to pages at a web-site or applications interacting
        with files directly through a file system" (§3): no snooping, no
        latency charged to the requesting client, only a verifier can
        detect the change.
        """
        self._store(bytes(content))

    def on_update(self, listener: Callable[[bytes], None]) -> None:
        """Register a snoop callback for in-band stores."""
        self._update_listeners.append(listener)

    # -- caching metadata ----------------------------------------------------

    def cacheability(self) -> Cacheability:
        """This provider's cacheability vote (default: unrestricted)."""
        return Cacheability.UNRESTRICTED

    def estimated_retrieval_cost_ms(self) -> float:
        """Cost of refetching the current content, without charging it.

        Replacement policies use this to value entries whose content is
        already cached.
        """
        return self.ctx.latency.repository_cost_ms(
            self.repository_name, len(self._retrieve())
        )

    @abc.abstractmethod
    def make_verifier(self) -> Verifier | None:
        """A verifier for the original source, or ``None`` if unverifiable."""

    # -- repository access (subclass responsibility) -------------------------

    @abc.abstractmethod
    def _retrieve(self) -> bytes:
        """Bytes currently held by the repository."""

    @abc.abstractmethod
    def _store(self, content: bytes) -> None:
        """Replace the repository's bytes."""
