"""Bit-providers: the active properties that link documents to content.

"A special active property on the base document, called the bit-provider,
is responsible for retrieving the actual content from its repository."
(§2)  Documents in Placeless originate "from arbitrary content sources:
file systems, the World Wide Web, e-mail servers, document management
systems, live video feeds, etc." (§1) — so this package implements one
provider per repository family, each over a *simulated* repository
substrate (we have no 1999 PARC testbed):

* :class:`MemoryProvider` — trivial in-process bytes;
* :class:`FileSystemProvider` over :class:`SimulatedFileSystem` — the NFS
  filer, with out-of-band mutation and mtime-probing verifiers;
* :class:`WebProvider` over :class:`WebOrigin` — HTTP-ish origin with
  per-page TTLs and TTL verifiers;
* :class:`LiveFeedProvider` — content changes every access; uncacheable;
* :class:`CompositeProvider` — multi-source documents (news summaries)
  with composite verifiers;
* :class:`DMSProvider` over :class:`DocumentManagementSystem` — versioned
  repository with checkout/checkin and version-probing verifiers;
* :class:`MessageProvider` / :class:`MailboxDigestProvider` over
  :class:`MailServer` — the mail family: immutable messages and
  append-only folder digests.
"""

from repro.providers.base import BitProvider, ProviderFetch
from repro.providers.composite import CompositeProvider
from repro.providers.dms import DMSProvider, DocumentManagementSystem
from repro.providers.filesystem import FileSystemProvider
from repro.providers.live import LiveFeedProvider
from repro.providers.mail import (
    MailboxDigestProvider,
    MailServer,
    Message,
    MessageProvider,
)
from repro.providers.memory import MemoryProvider
from repro.providers.simfs import FileRecord, SimulatedFileSystem
from repro.providers.web import PageRecord, WebOrigin, WebProvider

__all__ = [
    "BitProvider",
    "ProviderFetch",
    "MemoryProvider",
    "SimulatedFileSystem",
    "FileRecord",
    "FileSystemProvider",
    "WebOrigin",
    "PageRecord",
    "WebProvider",
    "LiveFeedProvider",
    "CompositeProvider",
    "DocumentManagementSystem",
    "DMSProvider",
    "MailServer",
    "Message",
    "MessageProvider",
    "MailboxDigestProvider",
]
