"""A small simulated hierarchical file system (the "NFS filer").

The paper's prototype serves file content through an NFS client
bit-provider; its verifier "polls the last-modification time of the
file".  This module provides the filer those pieces need: a hierarchical
namespace of files with contents and virtual-clock mtimes, supporting
reads, writes, renames, deletion and directory listing, plus *direct*
writes that model applications "interacting with files directly through a
file system" (out-of-band, §3).

Paths are POSIX-style (``/papers/hotos.doc``); directories are created
implicitly on write, like most object stores, but can also be created and
listed explicitly so NFS-façade tests can exercise directory semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ContentUnavailableError, ProviderError
from repro.sim.clock import VirtualClock

__all__ = ["FileRecord", "SimulatedFileSystem"]


@dataclass
class FileRecord:
    """One file's state."""

    content: bytes
    mtime_ms: float
    ctime_ms: float
    writes: int = 0

    @property
    def size(self) -> int:
        """Current size in bytes."""
        return len(self.content)


def _normalize(path: str) -> str:
    """Canonicalize a path: leading slash, no duplicate or trailing slashes."""
    parts = [p for p in path.split("/") if p]
    if not parts:
        raise ProviderError(f"invalid path: {path!r}")
    return "/" + "/".join(parts)


def _parent(path: str) -> str:
    head, _, _ = path.rpartition("/")
    return head or "/"


@dataclass
class SimulatedFileSystem:
    """An in-memory filer with virtual-clock timestamps."""

    clock: VirtualClock
    _files: dict[str, FileRecord] = field(default_factory=dict)
    _directories: set[str] = field(default_factory=lambda: {"/"})

    # -- namespace -----------------------------------------------------------

    def mkdir(self, path: str) -> None:
        """Create directory *path* (and any missing ancestors)."""
        if path == "/" or path == "":
            return
        path = _normalize(path)
        while path != "/":
            self._directories.add(path)
            path = _parent(path)

    def exists(self, path: str) -> bool:
        """True if *path* names a file."""
        return _normalize(path) in self._files

    def is_dir(self, path: str) -> bool:
        """True if *path* names a directory."""
        try:
            return _normalize(path) in self._directories
        except ProviderError:
            return path == "/"

    def listdir(self, path: str) -> list[str]:
        """Immediate children (files and directories) of directory *path*."""
        path = "/" if path == "/" else _normalize(path)
        if path != "/" and path not in self._directories:
            raise ContentUnavailableError(f"no such directory: {path}")
        prefix = path if path.endswith("/") else path + "/"
        children = set()
        for name in list(self._files) + list(self._directories):
            if name != path and name.startswith(prefix):
                remainder = name[len(prefix):]
                children.add(remainder.split("/", 1)[0])
        return sorted(children)

    # -- file content ----------------------------------------------------------

    def write(self, path: str, content: bytes) -> None:
        """Create or replace the file at *path*, updating its mtime."""
        path = _normalize(path)
        self.mkdir(_parent(path))
        now = self.clock.now_ms
        record = self._files.get(path)
        if record is None:
            self._files[path] = FileRecord(
                content=bytes(content), mtime_ms=now, ctime_ms=now, writes=1
            )
        else:
            record.content = bytes(content)
            record.mtime_ms = now
            record.writes += 1

    def append(self, path: str, content: bytes) -> None:
        """Append to the file at *path* (created if missing)."""
        existing = self._files.get(_normalize(path))
        base = existing.content if existing else b""
        self.write(path, base + bytes(content))

    def read(self, path: str) -> bytes:
        """Content of the file at *path*."""
        return self._record(path).content

    def stat(self, path: str) -> FileRecord:
        """The file's record (content, mtime, ctime, write count)."""
        return self._record(path)

    def mtime_ms(self, path: str) -> float:
        """Last-modification virtual time of the file at *path*."""
        return self._record(path).mtime_ms

    def remove(self, path: str) -> None:
        """Delete the file at *path*."""
        path = _normalize(path)
        if path not in self._files:
            raise ContentUnavailableError(f"no such file: {path}")
        del self._files[path]

    def rename(self, old: str, new: str) -> None:
        """Move a file, preserving its record (mtime included)."""
        old = _normalize(old)
        new = _normalize(new)
        if old not in self._files:
            raise ContentUnavailableError(f"no such file: {old}")
        self.mkdir(_parent(new))
        self._files[new] = self._files.pop(old)

    def files(self) -> list[str]:
        """All file paths, sorted."""
        return sorted(self._files)

    @property
    def total_bytes(self) -> int:
        """Total bytes stored across all files."""
        return sum(r.size for r in self._files.values())

    def _record(self, path: str) -> FileRecord:
        path = _normalize(path)
        try:
            return self._files[path]
        except KeyError:
            raise ContentUnavailableError(f"no such file: {path}") from None
