"""Web bit-provider over a simulated HTTP origin.

Table 1's documents come from ``parcweb`` (the PARC intranet server) and
``www`` hosts; §3 notes "web-servers so far manage consistency only based
on a time-to-live (TTL) invalidation scheme", and the dual update model
(HTTP PUT vs. pages changing behind the server's back) is called out
explicitly.  The simulated origin models exactly those pieces: pages with
content, a per-page TTL, and a last-modified timestamp; PUTs through the
provider are in-band, author edits at the origin are out-of-band.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.verifiers import TTLVerifier, Verifier
from repro.errors import ContentUnavailableError
from repro.providers.base import BitProvider
from repro.sim.clock import VirtualClock
from repro.sim.context import SimContext

__all__ = ["PageRecord", "WebOrigin", "WebProvider"]

#: Default TTL an origin assigns when a page declares none (1 minute, a
#: common 1999 proxy heuristic).
DEFAULT_TTL_MS = 60_000.0


@dataclass
class PageRecord:
    """One page's state at the origin."""

    content: bytes
    ttl_ms: float
    last_modified_ms: float
    gets: int = 0
    puts: int = 0

    @property
    def size(self) -> int:
        """Current page size in bytes."""
        return len(self.content)


@dataclass
class WebOrigin:
    """A simulated HTTP origin server hosting pages by URL path."""

    clock: VirtualClock
    host: str = "www"
    _pages: dict[str, PageRecord] = field(default_factory=dict)

    def publish(
        self, url: str, content: bytes, ttl_ms: float = DEFAULT_TTL_MS
    ) -> None:
        """Create or replace a page (an authoring-side, out-of-band act)."""
        existing = self._pages.get(url)
        if existing is None:
            self._pages[url] = PageRecord(
                content=bytes(content),
                ttl_ms=ttl_ms,
                last_modified_ms=self.clock.now_ms,
            )
        else:
            existing.content = bytes(content)
            existing.ttl_ms = ttl_ms
            existing.last_modified_ms = self.clock.now_ms

    def get(self, url: str) -> PageRecord:
        """HTTP GET: the page record (caller reads content and TTL)."""
        record = self._page(url)
        record.gets += 1
        return record

    def put(self, url: str, content: bytes) -> None:
        """HTTP PUT: replace page content, refreshing last-modified."""
        record = self._pages.get(url)
        if record is None:
            self.publish(url, content)
            record = self._pages[url]
        else:
            record.content = bytes(content)
            record.last_modified_ms = self.clock.now_ms
        record.puts += 1

    def author_edit(self, url: str, content: bytes) -> None:
        """Change a page without an HTTP request (out-of-band update)."""
        record = self._page(url)
        record.content = bytes(content)
        record.last_modified_ms = self.clock.now_ms

    def urls(self) -> list[str]:
        """All published URL paths, sorted."""
        return sorted(self._pages)

    def _page(self, url: str) -> PageRecord:
        try:
            return self._pages[url]
        except KeyError:
            raise ContentUnavailableError(
                f"404 at {self.host}: {url}"
            ) from None


class WebProvider(BitProvider):
    """Serves one URL from a :class:`WebOrigin`.

    The verifier implements "the TTL timeout as specified in the HTTP
    response" (§3): it is issued at fetch time with the page's TTL.
    """

    def __init__(self, ctx: SimContext, origin: WebOrigin, url: str) -> None:
        super().__init__(ctx)
        self.origin = origin
        self.url = url

    @property
    def repository_name(self) -> str:  # type: ignore[override]
        """The latency-table entry is the origin host (parcweb vs. www)."""
        return self.origin.host

    def make_verifier(self) -> Verifier:
        record = self.origin.get(self.url)
        return TTLVerifier(
            issued_ms=self.ctx.clock.now_ms,
            ttl_ms=record.ttl_ms,
        )

    def _retrieve(self) -> bytes:
        return self.origin.get(self.url).content

    def _store(self, content: bytes) -> None:
        self.origin.put(self.url, content)
