"""Typed identifiers for documents, references, users, properties and caches.

The Placeless Documents design distinguishes several id namespaces:

* a **base document** is the single shared object linking to content;
* each user holds their own **document reference** to a base document;
* **users** own document spaces;
* **properties** are identified within the document they are attached to;
* **caches** must be addressable so notifiers can deliver invalidations.

Using distinct frozen-dataclass types (rather than bare strings) keeps
the id spaces from being confused — a reference id can never be passed
where a document id is expected without the type being visible at the call
site — while remaining hashable, comparable and cheap.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "DocumentId",
    "ReferenceId",
    "UserId",
    "PropertyId",
    "CacheId",
    "VersionId",
    "IdGenerator",
]


@dataclass(frozen=True)
class DocumentId:
    """Identity of a base document, unique across the kernel."""

    value: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"doc:{self.value}"


@dataclass(frozen=True)
class ReferenceId:
    """Identity of one user's reference to a base document."""

    value: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"ref:{self.value}"


@dataclass(frozen=True)
class UserId:
    """Identity of a user (owner of a document space)."""

    value: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"user:{self.value}"


@dataclass(frozen=True)
class PropertyId:
    """Identity of a property attachment.

    Two attachments of the "same" property class to different documents get
    distinct :class:`PropertyId` values; identity follows the attachment,
    not the class, because the paper lets the same behaviour be attached
    many times with different parameters.
    """

    value: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"prop:{self.value}"


@dataclass(frozen=True)
class CacheId:
    """Identity of a cache instance, used as a notifier delivery address."""

    value: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"cache:{self.value}"


@dataclass(frozen=True)
class VersionId:
    """Identity of a saved document version (the versioning property)."""

    value: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"version:{self.value}"


class IdGenerator:
    """Deterministic id factory.

    All ids in a simulation come from one generator so runs are exactly
    reproducible; ids embed a per-namespace monotone counter and an
    optional human-readable hint (``doc:7-hotos.doc``) which makes traces
    and cache dumps legible.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Iterator[int]] = {}

    def _next(self, namespace: str) -> int:
        counter = self._counters.get(namespace)
        if counter is None:
            counter = itertools.count(1)
            self._counters[namespace] = counter
        return next(counter)

    def _make(self, namespace: str, hint: str | None) -> str:
        serial = self._next(namespace)
        if hint:
            return f"{serial}-{hint}"
        return str(serial)

    def document(self, hint: str | None = None) -> DocumentId:
        """Mint a new :class:`DocumentId`."""
        return DocumentId(self._make("document", hint))

    def reference(self, hint: str | None = None) -> ReferenceId:
        """Mint a new :class:`ReferenceId`."""
        return ReferenceId(self._make("reference", hint))

    def user(self, hint: str | None = None) -> UserId:
        """Mint a new :class:`UserId`."""
        return UserId(self._make("user", hint))

    def property(self, hint: str | None = None) -> PropertyId:
        """Mint a new :class:`PropertyId`."""
        return PropertyId(self._make("property", hint))

    def cache(self, hint: str | None = None) -> CacheId:
        """Mint a new :class:`CacheId`."""
        return CacheId(self._make("cache", hint))

    def version(self, hint: str | None = None) -> VersionId:
        """Mint a new :class:`VersionId`."""
        return VersionId(self._make("version", hint))
