"""MD5 content signatures.

The paper proposes MD5 hashes as the content signatures cache entries
indirect through; we use MD5 for fidelity (the digest choice only needs
to be collision-resistant enough to identify identical bytes in a cache,
not cryptographically current).
"""

from __future__ import annotations

import hashlib
from typing import NamedTuple

__all__ = ["ContentSignature", "sign"]


class ContentSignature(NamedTuple):
    """An MD5 digest identifying a particular byte string."""

    digest: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"md5:{self.digest}"

    @property
    def short(self) -> str:
        """First 8 hex digits, for human-readable cache dumps."""
        return self.digest[:8]


def sign(content: bytes) -> ContentSignature:
    """Compute the :class:`ContentSignature` of *content*."""
    return ContentSignature(hashlib.md5(content).hexdigest())
