"""Reference-counted content-addressed store backing the cache.

The cache's per-(document, user) entries hold a
:class:`~repro.content.signature.ContentSignature`; the bytes themselves
live here, stored once per distinct signature.  "On a cache miss for an
already cached version of the same content, only the document and user
identifier mapping to the content signature needs to be established" (§3)
— :meth:`ContentStore.put` of already-present bytes only bumps a
reference count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.content.signature import ContentSignature, sign
from repro.errors import CacheEntryNotFoundError

__all__ = ["StoredContent", "ContentStore"]


@dataclass
class StoredContent:
    """One distinct byte string held by the store."""

    signature: ContentSignature
    content: bytes
    refcount: int = 0

    @property
    def size(self) -> int:
        """Size of the stored bytes."""
        return len(self.content)


class ContentStore:
    """Deduplicating byte store with reference counting.

    ``logical_bytes`` counts what a store *without* signature indirection
    would hold (one copy per referencing entry); ``physical_bytes`` counts
    what this store actually holds.  The A3 sharing benchmark reports the
    ratio.
    """

    def __init__(self) -> None:
        self._by_signature: dict[ContentSignature, StoredContent] = {}
        # Maintained incrementally: at 10^6 entries the naive sum() over
        # every stored blob turns each capacity check into a full scan.
        self._physical_bytes = 0
        self._logical_bytes = 0

    def put(self, content: bytes) -> ContentSignature:
        """Store *content* (or bump its refcount) and return its signature."""
        signature = sign(content)
        stored = self._by_signature.get(signature)
        if stored is None:
            stored = StoredContent(signature=signature, content=bytes(content))
            self._by_signature[signature] = stored
            self._physical_bytes += stored.size
        stored.refcount += 1
        self._logical_bytes += stored.size
        return signature

    def put_signed(
        self, content: bytes, signature: ContentSignature
    ) -> ContentSignature:
        """:meth:`put`, with a signature the caller already computed.

        The admission path signs fetched bytes once and feeds the same
        signature to both the store and the transform memo; re-hashing
        here would double the per-fill digest work.  The caller's
        promise that ``signature == sign(content)`` is checked under
        ``__debug__`` only (run ``python -O`` for the production path).
        """
        assert signature == sign(content), (
            f"put_signed: signature {signature.short} does not match "
            "the supplied content"
        )
        stored = self._by_signature.get(signature)
        if stored is None:
            stored = StoredContent(signature=signature, content=bytes(content))
            self._by_signature[signature] = stored
            self._physical_bytes += stored.size
        stored.refcount += 1
        self._logical_bytes += stored.size
        return signature

    def adopt(self, signature: ContentSignature) -> None:
        """Add a reference to already-stored content (signature-only hit)."""
        stored = self._entry(signature)
        stored.refcount += 1
        self._logical_bytes += stored.size

    def get(self, signature: ContentSignature) -> bytes:
        """Bytes for *signature*; raises if not present."""
        return self._entry(signature).content

    def size_of(self, signature: ContentSignature) -> int:
        """Size in bytes of the content behind *signature*."""
        return self._entry(signature).size

    def refcount(self, signature: ContentSignature) -> int:
        """Current reference count of *signature* (0 if absent)."""
        stored = self._by_signature.get(signature)
        return 0 if stored is None else stored.refcount

    def release(self, signature: ContentSignature) -> None:
        """Drop one reference; content is evicted at refcount zero."""
        stored = self._entry(signature)
        stored.refcount -= 1
        self._logical_bytes -= stored.size
        if stored.refcount <= 0:
            del self._by_signature[signature]
            self._physical_bytes -= stored.size

    def __contains__(self, signature: ContentSignature) -> bool:
        return signature in self._by_signature

    def __len__(self) -> int:
        return len(self._by_signature)

    @property
    def physical_bytes(self) -> int:
        """Bytes actually held (one copy per distinct signature)."""
        return self._physical_bytes

    @property
    def logical_bytes(self) -> int:
        """Bytes a non-deduplicating store would hold (refcount-weighted)."""
        return self._logical_bytes

    def _entry(self, signature: ContentSignature) -> StoredContent:
        try:
            return self._by_signature[signature]
        except KeyError:
            raise CacheEntryNotFoundError(signature) from None
