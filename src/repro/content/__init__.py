"""Content signatures and the content-addressed store.

Section 3 (Cache Management): cache entries map a ``(document, user)``
pair to a *content signature* ("e.g., MD5 hash") which in turn maps to the
actual content, so identical transformed content is stored once even when
several users' entries point at it.
"""

from repro.content.signature import ContentSignature, sign
from repro.content.store import ContentStore, StoredContent

__all__ = ["ContentSignature", "sign", "ContentStore", "StoredContent"]
