"""Shared cache state and entry-table mechanics for the staged pipeline.

:class:`CacheCore` is the hub every pipeline stage holds: the entry
table, the content store, the replacement/admission/degradation
policies, the topology, the instrumentation bus and the invalidation
bus.  It owns the *mechanics* that several stages share — fill, drop,
evict, content replacement, event forwarding — while the per-stage
*logic* (verifier gating, adoption scanning, fetch/degradation,
admission) lives in :mod:`repro.cache.pipeline` and the public API in
:mod:`repro.cache.manager`.

Everything here charges the virtual clock in exactly the order the
pre-pipeline monolith did; the equivalence tests pin that.
"""

from __future__ import annotations

import typing

from repro.cache.consistency import Invalidation, InvalidationReason
from repro.cache.entry import CacheEntry, EntryKey
from repro.cache.instrumentation import InstrumentationBus, StageEvent
from repro.cache.memo import ChainFingerprint, MemoRecord, TransformMemo
from repro.cache.notifiers import InvalidationBus, install_minimum_notifiers
from repro.cache.stats import CacheStats
from repro.content.signature import sign
from repro.content.store import ContentStore
from repro.errors import CacheError
from repro.events.types import EventType
from repro.sim.scheduler import FlightTable, Scheduler, SequentialScheduler
from repro.streams.chain import read_chain_properties

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.containment import ContainmentGuard
    from repro.cache.manager import DocumentCache, WriteMode
    from repro.cache.policies import (
        AdmissionPolicy,
        ConcurrencyPolicy,
        DegradationPolicy,
        MemoPolicy,
    )
    from repro.cache.recovery import ConsistencyRecoveryManager
    from repro.cache.replacement import ReplacementPolicy
    from repro.faults.retry import RetryPolicy
    from repro.ids import CacheId, DocumentId
    from repro.overload.budget import DeadlineBudget
    from repro.overload.gate import OverloadGate
    from repro.placeless.kernel import PlacelessKernel
    from repro.placeless.reference import DocumentReference
    from repro.sim.context import SimContext
    from repro.sim.topology import Topology
    from repro.storage.tier import L2Tier

__all__ = [
    "CacheCore",
    "NOTIFIER_INSTALL_COST_MS",
    "VERIFIER_INSTALL_COST_MS",
    "ADOPTION_COST_MS",
]

#: Simulated cost of creating one notifier property at fill time — part
#: of the small miss overhead Table 1 reports.
NOTIFIER_INSTALL_COST_MS = 0.15
#: Simulated cost of receiving/registering one verifier at fill time.
VERIFIER_INSTALL_COST_MS = 0.05
#: Simulated cost of the metadata exchange that establishes a
#: (document, user) → signature mapping from another user's entry.
ADOPTION_COST_MS = 0.3

#: Shared empty read-only bucket for documents with no cached entries.
_NO_ENTRIES: dict = {}


class CacheCore:
    """Mutable state + shared mechanics behind one ``DocumentCache``."""

    def __init__(
        self,
        kernel: "PlacelessKernel",
        capacity_bytes: int,
        cache_id: "CacheId",
        policy: "ReplacementPolicy",
        admission: "AdmissionPolicy",
        degradation: "DegradationPolicy",
        bus: InvalidationBus,
        instrumentation: InstrumentationBus,
        topology: "Topology",
        write_mode: "WriteMode",
        install_notifiers: bool,
        use_verifiers: bool,
        track_staleness: bool,
        share_across_users: bool,
        backing: "DocumentCache | None",
        retry_policy: "RetryPolicy | None",
    ) -> None:
        self.kernel = kernel
        self.ctx: "SimContext" = kernel.ctx
        self.capacity_bytes = capacity_bytes
        self.cache_id = cache_id
        self.policy = policy
        self.admission = admission
        self.degradation = degradation
        self.bus = bus
        self.instrumentation = instrumentation
        self.topology = topology
        self.write_mode = write_mode
        self.install_notifiers = install_notifiers
        self.use_verifiers = use_verifiers
        self.track_staleness = track_staleness
        self.share_across_users = share_across_users
        self.backing = backing
        self.retry_policy = retry_policy
        self.stats = CacheStats()
        self.store = ContentStore()
        self.entries: dict[EntryKey, CacheEntry] = {}
        #: Secondary index: document → that document's live entries, in
        #: global insertion order.  Adoption scans and invalidation
        #: fan-out were O(total entries) per event without it, which is
        #: what made million-entry tables unusable.
        self.entries_by_document: dict[
            "DocumentId", dict[EntryKey, CacheEntry]
        ] = {}
        self.dirty: dict[EntryKey, tuple["DocumentReference", bytes]] = {}
        #: The consistency-recovery coordinator, installed by the manager
        #: when a recovery policy is configured; ``None`` (the default)
        #: leaves every pipeline seam recovery-free and byte-identical.
        self.recovery: "ConsistencyRecoveryManager | None" = None
        #: The containment guard wrapped around property-code seams,
        #: installed by the manager when a containment policy is
        #: configured; ``None`` (the default) keeps every seam on the
        #: historical unguarded path.
        self.containment: "ContainmentGuard | None" = None
        #: The transform memoization plane, installed by the manager
        #: when a memo policy is configured; ``None`` (the default)
        #: keeps the read pipeline's memo stage a strict no-op and the
        #: golden digests byte-identical.
        self.memo: TransformMemo | None = None
        self.memo_policy: "MemoPolicy | None" = None
        #: The scheduler that drives pipeline generators.  Sequential by
        #: default — the historical one-access-at-a-time regime every
        #: golden digest pins; ``read_many`` swaps in an
        #: :class:`~repro.sim.scheduler.AsyncScheduler` per batch.
        self.scheduler: "Scheduler" = SequentialScheduler()
        #: In-progress single-flight misses (always constructed, only
        #: ever populated under a concurrent scheduler with a
        #: concurrency policy whose ``coalesce`` flag is on).
        self.flights = FlightTable()
        #: The concurrency policy, installed by the manager when one is
        #: configured; ``None`` (the default) keeps the single-flight
        #: stage a strict no-op.
        self.concurrency: "ConcurrencyPolicy | None" = None
        #: The durable L2 tier, installed by the manager when a storage
        #: policy is configured; ``None`` (the default) keeps the
        #: pipeline's storage stage a strict no-op, evictions purely
        #: destructive and restarts cold.
        self.l2: "L2Tier | None" = None
        #: The overload gate (deadlines + admission control), installed
        #: by the manager when an overload policy is configured;
        #: ``None`` (the default) keeps every read unbudgeted and
        #: unshed — the historical path the golden digests pin.
        self.overload: "OverloadGate | None" = None
        #: The plain cache name (the manager's ``name`` argument, before
        #: id-minting prefixes it) — the target string fault-plan gray
        #: windows match against.
        self.name: str = "cache"

    # -- instrumentation -----------------------------------------------------

    def emit(
        self,
        stage: str,
        outcome: str,
        key: EntryKey | None = None,
        started_ms: float | None = None,
        ended_ms: float | None = None,
        **payload,
    ) -> None:
        """Emit one stage event; timestamps default to *now*.

        Fast path: with nothing subscribed, skip the
        :class:`StageEvent` construction entirely — emission must cost
        nothing when nobody is listening (the A15 bench notes quantify
        the per-access saving).
        """
        if not self.instrumentation.has_subscribers:
            return
        now = self.ctx.clock.now_ms
        self.instrumentation.emit(
            StageEvent(
                stage=stage,
                outcome=outcome,
                document_id=key.document_id if key is not None else None,
                user_id=key.user_id if key is not None else None,
                started_ms=now if started_ms is None else started_ms,
                ended_ms=now if ended_ms is None else ended_ms,
                payload=payload,
            )
        )

    # -- fetch (next level down) ---------------------------------------------

    def fetch(self, reference: "DocumentReference"):
        """Fetch content + path metadata from the next level down.

        With a backing cache this is the second-level cache (which may
        itself hit or miss); without one it is the full Placeless read
        path.
        """
        if self.backing is not None:
            return self.backing.read_for_fill(reference)
        outcome = self.kernel.read(reference)
        return outcome.content, outcome.meta

    def fetch_with_retry(
        self,
        reference: "DocumentReference",
        budget: "DeadlineBudget | None" = None,
    ):
        """Fetch from the level below under the retry policy, if any.

        A *budget* caps retry backoff at the read's remaining deadline
        (re-evaluated before each sleep) — retries never burn time the
        caller no longer has.  A gray-failing shard (fault-plan window
        targeting this cache's name) charges its slow-fetch penalty
        here, before the fetch proper, which is what the cluster's
        hedge delay races against.
        """
        faults = self.ctx.faults
        if faults is not None:
            gray_ms = faults.gray_fetch_delay_ms(self.name)
            if gray_ms > 0.0:
                self.ctx.charge(gray_ms)
                self.emit("fetch", "gray-slow", delay_ms=gray_ms)
        if self.retry_policy is None:
            return self.fetch(reference)
        return self.retry_policy.call(
            self.ctx,
            lambda: self.fetch(reference),
            on_retry=self.count_retry,
            budget_ms=None if budget is None else (lambda: budget.remaining_ms),
        )

    def count_retry(
        self, attempt: int, delay_ms: float, error: BaseException
    ) -> None:
        """Retry-policy callback: account one backoff wait."""
        self.emit("fetch", "retry", delay_ms=delay_ms, attempt=attempt)

    # -- entry-table mechanics -------------------------------------------------

    def fill(
        self, reference: "DocumentReference", key: EntryKey,
        content: bytes, meta,
    ) -> CacheEntry:
        """Insert (or refresh) the entry for *key* with *content*."""
        existing = self.entries.get(key)
        if existing is not None:
            self.remove_entry(existing)

        # Sign once: the signature feeds the store (which would
        # otherwise re-hash the same bytes) and the transform memo.
        signature = sign(content)
        self.store.put_signed(content, signature)
        self.evict_to_capacity(protect=key)
        now = self.ctx.clock.now_ms
        entry = CacheEntry(
            key=key,
            signature=signature,
            size=len(content),
            cacheability=meta.cacheability,
            verifiers=list(meta.verifiers),
            replacement_cost_ms=meta.replacement_cost_ms,
            chain_signature=meta.chain_signature,
            reference_id=reference.reference_id,
            created_at_ms=now,
            last_access_ms=now,
        )
        entry.pinned = bool(getattr(meta, "pin", False))
        entry.policy_state["source_signature"] = meta.source_signature
        self.insert_entry(entry)
        self.policy.on_insert(entry)
        # Fill overhead: register the returned verifiers and install the
        # minimum notifier set — Table 1's miss-vs-no-cache delta.
        self.ctx.charge(VERIFIER_INSTALL_COST_MS * len(meta.verifiers))
        if self.install_notifiers:
            installed = install_minimum_notifiers(
                reference, self.bus, self.cache_id
            )
            self.ctx.charge(NOTIFIER_INSTALL_COST_MS * len(installed))
        if self.recovery is not None:
            self.recovery.note_reference(key, reference)
        return entry

    def evict_to_capacity(self, protect: EntryKey | None = None) -> None:
        """Evict victims until physical bytes fit the capacity.

        The policy receives the full entry table plus the protected key
        and performs its own pinned/protected filtering — rebuilding a
        filtered candidate dict here cost O(n) per victim, which at
        10^5+ entries turned every capacity overrun into a table scan.
        """
        while self.store.physical_bytes > self.capacity_bytes:
            try:
                victim_key = self.policy.select_victim(
                    self.entries, protect=protect
                )
            except CacheError:
                raise CacheError(
                    "cannot satisfy capacity: nothing evictable"
                ) from None
            victim = self.entries[victim_key]
            if self.l2 is not None and victim.signature in self.store:
                # Demote-on-evict: the victim's bytes + metadata spill
                # to the durable tier before the entry is destroyed.
                self.l2.demote(victim, self.store.get(victim.signature))
            self.drop(victim, InvalidationReason.EVICTED, origin="internal")
            self.emit("eviction", "evicted", key=victim_key)

    def drop(
        self,
        entry: CacheEntry,
        reason: InvalidationReason,
        origin: str = "internal",
    ) -> None:
        """Invalidate and remove an entry, releasing its content bytes."""
        entry.invalidate(
            Invalidation(
                reason=reason,
                document_id=entry.document_id,
                user_id=entry.user_id,
                at_ms=self.ctx.clock.now_ms,
                origin=origin,
            )
        )
        self.emit(
            "invalidation", reason.value, key=entry.key,
            reason=reason, origin=origin,
        )
        if self.l2 is not None and reason is not InvalidationReason.EVICTED:
            # An invalidation (notifier, verifier, explicit, resync)
            # kills the demoted copy too — eviction is the one reason
            # that *feeds* the L2 tier rather than purging it.
            self.l2.drop(entry.key)
        self.remove_entry(entry)

    def invalidate_local(
        self, key: EntryKey, reason: InvalidationReason
    ) -> None:
        """Drop this cache's entry for *key*, if present."""
        entry = self.entries.get(key)
        if entry is not None:
            self.drop(entry, reason, origin="internal")

    def insert_entry(self, entry: CacheEntry) -> None:
        """Install an entry in the table and the per-document index.

        Every site that writes ``entries[key]`` must go through here so
        the secondary index stays exact.
        """
        key = entry.key
        self.entries[key] = entry
        bucket = self.entries_by_document.get(key.document_id)
        if bucket is None:
            bucket = self.entries_by_document[key.document_id] = {}
        bucket[key] = entry

    def entries_for_document(
        self, document_id: "DocumentId"
    ) -> dict[EntryKey, CacheEntry]:
        """The document's live entries (empty dict when none cached)."""
        return self.entries_by_document.get(document_id, _NO_ENTRIES)

    def remove_entry(self, entry: CacheEntry) -> None:
        """Forget an entry and release its content-store reference."""
        if self.entries.get(entry.key) is entry:
            del self.entries[entry.key]
            bucket = self.entries_by_document.get(entry.key.document_id)
            if bucket is not None:
                bucket.pop(entry.key, None)
                if not bucket:
                    del self.entries_by_document[entry.key.document_id]
            self.store.release(entry.signature)
            self.policy.on_remove(entry)

    def replace_content(self, entry: CacheEntry, content: bytes) -> None:
        """Swap an entry's bytes (verifier REVALIDATED patching)."""
        self.store.release(entry.signature)
        entry.signature = self.store.put(content)
        entry.size = len(content)
        self.evict_to_capacity(protect=entry.key)

    # -- cross-cutting helpers -------------------------------------------------

    def meta_from_entry(self, entry: CacheEntry):
        """Reconstruct read-path metadata from a stored entry."""
        from repro.placeless.document import PathMeta

        return PathMeta(
            verifiers=list(entry.verifiers),
            votes=[entry.cacheability],
            replacement_cost_ms=entry.replacement_cost_ms,
            chain_signature=entry.chain_signature,
            properties_executed=0,
            source_signature=entry.policy_state.get("source_signature"),
            pin=entry.pinned,
        )

    def expected_chain_signature(self, reference: "DocumentReference"):
        """The chain signature this reference's read path would record.

        Computable from property metadata alone — no content fetch — so
        a cache can predict whether another user's cached bytes apply.
        """
        return tuple(
            signature
            for signature in (
                p.transform_signature()
                for p in read_chain_properties(reference)
            )
            if signature is not None
        )

    # -- transform memoization -------------------------------------------------

    def memo_record_output(
        self,
        fingerprint: ChainFingerprint | None,
        meta,
        entry: CacheEntry,
    ) -> None:
        """Admission hook: memoize a freshly admitted transform output.

        Only called for undegraded, admitted fills; a ``None``
        fingerprint means the memo stage never consulted (memo off, or
        the chain was containment-blocked) and nothing is recorded.
        """
        if self.memo is None or fingerprint is None:
            return
        if meta.source_signature is None:
            return
        record = MemoRecord(
            source_signature=meta.source_signature,
            fingerprint=fingerprint,
            output_signature=entry.signature,
            document_id=entry.document_id,
            size=entry.size,
            cacheability=entry.cacheability,
            verifiers=tuple(entry.verifiers),
            verifier_fingerprints=tuple(
                verifier.fingerprint() for verifier in entry.verifiers
            ),
            replacement_cost_ms=entry.replacement_cost_ms,
            chain_signature=entry.chain_signature,
            pin=entry.pinned,
        )
        evicted = self.memo.record(record)
        if self.l2 is not None:
            self.l2.spill_memo_record(record)
        self.emit("memo", "recorded", key=entry.key)
        if evicted:
            self.emit("memo", "evicted", records=evicted)

    def memo_record_negative(
        self,
        fingerprint: ChainFingerprint | None,
        key: EntryKey,
        meta,
    ) -> None:
        """Admission hook: negative-cache an UNCACHEABLE-voting chain."""
        if self.memo is None or fingerprint is None:
            return
        policy = self.memo_policy
        if policy is None or not policy.negative_cache:
            return
        if meta.source_signature is None:
            return
        record = MemoRecord(
            source_signature=meta.source_signature,
            fingerprint=fingerprint,
            output_signature=None,
            document_id=key.document_id,
            cacheability=meta.cacheability,
            chain_signature=meta.chain_signature,
        )
        evicted = self.memo.record(record)
        if self.l2 is not None:
            self.l2.spill_memo_record(record)
        self.emit("memo", "negative-recorded", key=key)
        if evicted:
            self.emit("memo", "evicted", records=evicted)

    def memo_purge(self, origin: str) -> int:
        """Drop every memo record (resync/crash/explicit); returns count.

        Silent when the memo is off or already empty; otherwise emits
        one ``memo``/``purged`` event carrying the record count and the
        purge origin.
        """
        if self.memo is None:
            return 0
        purged = self.memo.purge_all()
        if purged:
            self.emit("memo", "purged", records=purged, origin=origin)
        return purged

    def is_stale(
        self, reference: "DocumentReference", entry: CacheEntry
    ) -> bool:
        """Ground-truth staleness: raw source changed since fill.

        Uses :meth:`BitProvider.peek_signature`, which charges nothing —
        this is simulation-side omniscience, not something a real cache
        could do.
        """
        recorded = entry.policy_state.get("source_signature")
        if recorded is None:
            return False
        return reference.base.provider.peek_signature() != recorded

    @staticmethod
    def verifier_fault_key(
        entry: CacheEntry, verifier
    ) -> tuple["DocumentId", str]:
        """Quarantine key: stable across refills (which rebuild verifier
        objects), so repeated failures accumulate per document and
        verifier type rather than per object."""
        return (entry.document_id, type(verifier).__name__)

    def note_verifier_caught_lost(self, entry: CacheEntry) -> None:
        """Count a verifier invalidation that covered a lost callback."""
        if self.bus.consume_lost(entry.document_id):
            self.emit("bus-loss", "detected", key=entry.key)

    # -- event forwarding -------------------------------------------------------

    def forward_read(self, reference: "DocumentReference") -> None:
        """Forward a cache-served read as READ_FORWARDED events.

        "the cache will forward the operation, but the Placeless system
        will not execute them fully, instead just use them to trigger
        active properties that have registered for these events." (§3)
        """
        for hop in self.topology.notifier_path():
            self.ctx.charge_hop(hop, 0)
        event = reference.make_event(EventType.READ_FORWARDED)
        reference.base.dispatcher.dispatch(event)
        reference.dispatcher.dispatch(event)
        self.emit("forward", "read", key=EntryKey.for_reference(reference))

    def forward_write(
        self, reference: "DocumentReference", size: int
    ) -> None:
        """Forward a buffered write as WRITE_FORWARDED events, if wanted."""
        event = reference.make_event(
            EventType.WRITE_FORWARDED, payload={"size": size}
        )
        base_wants = reference.base.dispatcher.has_listener(
            EventType.WRITE_FORWARDED
        )
        ref_wants = reference.dispatcher.has_listener(
            EventType.WRITE_FORWARDED
        )
        if not (base_wants or ref_wants):
            return
        for hop in self.topology.notifier_path():
            self.ctx.charge_hop(hop, 0)
        if base_wants:
            reference.base.dispatcher.dispatch(event)
        if ref_wants:
            reference.dispatcher.dispatch(event)
        self.emit("forward", "write", key=EntryKey.for_reference(reference))
