"""Replacement policies: cost-aware Greedy-Dual-Size and baselines.

"The replacement policy used in the implementation is a version of the
Greedy-Dual-Size algorithm [1], based on the replacement cost supplied by
the properties and bit-provider, as well as on the size of the document
and the access frequency of the document at that cache." (§4)

:class:`GreedyDualSizePolicy` implements Cao & Irani's algorithm with the
paper's two extensions selectable:

* the cost term is the *read-path replacement cost* (bit-provider
  retrieval + property execution times + QoS inflation) rather than a
  uniform constant — disable with ``cost_source="uniform"`` for the
  cost-blind ablation;
* the access-frequency extension (GDSF) multiplies the cost term by the
  entry's access count — enable with ``frequency_aware=True``.

Baselines for the A2 ablation: LRU, LFU, FIFO, SIZE (evict largest),
Greedy-Dual (cost-aware but size-blind) and RANDOM.

All heap-backed policies use lazy deletion: each (re)insertion stamps the
entry; stale heap items are skipped at pop time.

Replacement is one of the cache's three pluggable policy seams (with
admission and degradation); :mod:`repro.cache.policies` re-exports
:class:`ReplacementPolicy` so the seams share one import surface, and
``CacheCore.evict_to_capacity`` is the sole call site.
"""

from __future__ import annotations

import abc
import heapq
import itertools
import random

from repro.cache.entry import CacheEntry, EntryKey
from repro.errors import CacheError

__all__ = [
    "ReplacementPolicy",
    "GreedyDualSizePolicy",
    "GreedyDualPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "FIFOPolicy",
    "SizePolicy",
    "RandomPolicy",
    "make_policy",
]


class ReplacementPolicy(abc.ABC):
    """Interface the cache manager drives.

    The manager calls :meth:`on_insert` when an entry is filled,
    :meth:`on_access` on every hit, :meth:`on_remove` when an entry
    leaves the cache for any reason, and :meth:`select_victim` when it
    needs space.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def on_insert(self, entry: CacheEntry) -> None:
        """Register a newly-filled entry."""

    @abc.abstractmethod
    def on_access(self, entry: CacheEntry) -> None:
        """Record a hit on *entry*."""

    def on_remove(self, entry: CacheEntry) -> None:
        """Forget *entry* (default: rely on lazy deletion)."""

    @abc.abstractmethod
    def select_victim(
        self, entries: dict[EntryKey, CacheEntry]
    ) -> EntryKey:
        """Choose the entry to evict from the live *entries*."""


class _HeapPolicy(ReplacementPolicy):
    """Shared heap-with-lazy-deletion machinery.

    Subclasses implement :meth:`priority` — lower evicts first.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, EntryKey, int]] = []
        self._serials = itertools.count()

    @abc.abstractmethod
    def priority(self, entry: CacheEntry) -> float:
        """Eviction priority; the minimum is evicted first."""

    def _push(self, entry: CacheEntry) -> None:
        stamp = entry.policy_state.get(id(self), 0) + 1
        entry.policy_state[id(self)] = stamp
        heapq.heappush(
            self._heap,
            (self.priority(entry), next(self._serials), entry.key, stamp),
        )

    def on_insert(self, entry: CacheEntry) -> None:
        self._push(entry)

    def on_access(self, entry: CacheEntry) -> None:
        self._push(entry)

    def select_victim(self, entries: dict[EntryKey, CacheEntry]) -> EntryKey:
        while self._heap:
            priority, _, key, stamp = heapq.heappop(self._heap)
            entry = entries.get(key)
            if entry is None or entry.policy_state.get(id(self)) != stamp:
                continue  # stale heap item
            self._on_evict(priority)
            return key
        raise CacheError("no evictable entries")

    def _on_evict(self, victim_priority: float) -> None:
        """Hook for policies (GDS) that age on eviction."""


class GreedyDualSizePolicy(_HeapPolicy):
    """Greedy-Dual-Size [Cao & Irani 1997] with the paper's extensions.

    H(p) = L + frequency(p) * cost(p) / size(p), where L is the global
    inflation value set to the H of the last victim.

    Parameters
    ----------
    frequency_aware:
        Multiply the cost term by the access count (the GDSF variant the
        paper's "access frequency" remark implies).
    cost_source:
        ``"path"`` uses the read-path replacement cost the properties and
        bit-provider supplied (the paper's design); ``"uniform"`` uses a
        constant 1 (cost-blind, reduces GDS to a size/recency policy) —
        the A2 ablation's foil.
    """

    def __init__(
        self, frequency_aware: bool = False, cost_source: str = "path"
    ) -> None:
        super().__init__()
        if cost_source not in ("path", "uniform"):
            raise CacheError(f"unknown cost_source: {cost_source!r}")
        self.frequency_aware = frequency_aware
        self.cost_source = cost_source
        self.inflation = 0.0
        self.name = "gdsf" if frequency_aware else "gds"
        if cost_source == "uniform":
            self.name += "-costblind"

    def _cost(self, entry: CacheEntry) -> float:
        if self.cost_source == "uniform":
            return 1.0
        return max(entry.replacement_cost_ms, 1e-9)

    def priority(self, entry: CacheEntry) -> float:
        frequency = entry.access_count if self.frequency_aware else 1
        size = max(entry.size, 1)
        return self.inflation + frequency * self._cost(entry) / size

    def _on_evict(self, victim_priority: float) -> None:
        # Aging: future insertions start from the evicted H value.
        self.inflation = max(self.inflation, victim_priority)


class GreedyDualPolicy(_HeapPolicy):
    """Greedy-Dual GD(1): cost-aware but size-blind (H = L + cost)."""

    name = "gd"

    def __init__(self) -> None:
        super().__init__()
        self.inflation = 0.0

    def priority(self, entry: CacheEntry) -> float:
        return self.inflation + max(entry.replacement_cost_ms, 1e-9)

    def _on_evict(self, victim_priority: float) -> None:
        self.inflation = max(self.inflation, victim_priority)


class LRUPolicy(_HeapPolicy):
    """Evict the least recently used entry."""

    name = "lru"

    def __init__(self) -> None:
        super().__init__()
        self._tick = itertools.count()

    def priority(self, entry: CacheEntry) -> float:
        return float(next(self._tick))


class LFUPolicy(_HeapPolicy):
    """Evict the least frequently used entry (ties by heap order)."""

    name = "lfu"

    def priority(self, entry: CacheEntry) -> float:
        return float(entry.access_count)


class FIFOPolicy(_HeapPolicy):
    """Evict the oldest-inserted entry; accesses do not refresh."""

    name = "fifo"

    def __init__(self) -> None:
        super().__init__()
        self._tick = itertools.count()

    def priority(self, entry: CacheEntry) -> float:
        return float(next(self._tick))

    def on_access(self, entry: CacheEntry) -> None:
        # FIFO ignores accesses; keep the original insertion priority.
        pass


class SizePolicy(_HeapPolicy):
    """Evict the largest entry first (maximises object hit count)."""

    name = "size"

    def priority(self, entry: CacheEntry) -> float:
        return -float(entry.size)

    def on_access(self, entry: CacheEntry) -> None:
        # Size never changes on access; no re-push needed.
        pass


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random entry (seeded; the zero-information baseline)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def on_insert(self, entry: CacheEntry) -> None:
        pass

    def on_access(self, entry: CacheEntry) -> None:
        pass

    def select_victim(self, entries: dict[EntryKey, CacheEntry]) -> EntryKey:
        if not entries:
            raise CacheError("no evictable entries")
        keys = sorted(entries, key=str)  # deterministic order before sampling
        return keys[self._rng.randrange(len(keys))]


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Factory mapping policy names (as used in benches) to instances."""
    factories = {
        "gds": lambda: GreedyDualSizePolicy(),
        "gdsf": lambda: GreedyDualSizePolicy(frequency_aware=True),
        "gds-costblind": lambda: GreedyDualSizePolicy(cost_source="uniform"),
        "gd": GreedyDualPolicy,
        "lru": LRUPolicy,
        "lfu": LFUPolicy,
        "fifo": FIFOPolicy,
        "size": SizePolicy,
        "random": lambda: RandomPolicy(seed),
    }
    try:
        return factories[name]()
    except KeyError:
        raise CacheError(f"unknown policy: {name!r}") from None
