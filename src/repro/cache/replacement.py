"""Replacement policies: cost-aware Greedy-Dual-Size and baselines.

"The replacement policy used in the implementation is a version of the
Greedy-Dual-Size algorithm [1], based on the replacement cost supplied by
the properties and bit-provider, as well as on the size of the document
and the access frequency of the document at that cache." (§4)

:class:`GreedyDualSizePolicy` implements Cao & Irani's algorithm with the
paper's two extensions selectable:

* the cost term is the *read-path replacement cost* (bit-provider
  retrieval + property execution times + QoS inflation) rather than a
  uniform constant — disable with ``cost_source="uniform"`` for the
  cost-blind ablation;
* the access-frequency extension (GDSF) multiplies the cost term by the
  entry's access count — enable with ``frequency_aware=True``.

Baselines for the A2 ablation: LRU, LFU, FIFO, SIZE (evict largest),
Greedy-Dual (cost-aware but size-blind) and RANDOM.
:class:`ReinforcedCounterPolicy` (the A20 shootout's fourth arm) ports
the cluster placement layer's reinforced counters — capped per-entry
counters with deterministic epoch decay — into a replacement policy.

All heap-backed policies use lazy deletion: each (re)insertion stamps the
entry; stale heap items are skipped at pop time.  Under churn the stale
items would otherwise accumulate without bound (every insert/remove
cycle leaves one behind), so the heap compacts itself whenever stale
items outnumber live ones past a threshold.

Replacement is one of the cache's three pluggable policy seams (with
admission and degradation); :mod:`repro.cache.policies` re-exports
:class:`ReplacementPolicy` so the seams share one import surface, and
``CacheCore.evict_to_capacity`` is the sole call site.
"""

from __future__ import annotations

import abc
import heapq
import itertools
import random

from repro.cache.entry import CacheEntry, EntryKey
from repro.errors import CacheError

__all__ = [
    "ReplacementPolicy",
    "GreedyDualSizePolicy",
    "GreedyDualPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "FIFOPolicy",
    "SizePolicy",
    "RandomPolicy",
    "ReinforcedCounterPolicy",
    "make_policy",
]

#: Heaps smaller than this never compact — the rebuild would cost more
#: than the garbage it reclaims.
_COMPACT_MIN_HEAP = 1024
#: Compact when stale items exceed this fraction of the heap.
_COMPACT_STALE_FRACTION = 0.5


class ReplacementPolicy(abc.ABC):
    """Interface the cache manager drives.

    The manager calls :meth:`on_insert` when an entry is filled,
    :meth:`on_access` on every hit, :meth:`on_remove` when an entry
    leaves the cache for any reason, and :meth:`select_victim` when it
    needs space.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def on_insert(self, entry: CacheEntry) -> None:
        """Register a newly-filled entry."""

    @abc.abstractmethod
    def on_access(self, entry: CacheEntry) -> None:
        """Record a hit on *entry*."""

    def on_remove(self, entry: CacheEntry) -> None:
        """Forget *entry* (default: rely on lazy deletion)."""

    @abc.abstractmethod
    def select_victim(
        self,
        entries: dict[EntryKey, CacheEntry],
        protect: EntryKey | None = None,
    ) -> EntryKey:
        """Choose the entry to evict from the live *entries*.

        *entries* is the cache's full entry table; the policy itself must
        never return *protect* (the key the caller is mid-refresh on) or
        a pinned entry.  Passing the full table lets heap policies stay
        O(log n) per victim instead of forcing the caller to rebuild a
        filtered candidate dict — the scan that dominated eviction at
        10^5+ entries.
        """


class _HeapPolicy(ReplacementPolicy):
    """Shared heap-with-lazy-deletion machinery.

    Subclasses implement :meth:`priority` — lower evicts first.

    ``_stamps`` mirrors each key's current stamp purely for compaction
    bookkeeping: ``len(self._heap) - len(self._stamps)`` is the stale
    item count, and a rebuild keeps exactly the items whose ``(key,
    stamp)`` pair is current.  The authoritative staleness check at pop
    time stays ``entry.policy_state[id(self)]``, as before.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, EntryKey, int]] = []
        self._serials = itertools.count()
        self._stamps: dict[EntryKey, int] = {}

    @abc.abstractmethod
    def priority(self, entry: CacheEntry) -> float:
        """Eviction priority; the minimum is evicted first."""

    def _push(self, entry: CacheEntry) -> None:
        stamp = entry.policy_state.get(id(self), 0) + 1
        entry.policy_state[id(self)] = stamp
        self._stamps[entry.key] = stamp
        heapq.heappush(
            self._heap,
            (self.priority(entry), next(self._serials), entry.key, stamp),
        )
        self._maybe_compact()

    def on_insert(self, entry: CacheEntry) -> None:
        self._push(entry)

    def on_access(self, entry: CacheEntry) -> None:
        self._push(entry)

    def on_remove(self, entry: CacheEntry) -> None:
        # The entry's current heap item (if any) just went stale; only
        # the bookkeeping is updated — the item itself is lazily
        # deleted at pop time or swept by compaction.
        self._stamps.pop(entry.key, None)

    def select_victim(
        self,
        entries: dict[EntryKey, CacheEntry],
        protect: EntryKey | None = None,
    ) -> EntryKey:
        while self._heap:
            priority, _, key, stamp = heapq.heappop(self._heap)
            entry = entries.get(key)
            if entry is None or entry.policy_state.get(id(self)) != stamp:
                continue  # stale heap item
            if entry.pinned or key == protect:
                # Live but unevictable right now.  Historically these
                # keys were filtered out of the candidate dict before
                # the policy saw them, so their popped heap item was
                # dropped and the entry stayed orphaned until its next
                # access re-pushed it; preserving that keeps victim
                # sequences byte-identical to the pinned goldens.
                self._stamps.pop(key, None)
                continue
            self._stamps.pop(key, None)
            self._on_evict(priority)
            return key
        raise CacheError("no evictable entries")

    def _on_evict(self, victim_priority: float) -> None:
        """Hook for policies (GDS) that age on eviction."""

    # -- lazy-deletion garbage control ----------------------------------------

    @property
    def stale_items(self) -> int:
        """Heap items whose (key, stamp) is no longer current."""
        return len(self._heap) - len(self._stamps)

    def _maybe_compact(self) -> None:
        """Rebuild the heap when stale items dominate it.

        Under insert/remove churn every cycle strands one stale item, so
        without this the heap grows without bound even at constant
        occupancy.  The rebuild keeps only current items; ``heapify`` is
        O(n) and victim order is unchanged (all heap tuples are totally
        ordered by their unique serials, so pop order is a function of
        the surviving set, not of array layout).
        """
        heap = self._heap
        if len(heap) < _COMPACT_MIN_HEAP:
            return
        if len(heap) - len(self._stamps) <= _COMPACT_STALE_FRACTION * len(heap):
            return
        stamps = self._stamps
        self._heap = [
            item for item in heap if stamps.get(item[2]) == item[3]
        ]
        heapq.heapify(self._heap)


class GreedyDualSizePolicy(_HeapPolicy):
    """Greedy-Dual-Size [Cao & Irani 1997] with the paper's extensions.

    H(p) = L + frequency(p) * cost(p) / size(p), where L is the global
    inflation value set to the H of the last victim.

    Parameters
    ----------
    frequency_aware:
        Multiply the cost term by the access count (the GDSF variant the
        paper's "access frequency" remark implies).
    cost_source:
        ``"path"`` uses the read-path replacement cost the properties and
        bit-provider supplied (the paper's design); ``"uniform"`` uses a
        constant 1 (cost-blind, reduces GDS to a size/recency policy) —
        the A2 ablation's foil.
    """

    def __init__(
        self, frequency_aware: bool = False, cost_source: str = "path"
    ) -> None:
        super().__init__()
        if cost_source not in ("path", "uniform"):
            raise CacheError(f"unknown cost_source: {cost_source!r}")
        self.frequency_aware = frequency_aware
        self.cost_source = cost_source
        self.inflation = 0.0
        self.name = "gdsf" if frequency_aware else "gds"
        if cost_source == "uniform":
            self.name += "-costblind"

    def _cost(self, entry: CacheEntry) -> float:
        if self.cost_source == "uniform":
            return 1.0
        return max(entry.replacement_cost_ms, 1e-9)

    def priority(self, entry: CacheEntry) -> float:
        frequency = entry.access_count if self.frequency_aware else 1
        size = max(entry.size, 1)
        return self.inflation + frequency * self._cost(entry) / size

    def _on_evict(self, victim_priority: float) -> None:
        # Aging: future insertions start from the evicted H value.
        self.inflation = max(self.inflation, victim_priority)


class GreedyDualPolicy(_HeapPolicy):
    """Greedy-Dual GD(1): cost-aware but size-blind (H = L + cost)."""

    name = "gd"

    def __init__(self) -> None:
        super().__init__()
        self.inflation = 0.0

    def priority(self, entry: CacheEntry) -> float:
        return self.inflation + max(entry.replacement_cost_ms, 1e-9)

    def _on_evict(self, victim_priority: float) -> None:
        self.inflation = max(self.inflation, victim_priority)


class LRUPolicy(_HeapPolicy):
    """Evict the least recently used entry."""

    name = "lru"

    def __init__(self) -> None:
        super().__init__()
        self._tick = itertools.count()

    def priority(self, entry: CacheEntry) -> float:
        return float(next(self._tick))


class LFUPolicy(_HeapPolicy):
    """Evict the least frequently used entry (ties by heap order)."""

    name = "lfu"

    def priority(self, entry: CacheEntry) -> float:
        return float(entry.access_count)


class FIFOPolicy(_HeapPolicy):
    """Evict the oldest-inserted entry; accesses do not refresh."""

    name = "fifo"

    def __init__(self) -> None:
        super().__init__()
        self._tick = itertools.count()

    def priority(self, entry: CacheEntry) -> float:
        return float(next(self._tick))

    def on_access(self, entry: CacheEntry) -> None:
        # FIFO ignores accesses; keep the original insertion priority.
        pass


class SizePolicy(_HeapPolicy):
    """Evict the largest entry first (maximises object hit count)."""

    name = "size"

    def priority(self, entry: CacheEntry) -> float:
        return -float(entry.size)

    def on_access(self, entry: CacheEntry) -> None:
        # Size never changes on access; no re-push needed.
        pass


class ReinforcedCounterPolicy(_HeapPolicy):
    """Capped reinforcement counters with deterministic epoch decay.

    The replacement-side port of the cluster placement layer's
    reinforced counters (arXiv:1501.03446's multilevel variant): each
    access bumps a per-entry counter capped at ``counter_cap``; every
    ``decay_interval`` accesses (policy-wide) opens a new epoch that
    halves every counter.  The halving is applied lazily — an entry's
    effective counter is ``counter >> (epoch - entry_epoch)`` — so decay
    is O(1) per access rather than a sweep over 10^6 entries.  The heap
    victim is the minimum effective counter, ties broken by push order
    (older push evicts first), which approximates
    least-reinforced-recently under churn.
    """

    name = "rc"

    def __init__(
        self,
        counter_cap: int = 8,
        decay_interval: int = 256,
    ) -> None:
        super().__init__()
        self.counter_cap = counter_cap
        self.decay_interval = decay_interval
        self._epoch = 0
        self._accesses = 0

    def _counter_of(self, entry: CacheEntry) -> int:
        counter = entry.policy_state.get((id(self), "counter"), 0)
        born = entry.policy_state.get((id(self), "epoch"), self._epoch)
        return counter >> (self._epoch - born)

    def _note_access(self, entry: CacheEntry) -> None:
        self._accesses += 1
        if self._accesses % self.decay_interval == 0:
            self._epoch += 1
        counter = min(self._counter_of(entry) + 1, self.counter_cap)
        entry.policy_state[(id(self), "counter")] = counter
        entry.policy_state[(id(self), "epoch")] = self._epoch

    def priority(self, entry: CacheEntry) -> float:
        return float(self._counter_of(entry))

    def on_insert(self, entry: CacheEntry) -> None:
        self._note_access(entry)
        self._push(entry)

    def on_access(self, entry: CacheEntry) -> None:
        self._note_access(entry)
        self._push(entry)


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random entry (seeded; the zero-information baseline)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def on_insert(self, entry: CacheEntry) -> None:
        pass

    def on_access(self, entry: CacheEntry) -> None:
        pass

    def select_victim(
        self,
        entries: dict[EntryKey, CacheEntry],
        protect: EntryKey | None = None,
    ) -> EntryKey:
        # Filter exactly as the caller's historical candidate dict did,
        # so the sampled population (and RNG draw sequence) is unchanged.
        keys = sorted(
            (
                key
                for key, entry in entries.items()
                if key != protect and not entry.pinned
            ),
            key=str,  # deterministic order before sampling
        )
        if not keys:
            raise CacheError("no evictable entries")
        return keys[self._rng.randrange(len(keys))]


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Factory mapping policy names (as used in benches) to instances."""
    factories = {
        "gds": lambda: GreedyDualSizePolicy(),
        "gdsf": lambda: GreedyDualSizePolicy(frequency_aware=True),
        "gds-costblind": lambda: GreedyDualSizePolicy(cost_source="uniform"),
        "gd": GreedyDualPolicy,
        "lru": LRUPolicy,
        "lfu": LFUPolicy,
        "fifo": FIFOPolicy,
        "size": SizePolicy,
        "random": lambda: RandomPolicy(seed),
        "rc": ReinforcedCounterPolicy,
    }
    try:
        return factories[name]()
    except KeyError:
        raise CacheError(f"unknown policy: {name!r}") from None
