"""Verifiers: per-entry validity checks executed on every cache hit.

"Verifiers are pieces of code returned to the cache along with the
document's content.  They are executed each time an entry is retrieved
from the cache and can determine whether the entry is still valid at that
time.  In particular, verifiers can check for conditions that may change
outside of Placeless control." (§3)

The paper's examples are all represented:

* the bit-provider's verifier that "polls the last-modification time of
  the file" — :class:`ModificationTimeVerifier`;
* a WWW verifier implementing "the TTL timeout as specified in the HTTP
  response" — :class:`TTLVerifier`;
* multi-source documents whose verifier "can check the consistency of
  each of the sources" — :class:`CompositeVerifier`;
* a financial-portfolio verifier that invalidates "only if there has been
  significant change in the stock quotes or even modify these values as
  needed" — :class:`ThresholdVerifier`, which can *revalidate* by patching
  the cached content in place.

In the staged pipeline, verifiers run inside the read pipeline's
``VerifierGateStage`` (on every hit, behind the quarantine gate) and in
the adoption stage's freshness probe; each execution is charged to the
virtual clock and emitted as a ``verifier`` stage event.

Each verifier carries an execution cost in virtual milliseconds; the
cache charges it on every hit, which is exactly the trade-off §3 flags:
"verifier execution trades-off cache consistency with cache access time
latencies".
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import VerifierError

__all__ = [
    "Verdict",
    "VerifierResult",
    "Verifier",
    "AlwaysValidVerifier",
    "AlwaysInvalidVerifier",
    "TTLVerifier",
    "ModificationTimeVerifier",
    "PredicateVerifier",
    "CompositeVerifier",
    "ThresholdVerifier",
]


class Verdict(enum.Enum):
    """Outcome of running a verifier against a cache entry."""

    #: The entry is still valid; serve it.
    VALID = "valid"
    #: The entry is stale; the cache must invalidate and refetch.
    INVALID = "invalid"
    #: The entry was stale but the verifier repaired it in place
    #: (returned patched content); serve the patched bytes.
    REVALIDATED = "revalidated"


@dataclass
class VerifierResult:
    """Verdict plus, for :attr:`Verdict.REVALIDATED`, the patched bytes."""

    verdict: Verdict
    patched_content: bytes | None = None

    @property
    def serves_from_cache(self) -> bool:
        """True when the hit can be served without a refetch."""
        return self.verdict is not Verdict.INVALID


class Verifier(abc.ABC):
    """Base class for all verifiers.

    Subclasses implement :meth:`verify`; ``cost_ms`` is the simulated
    execution latency the cache charges per hit.  ``invalidation_label``
    names what an INVALID verdict means, so the cache manager can
    attribute the invalidation to the right consistency class:
    ``"source"`` → class 1 out-of-band, ``"external"`` → class 4.
    """

    #: What an INVALID verdict attributes to: "source" or "external".
    invalidation_label: str = "external"

    def __init__(self, cost_ms: float = 0.0) -> None:
        self.cost_ms = cost_ms
        self.executions = 0

    def fingerprint(self) -> str:
        """Stable identity of this verifier's code + configuration.

        Recorded alongside memoized transform outputs (see
        :mod:`repro.cache.memo`) so a record can report *which* checks
        gate it; covers code identity, the invalidation label and the
        per-hit cost.  Subclasses with extra configuration that changes
        their verdict behaviour may extend the string.
        """
        cls = type(self)
        return (
            f"{cls.__module__}.{cls.__qualname__}"
            f"/{self.invalidation_label}/{self.cost_ms}"
        )

    def run(self, now_ms: float, content: bytes) -> VerifierResult:
        """Execute the verifier, tracking execution count.

        A verifier that *raises* is treated by the cache manager as a
        conservative :attr:`Verdict.INVALID` (wrapped in
        :class:`~repro.errors.VerifierError`); this method only counts and
        delegates.
        """
        self.executions += 1
        return self.verify(now_ms, content)

    @abc.abstractmethod
    def verify(self, now_ms: float, content: bytes) -> VerifierResult:
        """Check validity of *content* at virtual time *now_ms*."""


class AlwaysValidVerifier(Verifier):
    """Trivially valid — for content with no external dependencies."""

    def verify(self, now_ms: float, content: bytes) -> VerifierResult:
        return VerifierResult(Verdict.VALID)


class AlwaysInvalidVerifier(Verifier):
    """Trivially invalid — forces a refetch on every access (testing)."""

    def verify(self, now_ms: float, content: bytes) -> VerifierResult:
        return VerifierResult(Verdict.INVALID)


class TTLVerifier(Verifier):
    """HTTP-style time-to-live: valid until ``issued + ttl``.

    This is the "one TTL-based verifier" whose creation cost Table 1's
    miss column includes, and the WWW verifier example of §3.
    """

    invalidation_label = "source"

    def __init__(self, issued_ms: float, ttl_ms: float, cost_ms: float = 0.01) -> None:
        super().__init__(cost_ms)
        if ttl_ms < 0:
            raise VerifierError(f"TTL must be non-negative: {ttl_ms}")
        self.issued_ms = issued_ms
        self.ttl_ms = ttl_ms

    @property
    def expires_ms(self) -> float:
        """Absolute virtual expiry instant."""
        return self.issued_ms + self.ttl_ms

    def verify(self, now_ms: float, content: bytes) -> VerifierResult:
        if now_ms < self.expires_ms:
            return VerifierResult(Verdict.VALID)
        return VerifierResult(Verdict.INVALID)


class ModificationTimeVerifier(Verifier):
    """Polls a source's last-modification time, as a filesystem
    bit-provider's verifier does in §3.

    *probe* returns the source's current mtime (virtual ms); the entry is
    valid while it matches the mtime observed at fill time.  Polling a
    repository is not free, so the default cost is higher than a local
    TTL check.
    """

    invalidation_label = "source"

    def __init__(
        self,
        probe: Callable[[], float],
        observed_mtime_ms: float,
        cost_ms: float = 0.5,
    ) -> None:
        super().__init__(cost_ms)
        self._probe = probe
        self.observed_mtime_ms = observed_mtime_ms

    def verify(self, now_ms: float, content: bytes) -> VerifierResult:
        current = self._probe()
        if current == self.observed_mtime_ms:
            return VerifierResult(Verdict.VALID)
        return VerifierResult(Verdict.INVALID)


class PredicateVerifier(Verifier):
    """Wraps an arbitrary ``(now_ms, content) → bool`` predicate.

    The general-purpose hook properties use to express document-specific
    validity conditions without defining a new class.
    """

    def __init__(
        self,
        predicate: Callable[[float, bytes], bool],
        cost_ms: float = 0.05,
        label: str = "predicate",
    ) -> None:
        super().__init__(cost_ms)
        self._predicate = predicate
        self.label = label

    def verify(self, now_ms: float, content: bytes) -> VerifierResult:
        if self._predicate(now_ms, content):
            return VerifierResult(Verdict.VALID)
        return VerifierResult(Verdict.INVALID)


class CompositeVerifier(Verifier):
    """All-of composition for multi-source documents.

    "Verifiers can also serve documents that are composed of multiple
    sources, like news summaries constructed from several web sites; in
    that case, verifiers can check the consistency of each of the
    sources." (§3)  The composite is valid only when every part is; its
    cost is the sum of part costs (each part is actually executed, so
    per-part execution counts stay truthful).  A part returning
    ``REVALIDATED`` demotes the composite to ``INVALID`` — patching a
    fragment of a composed document cannot be applied locally.
    """

    def __init__(self, parts: Sequence[Verifier]) -> None:
        super().__init__(cost_ms=sum(p.cost_ms for p in parts))
        if not parts:
            raise VerifierError("composite verifier needs at least one part")
        self.parts = list(parts)

    def verify(self, now_ms: float, content: bytes) -> VerifierResult:
        for part in self.parts:
            result = part.run(now_ms, content)
            if result.verdict is not Verdict.VALID:
                return VerifierResult(Verdict.INVALID)
        return VerifierResult(Verdict.VALID)


class ThresholdVerifier(Verifier):
    """Significant-change verifier with in-place patching.

    Models §3's "financial portfolio page" example: *observe* samples the
    live value (e.g. a stock quote); while the relative drift from the
    value at fill time stays below *threshold_fraction* the entry stays
    valid.  Beyond the threshold, if a *patcher* is supplied the verifier
    rewrites the cached content with the fresh value and reports
    :attr:`Verdict.REVALIDATED`; otherwise it invalidates.
    """

    def __init__(
        self,
        observe: Callable[[], float],
        baseline: float,
        threshold_fraction: float,
        patcher: Callable[[bytes, float], bytes] | None = None,
        cost_ms: float = 0.2,
    ) -> None:
        super().__init__(cost_ms)
        if threshold_fraction < 0:
            raise VerifierError(
                f"threshold must be non-negative: {threshold_fraction}"
            )
        self._observe = observe
        self.baseline = baseline
        self.threshold_fraction = threshold_fraction
        self._patcher = patcher

    def _drift(self, current: float) -> float:
        if self.baseline == 0:
            return abs(current)
        return abs(current - self.baseline) / abs(self.baseline)

    def verify(self, now_ms: float, content: bytes) -> VerifierResult:
        current = self._observe()
        if self._drift(current) <= self.threshold_fraction:
            return VerifierResult(Verdict.VALID)
        if self._patcher is None:
            return VerifierResult(Verdict.INVALID)
        patched = self._patcher(content, current)
        self.baseline = current
        return VerifierResult(Verdict.REVALIDATED, patched_content=patched)
