"""The unified cache instrumentation bus.

The monolithic cache mutated :class:`~repro.cache.stats.CacheStats`
counters inline at ~40 scattered sites, which made per-mechanism
accounting impossible to extend: adding one observable meant touching
the manager.  The pipelined cache instead has every stage emit
structured :class:`StageEvent` records — stage name, (document, user)
key, outcome label, virtual-clock start/end — onto an
:class:`InstrumentationBus`, and everything downstream is a subscriber:

* :class:`StatsProjection` derives today's :class:`CacheStats` counters
  from the event stream (byte-identical to the pre-pipeline inline
  mutation — the equivalence tests pin this);
* :class:`BusStatsProjection` does the same for the invalidation bus's
  :class:`~repro.cache.notifiers.BusStats`;
* :class:`StageRecorder` aggregates count/latency per (stage, outcome),
  giving the trace runner and benches their per-stage breakdown for
  free.

Events are emitted synchronously (subscribers run inline at the emit
site) and timing comes from the virtual clock only, so instrumentation
never perturbs simulated time or fault-injection draws.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field
from typing import Any, Callable

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.stats import CacheStats
    from repro.ids import DocumentId, UserId

__all__ = [
    "StageEvent",
    "InstrumentationBus",
    "StageRecorder",
    "StatsProjection",
    "BusStatsProjection",
    "ConcurrencyStats",
    "ConcurrencyStatsProjection",
    "OverloadStats",
    "OverloadStatsProjection",
    "STAGE_ORDER",
]

#: Canonical display order for breakdown tables: read-pipeline stages,
#: write-pipeline stages, then auxiliary event sources.
STAGE_ORDER = (
    "read",
    "dirty-flush",
    "lookup",
    "verifier-gate",
    "adoption",
    "storage",
    "memo",
    "coalesce",
    "fetch",
    "degradation",
    "admission",
    "write",
    "flush",
    "verifier",
    "quarantine",
    "containment",
    "eviction",
    "invalidation",
    "notifier",
    "forward",
    "prefetch",
    "staleness",
    "bus",
    "bus-loss",
    "channel",
    "lease",
    "resync",
    "journal",
    "crash",
    "overload",
    "deadline",
    "hedge",
    "health",
)


@dataclass(frozen=True, slots=True)
class StageEvent:
    """One structured observation emitted by a cache stage.

    A hot type: one is built per observable step of every access, so it
    is slotted (no per-instance ``__dict__``) and emit sites skip
    construction entirely when the bus has no subscribers.
    """

    stage: str
    outcome: str
    document_id: "DocumentId | None" = None
    user_id: "UserId | None" = None
    started_ms: float = 0.0
    ended_ms: float = 0.0
    payload: dict[str, Any] = field(default_factory=dict)

    @property
    def elapsed_ms(self) -> float:
        """Virtual time the observed work took."""
        return self.ended_ms - self.started_ms


class InstrumentationBus:
    """Synchronous fan-out of stage events to subscribers.

    The subscriber collection is copy-on-write: ``subscribe`` and
    ``unsubscribe`` *replace* an immutable tuple rather than mutating a
    list in place, and ``emit`` iterates whatever tuple it captured.
    Under the concurrent scheduler a stage callback may subscribe or
    unsubscribe mid-emit (e.g. a probe detaching itself when a batch
    finishes) while another read is delivering events at a suspension
    point; with a shared mutable list that is the classic
    mutated-during-iteration race — skipped or double-delivered events.
    With copy-on-write, an in-progress emit simply finishes against the
    snapshot it started with (see DESIGN.md §3.3).
    """

    def __init__(self) -> None:
        self._subscribers: tuple[Callable[[StageEvent], None], ...] = ()

    @property
    def subscribers(self) -> tuple[Callable[[StageEvent], None], ...]:
        """The current immutable subscriber tuple.

        Copy-on-write means the tuple object is *replaced* whenever the
        subscription set changes, so holding a reference and comparing
        by identity is an exact (and O(1)) "has anything changed since
        I looked" test — the fast read lane's eligibility check.
        """
        return self._subscribers

    @property
    def has_subscribers(self) -> bool:
        """True when at least one subscriber would receive an emit.

        Emit sites consult this *before* constructing a
        :class:`StageEvent`, so an unobserved bus costs one attribute
        load and a truth test per would-be event.
        """
        return bool(self._subscribers)

    def __bool__(self) -> bool:
        return bool(self._subscribers)

    def subscribe(self, subscriber: Callable[[StageEvent], None]) -> None:
        """Register a subscriber; it runs inline on every emit."""
        self._subscribers = self._subscribers + (subscriber,)

    def unsubscribe(self, subscriber: Callable[[StageEvent], None]) -> None:
        """Remove the first matching subscriber (no-op if absent).

        Matches by equality, not identity — bound methods compare equal
        across accesses even though each access builds a fresh object.
        """
        subscribers = list(self._subscribers)
        if subscriber in subscribers:
            subscribers.remove(subscriber)
            self._subscribers = tuple(subscribers)

    def emit(self, event: StageEvent) -> None:
        """Deliver one event to every subscriber, in subscription order.

        Binds the tuple once: subscriptions changed by a subscriber (or
        by an interleaved read) take effect from the *next* emit.
        """
        for subscriber in self._subscribers:
            subscriber(event)


@dataclass(slots=True)
class StageCell:
    """Aggregate for one (stage, outcome) pair."""

    count: int = 0
    elapsed_ms: float = 0.0

    @property
    def mean_ms(self) -> float:
        """Mean virtual latency per event (0.0 when empty)."""
        return self.elapsed_ms / self.count if self.count else 0.0


class StageRecorder:
    """Aggregates events into a per-stage outcome + timing breakdown."""

    def __init__(self) -> None:
        self.cells: dict[tuple[str, str], StageCell] = {}

    def __call__(self, event: StageEvent) -> None:
        cell = self.cells.get((event.stage, event.outcome))
        if cell is None:
            cell = self.cells[(event.stage, event.outcome)] = StageCell()
        cell.count += 1
        cell.elapsed_ms += event.elapsed_ms

    def merge(self, other: "StageRecorder") -> None:
        """Fold another recorder's cells into this one (fleet reporting)."""
        for key, cell in other.cells.items():
            mine = self.cells.get(key)
            if mine is None:
                mine = self.cells[key] = StageCell()
            mine.count += cell.count
            mine.elapsed_ms += cell.elapsed_ms

    def rows(self) -> list[tuple[str, str, int, float, float]]:
        """(stage, outcome, count, total_ms, mean_ms), canonical order."""
        def order(key: tuple[str, str]) -> tuple[int, str, str]:
            stage, outcome = key
            try:
                rank = STAGE_ORDER.index(stage)
            except ValueError:
                rank = len(STAGE_ORDER)
            return (rank, stage, outcome)

        return [
            (stage, outcome, cell.count, cell.elapsed_ms, cell.mean_ms)
            for (stage, outcome), cell in sorted(
                self.cells.items(), key=lambda item: order(item[0])
            )
        ]

    def render(self, title: str | None = None) -> str:
        """Plain-text breakdown table (for the trace runner and benches)."""
        lines = []
        if title:
            lines.append(title)
        header = (
            f"{'stage':<14} {'outcome':<27} {'count':>7} "
            f"{'total ms':>12} {'mean ms':>10}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for stage, outcome, count, total, mean in self.rows():
            lines.append(
                f"{stage:<14} {outcome:<27} {count:>7} "
                f"{total:>12.2f} {mean:>10.3f}"
            )
        if len(lines) == (2 if not title else 3):
            lines.append("(no events recorded)")
        return "\n".join(lines)


class StatsProjection:
    """Derives the legacy :class:`CacheStats` counters from stage events.

    One handler per (stage, outcome) family; the mapping below is the
    single place where event vocabulary meets counter names.  Float
    accumulators (latencies, verifier cost, retry delay) are added in
    emission order, which equals the old inline-mutation order — so the
    derived stats are bit-for-bit what the monolith produced.
    """

    #: Read dispositions served from the entry table (everything else a
    #: terminal "read" event reports is a miss).
    _HIT_DISPOSITIONS = frozenset({"hit", "revalidated"})

    def __init__(self, stats: "CacheStats") -> None:
        self.stats = stats

    def __call__(self, event: StageEvent) -> None:
        handler = getattr(self, "_on_" + event.stage.replace("-", "_"), None)
        if handler is not None:
            handler(event)

    # -- terminal read accounting -------------------------------------------

    def _on_read(self, event: StageEvent) -> None:
        stats = self.stats
        if event.outcome in self._HIT_DISPOSITIONS:
            stats.hits += 1
            stats.hit_latency_ms += event.elapsed_ms
            stats.bytes_served_from_cache += event.payload.get("bytes", 0)
        else:
            stats.misses += 1
            stats.miss_latency_ms += event.elapsed_ms

    # -- read-pipeline stages -------------------------------------------------

    def _on_verifier(self, event: StageEvent) -> None:
        stats = self.stats
        if event.outcome == "executed":
            stats.verifier_executions += 1
            stats.verifier_cost_ms += event.payload["cost_ms"]
        elif event.outcome == "invalidated":
            stats.verifier_invalidations += 1
        elif event.outcome == "revalidated":
            stats.verifier_revalidations += 1

    def _on_quarantine(self, event: StageEvent) -> None:
        if event.outcome == "added":
            self.stats.quarantined_verifiers += 1
        elif event.outcome == "forced-miss":
            self.stats.quarantine_forced_misses += 1

    def _on_bus_loss(self, event: StageEvent) -> None:
        if event.outcome == "detected":
            self.stats.dropped_notifier_detected += 1

    def _on_adoption(self, event: StageEvent) -> None:
        if event.outcome == "adopted":
            self.stats.sibling_adoptions += 1

    def _on_fetch(self, event: StageEvent) -> None:
        stats = self.stats
        if event.outcome == "failed":
            stats.fetch_failures += 1
        elif event.outcome == "retry":
            stats.retries += 1
            stats.retry_delay_ms += event.payload["delay_ms"]

    def _on_degradation(self, event: StageEvent) -> None:
        stats = self.stats
        if event.outcome == "bypassed":
            stats.backing_bypasses += 1
            stats.degraded_serves += 1
        elif event.outcome == "stale-served":
            stats.stale_served_on_error += 1
            stats.degraded_serves += 1
        elif event.outcome == "stale-rejected":
            stats.stale_serve_rejected += 1

    def _on_admission(self, event: StageEvent) -> None:
        if event.outcome == "filled":
            self.stats.bytes_filled += event.payload["bytes"]
        elif event.outcome == "uncacheable":
            self.stats.uncacheable_reads += 1

    def _on_eviction(self, event: StageEvent) -> None:
        if event.outcome == "evicted":
            self.stats.evictions += 1

    def _on_invalidation(self, event: StageEvent) -> None:
        self.stats.record_invalidation(event.payload["reason"])

    def _on_notifier(self, event: StageEvent) -> None:
        if event.outcome == "delivered":
            self.stats.notifier_deliveries += 1

    def _on_forward(self, event: StageEvent) -> None:
        if event.outcome == "read":
            self.stats.forwarded_reads += 1
        elif event.outcome == "write":
            self.stats.forwarded_writes += 1

    def _on_staleness(self, event: StageEvent) -> None:
        if event.outcome == "stale-hit":
            self.stats.stale_hits += 1

    def _on_prefetch(self, event: StageEvent) -> None:
        if event.outcome == "requested":
            self.stats.prefetch_requests += 1
        elif event.outcome == "filled":
            self.stats.prefetch_fills += 1
        elif event.outcome == "hit":
            self.stats.prefetched_hits += 1

    # -- write-pipeline stages -------------------------------------------------

    def _on_write(self, event: StageEvent) -> None:
        if event.outcome == "write-through":
            self.stats.writes_through += 1
        elif event.outcome == "write-back":
            self.stats.writes_backed += 1

    def _on_flush(self, event: StageEvent) -> None:
        if event.outcome == "flushed":
            self.stats.flushes += 1
        elif event.outcome == "failed":
            self.stats.flush_failures += 1


@dataclass(slots=True)
class ConcurrencyStats:
    """Counters for the single-flight coalescing plane.

    ``flights_led`` counts reads that registered a flight (one fetch +
    one chain execution each); ``follows`` counts suspensions on
    another read's flight — each one is a provider fetch and a chain
    execution that did *not* happen.  ``promotions`` counts followers
    that woke from a failed leader and led their own fetch;
    ``bailed_contained`` / ``bailed_capacity`` count misses that
    declined to coalesce (open breaker on the chain / follower budget
    exhausted) and fetched for themselves.
    """

    flights_led: int = 0
    follows: int = 0
    promotions: int = 0
    bailed_contained: int = 0
    bailed_capacity: int = 0

    @property
    def fetches_saved(self) -> int:
        """Provider fetches avoided by coalescing (follows that never
        re-led: a promotion re-runs the fetch it was spared)."""
        return max(0, self.follows - self.promotions)


class ConcurrencyStatsProjection:
    """Derives :class:`ConcurrencyStats` from ``coalesce`` events."""

    def __init__(self) -> None:
        self.stats = ConcurrencyStats()

    def __call__(self, event: StageEvent) -> None:
        if event.stage != "coalesce":
            return
        stats = self.stats
        if event.outcome == "led":
            stats.flights_led += 1
        elif event.outcome == "followed":
            stats.follows += 1
        elif event.outcome == "promoted":
            stats.promotions += 1
        elif event.outcome == "bailed-contained":
            stats.bailed_contained += 1
        elif event.outcome == "bailed-capacity":
            stats.bailed_capacity += 1


@dataclass(slots=True)
class OverloadStats:
    """Counters for the overload layer (deadlines, shedding, hedging).

    ``admitted`` / ``shed_*`` come from the admission gate at the top
    of the read pipeline; shed counts are split by priority class so
    the defining overload property — BULK sheds before QOS, CRITICAL
    never sheds — is directly assertable.  ``deadline_exceeded`` counts
    reads whose budget ran out *before* the fetch began (they degrade
    via serve-stale or fail, but never start work nobody will wait
    for); ``deadline_late`` counts fetches that finished past their
    deadline — served, because the bytes were already paid for.
    ``deadline_violations`` is the invariant counter the CI gate pins
    at zero: work *started* past an expired deadline, impossible by
    construction of the fetch gate.  Hedge and health counters are fed
    by the cluster layer.
    """

    admitted: int = 0
    shed_bulk: int = 0
    shed_qos: int = 0
    shed_critical: int = 0
    deadline_exceeded: int = 0
    deadline_late: int = 0
    deadline_skips: int = 0
    deadline_violations: int = 0
    hedges_launched: int = 0
    hedges_won: int = 0
    hedges_lost: int = 0
    failovers: int = 0
    recoveries: int = 0

    @property
    def shed(self) -> int:
        """Total reads refused by admission control."""
        return self.shed_bulk + self.shed_qos + self.shed_critical

    def shed_ratio(self) -> float:
        """Fraction of gated reads that were shed (0.0 when idle)."""
        total = self.admitted + self.shed
        return self.shed / total if total else 0.0


class OverloadStatsProjection:
    """Derives :class:`OverloadStats` from the overload-layer stages."""

    _STAGES = frozenset({"overload", "deadline", "hedge", "health"})

    def __init__(self) -> None:
        self.stats = OverloadStats()

    def __call__(self, event: StageEvent) -> None:
        if event.stage not in self._STAGES:
            return
        stats = self.stats
        if event.stage == "overload":
            if event.outcome == "admitted":
                stats.admitted += 1
            elif event.outcome == "shed":
                priority = event.payload.get("priority")
                if priority == "bulk":
                    stats.shed_bulk += 1
                elif priority == "qos":
                    stats.shed_qos += 1
                else:
                    stats.shed_critical += 1
        elif event.stage == "deadline":
            if event.outcome == "exceeded":
                stats.deadline_exceeded += 1
            elif event.outcome == "late":
                stats.deadline_late += 1
            elif event.outcome == "skipped":
                stats.deadline_skips += 1
            elif event.outcome == "violated":
                stats.deadline_violations += 1
        elif event.stage == "hedge":
            if event.outcome == "launched":
                stats.hedges_launched += 1
            elif event.outcome == "won":
                stats.hedges_won += 1
            elif event.outcome == "lost":
                stats.hedges_lost += 1
        elif event.stage == "health":
            if event.outcome == "failover":
                stats.failovers += 1
            elif event.outcome == "recovered":
                stats.recoveries += 1


class BusStatsProjection:
    """Derives the invalidation bus's ``BusStats`` from ``bus`` events."""

    def __init__(self, stats) -> None:
        self.stats = stats

    def __call__(self, event: StageEvent) -> None:
        if event.stage != "bus":
            return
        stats = self.stats
        if event.outcome == "delivered":
            stats.deliveries += 1
            stats.delivery_cost_ms += event.payload.get("cost_ms", 0.0)
        elif event.outcome == "dropped":
            stats.dropped += 1
        elif event.outcome == "lost":
            stats.lost += 1
        elif event.outcome == "delayed":
            stats.delayed += 1
            stats.delay_ms_total += event.payload.get("delay_ms", 0.0)
