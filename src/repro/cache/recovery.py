"""Consistency recovery: leases, sequenced channels, resync, journal.

The notifier architecture of §3 has a silent failure mode the paper
acknowledges but the base machinery cannot see: a notification that is
*lost* leaves the cache entry it should have killed alive until a
verifier happens to catch it — and entries without verifiers stay stale
forever.  A crash has the write-back twin: buffered dirty writes the
application believes durable vanish with the cache's memory.  This
module closes both holes with three cooperating mechanisms, all opt-in
via a :class:`~repro.cache.policies.RecoveryPolicy` (a cache built
without one behaves byte-identically to the pre-recovery code):

* **Sequenced invalidation channels** — the bus stamps every delivery
  attempt to a recovery-enabled cache with a per-(server, cache)
  ``(epoch, sequence)`` pair; :class:`ConsistencyRecoveryManager`
  interposes on the cache's sink and flags the channel *suspect* the
  moment an arriving sequence number jumps (a loss happened in
  transit).  Trailing losses — where no later delivery ever arrives to
  expose the jump — are caught at lease renewal by comparing the
  receiver's expectation against the bus's send-side high-water mark.
* **AFS-style leases** on the notifier registration, renewed at half
  the lease term on the virtual clock.  A renewal that cannot reach the
  bus (partition window) leaves the lease to lapse, which is itself
  treated as evidence of missed invalidations: the channel was dark, so
  anything could have happened.
* **Anti-entropy resync** — when the channel is suspect or the lease
  lapsed, every cached entry is reconciled against live server state
  and divergent entries are dropped with an invalidation *attributed to
  the paper's consistency class* that explains the divergence (source
  modified / properties changed / property order changed / external
  dependency changed).  The resync then starts a fresh channel epoch,
  so prior losses are forgotten and sequencing restarts clean.
* **A write-back journal** — every buffered dirty write is appended to
  an in-order journal before the write is acknowledged; a crash wipes
  the entry table and dirty buffer, and restart replays the unflushed
  journal suffix back into the dirty buffer idempotently (double replay
  restores nothing twice, and a later flush pushes each write exactly
  once).

Everything observable is emitted as stage events (``channel``,
``lease``, ``resync``, ``journal``, ``crash``) on the cache's
instrumentation bus; :class:`RecoveryStats` is derived from those
events by :class:`RecoveryStatsProjection`, deliberately *separate*
from :class:`~repro.cache.stats.CacheStats` so the golden-digest
equivalence tests keep pinning the legacy counters unchanged.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.cache.consistency import InvalidationReason
from repro.cache.instrumentation import StageEvent
from repro.cache.verifiers import Verdict
from repro.errors import (
    LeaseExpiredError,
    NotificationLostError,
    PlacelessError,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from typing import Callable

    from repro.cache.consistency import Invalidation
    from repro.cache.core import CacheCore
    from repro.cache.entry import CacheEntry, EntryKey
    from repro.cache.policies import RecoveryPolicy
    from repro.placeless.reference import DocumentReference
    from repro.sim.clock import ScheduledCall

__all__ = [
    "NotifierLease",
    "JournalRecord",
    "WriteBackJournal",
    "RecoveryStats",
    "RecoveryStatsProjection",
    "ConsistencyRecoveryManager",
]


@dataclass
class NotifierLease:
    """One lease on a cache's notifier registration.

    The server promises to deliver invalidations only while the lease is
    live; a cache holding a lapsed lease must assume it missed
    notifications (the AFS callback-with-timeout contract).
    """

    term_ms: float
    granted_at_ms: float
    expires_at_ms: float

    @classmethod
    def grant(cls, term_ms: float, now_ms: float) -> "NotifierLease":
        """Issue a fresh lease starting now."""
        return cls(
            term_ms=term_ms,
            granted_at_ms=now_ms,
            expires_at_ms=now_ms + term_ms,
        )

    def renew(self, now_ms: float) -> None:
        """Extend the lease a full term from *now*."""
        self.expires_at_ms = now_ms + self.term_ms

    def lapsed(self, now_ms: float) -> bool:
        """True once the lease has expired un-renewed."""
        return now_ms >= self.expires_at_ms

    def check(self, now_ms: float) -> None:
        """Raise :class:`LeaseExpiredError` if the lease has lapsed."""
        if self.lapsed(now_ms):
            raise LeaseExpiredError(
                f"notifier lease lapsed at t={self.expires_at_ms:.1f}ms "
                f"(now t={now_ms:.1f}ms, term {self.term_ms:.0f}ms)"
            )


@dataclass
class JournalRecord:
    """One journalled write-back: the bytes one buffered write promised."""

    key: "EntryKey"
    reference: "DocumentReference"
    content: bytes
    appended_at_ms: float
    flushed: bool = False


class WriteBackJournal:
    """Append-only journal of buffered write-backs, for crash recovery.

    The journal is appended *before* the write is acknowledged to the
    application, so "acknowledged" implies "journalled".  Flush marks
    are recorded per key (a flush pushes the key's latest buffered
    bytes, superseding any earlier buffered versions of the same key),
    and replay restores, for each key, the latest unflushed record —
    skipping keys already dirty, which makes double replay a no-op.
    """

    def __init__(self) -> None:
        self.records: list[JournalRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    def append(
        self,
        key: "EntryKey",
        reference: "DocumentReference",
        content: bytes,
        now_ms: float,
    ) -> JournalRecord:
        """Journal one buffered write before it is acknowledged.

        A duplicated tail is coalesced: re-appending the tail record's
        exact bytes for the same (still unflushed) key returns the tail
        instead of journalling twice.  The disk-spill path produces
        exactly this shape when an fsync is reported lost and the spill
        retries — the retry must not make replay restore the write
        twice, nor inflate the unflushed backlog.
        """
        if self.records:
            tail = self.records[-1]
            if (
                tail.key == key
                and not tail.flushed
                and tail.content == bytes(content)
            ):
                return tail
        record = JournalRecord(
            key=key,
            reference=reference,
            content=bytes(content),
            appended_at_ms=now_ms,
        )
        self.records.append(record)
        return record

    def mark_flushed(self, key: "EntryKey") -> int:
        """A flush for *key* reached the server; retire its records.

        Every unflushed record for the key is marked (the flush wrote
        the latest buffered bytes, which supersede the earlier ones).
        Returns how many records were newly marked.
        """
        marked = 0
        for record in self.records:
            if record.key == key and not record.flushed:
                record.flushed = True
                marked += 1
        return marked

    def unflushed(self) -> dict["EntryKey", JournalRecord]:
        """Latest unflushed record per key, in journal order."""
        latest: dict["EntryKey", JournalRecord] = {}
        for record in self.records:
            if not record.flushed:
                latest[record.key] = record
        return latest

    def replay_into(self, dirty: dict) -> tuple[int, int]:
        """Restore unflushed writes into a (post-crash) dirty buffer.

        Returns ``(replayed, skipped)``: keys already dirty are skipped,
        so replaying twice restores nothing twice.
        """
        replayed = 0
        skipped = 0
        for key, record in self.unflushed().items():
            if key in dirty:
                skipped += 1
                continue
            dirty[key] = (record.reference, record.content)
            replayed += 1
        return replayed, skipped


@dataclass
class RecoveryStats:
    """Counters for the recovery layer, derived from stage events.

    Deliberately separate from :class:`~repro.cache.stats.CacheStats`:
    the pipeline-equivalence tests pin a digest over the legacy counter
    set, and recovery must not perturb it.
    """

    lease_grants: int = 0
    lease_renewals: int = 0
    lease_renewals_blocked: int = 0
    lease_lapses: int = 0
    #: Inline sequence-jump gaps vs. gaps only the renewal-time
    #: checkpoint comparison exposed (trailing losses).
    gaps_detected: int = 0
    checkpoint_gaps: int = 0
    #: Total notifications proven missing across both detection paths.
    notifications_missed: int = 0
    late_deliveries: int = 0
    epoch_bumps: int = 0
    resyncs: int = 0
    resync_repairs: int = 0
    #: Repairs attributed to the paper's consistency classes (1-4).
    repairs_by_class: dict[int, int] = field(default_factory=dict)
    journal_appends: int = 0
    journal_flush_marks: int = 0
    journal_replayed: int = 0
    journal_replays_skipped: int = 0
    crashes: int = 0
    restarts: int = 0


class RecoveryStatsProjection:
    """Derives :class:`RecoveryStats` from recovery stage events."""

    def __init__(self, stats: RecoveryStats) -> None:
        self.stats = stats

    def __call__(self, event: StageEvent) -> None:
        handler = getattr(self, "_on_" + event.stage, None)
        if handler is not None:
            handler(event)

    def _on_channel(self, event: StageEvent) -> None:
        stats = self.stats
        if event.outcome == "gap":
            stats.gaps_detected += 1
            stats.notifications_missed += event.payload.get("missed", 0)
        elif event.outcome == "checkpoint-gap":
            stats.checkpoint_gaps += 1
            stats.notifications_missed += event.payload.get("missed", 0)
        elif event.outcome == "late":
            stats.late_deliveries += 1
        elif event.outcome == "epoch":
            stats.epoch_bumps += 1

    def _on_lease(self, event: StageEvent) -> None:
        stats = self.stats
        if event.outcome == "granted":
            stats.lease_grants += 1
        elif event.outcome == "renewed":
            stats.lease_renewals += 1
        elif event.outcome == "blocked":
            stats.lease_renewals_blocked += 1
        elif event.outcome == "lapsed":
            stats.lease_lapses += 1

    def _on_resync(self, event: StageEvent) -> None:
        stats = self.stats
        if event.outcome == "started":
            stats.resyncs += 1
        elif event.outcome == "repaired":
            stats.resync_repairs += 1
            cls = event.payload.get("invalidation_class", 0)
            stats.repairs_by_class[cls] = (
                stats.repairs_by_class.get(cls, 0) + 1
            )

    def _on_journal(self, event: StageEvent) -> None:
        stats = self.stats
        if event.outcome == "appended":
            stats.journal_appends += 1
        elif event.outcome == "flush-marked":
            stats.journal_flush_marks += 1
        elif event.outcome == "replayed":
            stats.journal_replayed += 1
        elif event.outcome == "replay-skipped":
            stats.journal_replays_skipped += 1

    def _on_crash(self, event: StageEvent) -> None:
        if event.outcome == "crashed":
            self.stats.crashes += 1
        elif event.outcome == "restarted":
            self.stats.restarts += 1


class ConsistencyRecoveryManager:
    """Per-cache coordinator for leases, gap detection, resync, journal.

    Sits between the invalidation bus and the cache's normal sink:
    deliveries pass through :meth:`receive` (which tracks the sequence
    stream) on their way to ``apply_invalidation``.  A self-rescheduling
    virtual-clock callback renews the lease at half-term intervals; a
    renewal that finds the channel suspect — or that could not run
    because the bus was partitioned and the lease lapsed — triggers
    :meth:`resync`.
    """

    def __init__(
        self,
        core: "CacheCore",
        policy: "RecoveryPolicy",
        apply_invalidation: "Callable[[Invalidation], None]",
    ) -> None:
        self.core = core
        self.policy = policy
        self._apply = apply_invalidation
        self.stats = RecoveryStats()
        core.instrumentation.subscribe(RecoveryStatsProjection(self.stats))
        self.journal: WriteBackJournal | None = (
            WriteBackJournal() if policy.journal_writes else None
        )
        #: Live references for cached entries, so resync can reconcile
        #: against server state without a directory lookup.
        self._references: dict["EntryKey", "DocumentReference"] = {}
        #: Receiver-side (epoch, next expected sequence) for the channel.
        self._expected: tuple[int, int] | None = None
        #: True once a gap (inline or checkpoint) was detected and not
        #: yet repaired by a resync.
        self.suspect = False
        self.lease: NotifierLease | None = None
        self._tick_handle: "ScheduledCall | None" = None
        self._down = False
        if policy.sequence_invalidations:
            channel = core.bus.enable_sequencing(core.cache_id)
            self._expected = (channel.epoch, channel.next_sequence)
            core.emit("channel", "sequenced")
        self._grant_lease()

    # -- lease lifecycle -------------------------------------------------------

    def _grant_lease(self) -> None:
        now = self.core.ctx.clock.now_ms
        self.lease = NotifierLease.grant(self.policy.lease_term_ms, now)
        self.core.emit(
            "lease", "granted", expires_at_ms=self.lease.expires_at_ms
        )
        self._schedule_tick()

    def _schedule_tick(self) -> None:
        """Queue the next half-term renewal tick on the virtual clock."""
        self._tick_handle = self.core.ctx.clock.call_after(
            self.policy.lease_term_ms / 2.0, self._lease_tick
        )

    def _lease_tick(self) -> None:
        """Renew the lease; detect trailing losses; resync if due."""
        if self._down:
            return
        core = self.core
        now = core.ctx.clock.now_ms
        lease = self.lease
        assert lease is not None
        lapsed = False
        plan = core.ctx.faults
        if plan is not None and plan.bus_partitioned(str(core.cache_id)):
            # The renewal cannot reach the bus.  The lease keeps its old
            # expiry; once that passes, the channel was provably dark.
            core.emit("lease", "blocked")
            if lease.lapsed(now):
                lapsed = True
                core.emit("lease", "lapsed", expired_at_ms=lease.expires_at_ms)
        else:
            if lease.lapsed(now):
                # Expired between ticks (e.g. while the cache was busy
                # past the expiry or after a long partition ended).
                lapsed = True
                core.emit("lease", "lapsed", expired_at_ms=lease.expires_at_ms)
            lease.renew(now)
            core.emit("lease", "renewed", expires_at_ms=lease.expires_at_ms)
            self._checkpoint_compare()
        if self.policy.resync_due(suspect=self.suspect, lapsed=lapsed):
            self.resync()
        self._schedule_tick()

    def _checkpoint_compare(self) -> None:
        """Compare our expectation against the bus's high-water mark.

        Piggybacked on successful renewals; this is what catches a
        *trailing* loss, where the dropped notification was the last one
        sent and no later delivery exists to expose the sequence jump.
        """
        if self._expected is None:
            return
        checkpoint = self.core.bus.channel_checkpoint(self.core.cache_id)
        if checkpoint is None:
            return
        epoch, next_sequence = checkpoint
        expected_epoch, expected_sequence = self._expected
        if epoch == expected_epoch and next_sequence > expected_sequence:
            missed = next_sequence - expected_sequence
            self.core.emit(
                "channel", "checkpoint-gap",
                missed=missed,
                expected=expected_sequence,
                high_water=next_sequence,
            )
            self._expected = (epoch, next_sequence)
            self.suspect = True

    # -- delivery interposition ------------------------------------------------

    def receive(self, invalidation: "Invalidation") -> None:
        """Bus sink: track the sequence stream, then apply normally."""
        if (
            self.policy.sequence_invalidations
            and invalidation.epoch is not None
            and invalidation.sequence is not None
        ):
            self._note_sequence(invalidation.epoch, invalidation.sequence)
        self._apply(invalidation)

    def _note_sequence(self, epoch: int, sequence: int) -> None:
        core = self.core
        if self._expected is None:
            self._expected = (epoch, sequence + 1)
            return
        expected_epoch, expected_sequence = self._expected
        if epoch < expected_epoch:
            # A delayed delivery from before the last resync's epoch
            # bump; the resync already reconciled whatever it reported.
            core.emit("channel", "late", epoch=epoch, sequence=sequence)
            return
        if epoch > expected_epoch:
            # Should not happen (epoch bumps are receiver-initiated),
            # but treat a surprise epoch as a total loss of tracking.
            core.emit(
                "channel", "gap",
                missed=sequence,
                expected=0,
                received=sequence,
                error=str(
                    NotificationLostError(
                        f"unexpected channel epoch {epoch} "
                        f"(expected {expected_epoch})"
                    )
                ),
            )
            self._expected = (epoch, sequence + 1)
            self.suspect = True
            return
        if sequence == expected_sequence:
            self._expected = (epoch, sequence + 1)
            return
        if sequence < expected_sequence:
            # Duplicate or out-of-order late arrival within the epoch.
            core.emit("channel", "late", epoch=epoch, sequence=sequence)
            return
        missed = sequence - expected_sequence
        core.emit(
            "channel", "gap",
            missed=missed,
            expected=expected_sequence,
            received=sequence,
            error=str(
                NotificationLostError(
                    f"sequence jumped {expected_sequence} -> {sequence}: "
                    f"{missed} notification(s) lost in transit"
                )
            ),
        )
        self._expected = (epoch, sequence + 1)
        self.suspect = True

    # -- anti-entropy resync ---------------------------------------------------

    def note_reference(
        self, key: "EntryKey", reference: "DocumentReference"
    ) -> None:
        """Fill hook: remember the live reference behind an entry."""
        self._references[key] = reference

    def resync(
        self,
        doomed: "typing.Callable[[CacheEntry], InvalidationReason | None]"
        " | None" = None,
    ) -> int:
        """Reconcile every cached entry against live server state.

        Divergent entries are dropped with an invalidation attributed to
        the paper consistency class that explains the divergence; the
        channel then starts a fresh epoch.  Returns the repair count.

        *doomed* generalizes the sweep for the cluster layer: evaluated
        before the divergence checks, a non-``None`` reason drops the
        entry through the same repair path with that attribution.  Ring
        rebalancing and shard loss hand in a predicate condemning
        entries whose keys no longer place on this shard, so topology
        repair reuses anti-entropy instead of growing a second path.
        """
        core = self.core
        core.emit("resync", "started", entries=len(core.entries))
        # A resync runs because this cache suspects it missed
        # invalidations — the memo's records are under the same
        # suspicion, so none of them may answer a miss afterwards.
        core.memo_purge("resync")
        repairs = 0
        for key, entry in list(core.entries.items()):
            reason = doomed(entry) if doomed is not None else None
            if reason is None:
                reference = self._reference_for(entry)
                if reference is None:
                    continue
                reason = self._divergence(reference, entry)
            if reason is None:
                continue
            core.drop(entry, reason, origin="resync")
            core.emit(
                "resync", "repaired", key=key,
                reason=reason.value,
                invalidation_class=reason.invalidation_class.value,
            )
            self._references.pop(key, None)
            repairs += 1
        if self.policy.sequence_invalidations:
            epoch, next_sequence = core.bus.bump_epoch(core.cache_id)
            self._expected = (epoch, next_sequence)
            core.emit("channel", "epoch", epoch=epoch)
        self.suspect = False
        core.emit("resync", "completed", repairs=repairs)
        return repairs

    def _reference_for(
        self, entry: "CacheEntry"
    ) -> "DocumentReference | None":
        reference = self._references.get(entry.key)
        if reference is not None:
            return reference
        try:
            reference = self.core.kernel.space(entry.key.user_id).get(
                entry.reference_id
            )
        except PlacelessError:
            # The reference (or its whole space) is gone; there is no
            # server state left to reconcile against.
            return None
        self._references[entry.key] = reference
        return reference

    def _divergence(
        self, reference: "DocumentReference", entry: "CacheEntry"
    ) -> InvalidationReason | None:
        """Why this entry diverges from server state, or ``None``.

        Checks in class order: the transformation chain first (classes
        2/3 — same signatures reordered is class 3, anything else class
        2), the raw source next (class 1, the out-of-band case a lost
        in-band notification also degenerates to), verifiers last
        (class 4, or class 1 for source-labelled verifiers).
        """
        core = self.core
        expected_chain = core.expected_chain_signature(reference)
        if expected_chain != entry.chain_signature:
            if sorted(expected_chain) == sorted(entry.chain_signature):
                return InvalidationReason.PROPERTY_REORDERED
            return InvalidationReason.PROPERTY_MODIFIED
        recorded_source = entry.policy_state.get("source_signature")
        if (
            recorded_source is not None
            and reference.base.provider.peek_signature() != recorded_source
        ):
            return InvalidationReason.SOURCE_UPDATED_OUT_OF_BAND
        if core.use_verifiers:
            content = core.store.get(entry.signature)
            now = core.ctx.clock.now_ms
            for verifier in entry.verifiers:
                core.ctx.charge(verifier.cost_ms)
                try:
                    result = verifier.run(now, content)
                except Exception:
                    return InvalidationReason.VERIFIER_FAILED
                if result.verdict is Verdict.INVALID:
                    if verifier.invalidation_label == "source":
                        return InvalidationReason.SOURCE_UPDATED_OUT_OF_BAND
                    return InvalidationReason.EXTERNAL_CHANGED
        return None

    # -- write-back journal ----------------------------------------------------

    def journal_append(
        self,
        key: "EntryKey",
        reference: "DocumentReference",
        content: bytes,
    ) -> None:
        """Buffer hook: journal a write before it is acknowledged."""
        if self.journal is None:
            return
        self.journal.append(
            key, reference, content, self.core.ctx.clock.now_ms
        )
        self.core.emit("journal", "appended", key=key, bytes=len(content))
        if self.core.l2 is not None:
            self.core.l2.spill_journal_append(key, reference, content)

    def journal_mark_flushed(self, key: "EntryKey") -> None:
        """Flush hook: the key's buffered bytes reached the server."""
        if self.journal is None:
            return
        marked = self.journal.mark_flushed(key)
        if marked:
            self.core.emit("journal", "flush-marked", key=key, records=marked)
        if self.core.l2 is not None:
            self.core.l2.spill_journal_flushed(key)

    def replay_journal(self) -> int:
        """Restore unflushed journalled writes into the dirty buffer."""
        if self.journal is None:
            return 0
        core = self.core
        before = dict(core.dirty)
        replayed, skipped = self.journal.replay_into(core.dirty)
        for key, record in self.journal.unflushed().items():
            if key in before:
                continue
            core.emit(
                "journal", "replayed", key=key, bytes=len(record.content)
            )
        for _ in range(skipped):
            core.emit("journal", "replay-skipped")
        return replayed

    # -- crash / restart -------------------------------------------------------

    def on_crash(self) -> None:
        """The cache's volatile state is gone; stop leasing until restart."""
        self._down = True
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None
        self._references.clear()

    def on_restart(self) -> int:
        """Recover after a crash: replay the journal, re-lease, resync.

        The entry table is empty so the resync repairs nothing, but it
        starts a fresh channel epoch — the restarted cache cannot know
        what it missed while down, so the old sequence expectation is
        abandoned rather than trusted.  Returns the replayed-write count.
        """
        self._down = False
        replayed = self.replay_journal()
        if self.policy.sequence_invalidations:
            channel = self.core.bus.enable_sequencing(self.core.cache_id)
            self._expected = (channel.epoch, channel.next_sequence)
            self.suspect = True
        self._grant_lease()
        if self.policy.resync_due(suspect=self.suspect, lapsed=True):
            self.resync()
        return replayed

    def stop(self) -> None:
        """Cancel the renewal tick (teardown hook for tests/benches)."""
        self._down = True
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None
