"""Pluggable cache policies, extracted from the manager monolith.

Three cross-cutting decisions used to be inlined in ``DocumentCache``;
each now sits behind a small protocol so alternatives can be swapped in
without touching the pipeline:

* :class:`AdmissionPolicy` — should fetched content enter the cache?
  The default (:class:`VoteAdmissionPolicy`) reproduces §3's behaviour:
  honour the read path's most-restrictive cacheability vote, refuse
  content larger than the whole cache.
* :class:`DegradationPolicy` — how far may the cache degrade when the
  world misbehaves?  Owns the serve-stale bounds, the
  bypass-failed-backing switch and the verifier-quarantine bookkeeping
  that PR 1 introduced (thresholds, per-(document, verifier-type)
  failure streaks).
* :class:`~repro.cache.replacement.ReplacementPolicy` — who leaves when
  space runs out; unchanged, re-exported here so the three policy seams
  share one import surface.
"""

from __future__ import annotations

import enum
import typing
from typing import Protocol, runtime_checkable

from repro.cache.containment import (
    BreakerConfig,
    BreakerRegistry,
    BreakerState,
    ExecutionBudget,
)
from repro.cache.replacement import GreedyDualSizePolicy, ReplacementPolicy
from repro.errors import CacheError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.entry import CacheEntry
    from repro.ids import DocumentId
    from repro.placeless.document import PathMeta

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "VoteAdmissionPolicy",
    "DegradationPolicy",
    "DefaultDegradationPolicy",
    "ContainmentPolicy",
    "DefaultContainmentPolicy",
    "MemoPolicy",
    "DefaultMemoPolicy",
    "ConcurrencyPolicy",
    "DefaultConcurrencyPolicy",
    "RecoveryPolicy",
    "DefaultRecoveryPolicy",
    "StoragePolicy",
    "DefaultStoragePolicy",
    "OverloadPolicy",
    "DefaultOverloadPolicy",
    "ReplacementPolicy",
    "GreedyDualSizePolicy",
]


class AdmissionDecision(enum.Enum):
    """What the admission policy decided about fetched content."""

    ADMIT = "admit"
    UNCACHEABLE = "uncacheable"
    OVERSIZE = "oversize"


@runtime_checkable
class AdmissionPolicy(Protocol):
    """Decides whether fetched content may fill the cache."""

    def decide(
        self, content: bytes, meta: "PathMeta", capacity_bytes: int
    ) -> AdmissionDecision:
        """Classify one fill candidate."""
        ...  # pragma: no cover - protocol


class VoteAdmissionPolicy:
    """§3 behaviour: the cacheability vote gates, whole-cache size caps."""

    def decide(
        self, content: bytes, meta: "PathMeta", capacity_bytes: int
    ) -> AdmissionDecision:
        if not meta.cacheability.allows_caching:
            return AdmissionDecision.UNCACHEABLE
        if len(content) > capacity_bytes:
            return AdmissionDecision.OVERSIZE
        return AdmissionDecision.ADMIT


@runtime_checkable
class DegradationPolicy(Protocol):
    """How far the cache may degrade while failures are in progress."""

    serve_stale_on_error: bool
    stale_serve_max_age_ms: float | None
    bypass_backing_on_error: bool

    def stale_age_acceptable(self, age_ms: float) -> bool:
        """May stale bytes of this age be served on fetch failure?"""
        ...  # pragma: no cover - protocol

    def note_verifier_failure(self, key: tuple["DocumentId", str]) -> bool:
        """Record one verifier raise; True when this newly quarantines."""
        ...  # pragma: no cover - protocol

    def note_verifier_success(self, key: tuple["DocumentId", str]) -> None:
        """A verifier ran clean; reset its failure streak."""
        ...  # pragma: no cover - protocol

    def is_quarantined(self, key: tuple["DocumentId", str]) -> bool:
        """Is this (document, verifier type) currently quarantined?"""
        ...  # pragma: no cover - protocol


@runtime_checkable
class ContainmentPolicy(Protocol):
    """Configuration seam for the containment layer.

    A cache constructed with a containment policy gets a
    :class:`~repro.cache.containment.ContainmentGuard` wrapped around
    the three untrusted-code seams (stream wrappers, verifiers,
    notifier callbacks).  ``None`` (the default) builds no guard and
    leaves the cache byte-identical to its uncontained behaviour.
    """

    #: Breaker tuning per seam (stream wrappers, verifiers, notifiers).
    wrapper_breaker: BreakerConfig
    verifier_breaker: BreakerConfig
    notifier_breaker: BreakerConfig
    #: Per-invocation execution caps, or ``None`` for no budgets.
    budget: ExecutionBudget | None

    def fallback(self, role: str) -> str:
        """Fallback for a tripped breaker, given the property's role.

        *role* is ``"optional"`` (the property does not transform read
        content) or ``"required"`` (it does).  Returns ``"skip"`` (serve
        without the property, marked degraded), ``"force-miss"`` (skip
        but never admit the untransformed result, so every access goes
        to the kernel) or ``"deny"`` (refuse with
        :class:`~repro.errors.CircuitOpenError`).
        """
        ...  # pragma: no cover - protocol


class DefaultContainmentPolicy:
    """One breaker configuration for all three seams + role fallbacks.

    Parameters
    ----------
    failure_threshold, probation_delay_ms, half_open_successes:
        The closed → open → half-open state machine tuning shared by
        every breaker (see :class:`~repro.cache.containment.BreakerConfig`).
    max_cost_ms, max_bytes:
        Per-invocation execution budgets; both ``None`` disables them.
    deny_required, deny_optional:
        Escalate the corresponding role's fallback from its default
        (force-miss for required transformers, skip for optional ones)
        to a typed denial.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        probation_delay_ms: float | None = 1_000.0,
        half_open_successes: int = 1,
        max_cost_ms: float | None = None,
        max_bytes: int | None = None,
        deny_required: bool = False,
        deny_optional: bool = False,
    ) -> None:
        config = BreakerConfig(
            failure_threshold=failure_threshold,
            probation_delay_ms=probation_delay_ms,
            half_open_successes=half_open_successes,
        )
        self.wrapper_breaker = config
        self.verifier_breaker = config
        self.notifier_breaker = config
        self.budget = (
            ExecutionBudget(max_cost_ms=max_cost_ms, max_bytes=max_bytes)
            if max_cost_ms is not None or max_bytes is not None
            else None
        )
        self.deny_required = deny_required
        self.deny_optional = deny_optional

    def fallback(self, role: str) -> str:
        if role == "required":
            return "deny" if self.deny_required else "force-miss"
        return "deny" if self.deny_optional else "skip"


@runtime_checkable
class MemoPolicy(Protocol):
    """Configuration seam for the transform memoization plane.

    A cache constructed with a memo policy gets a bounded
    :class:`~repro.cache.memo.TransformMemo` consulted by the read
    pipeline's memo stage: a miss whose ``(current source signature,
    chain fingerprint)`` pair was recorded by an earlier admission is
    answered with a signature-only adoption instead of a provider fetch
    plus a full property-chain execution.  ``None`` (the default) keeps
    the stage a strict no-op and the cache byte-identical to its
    unmemoized behaviour.
    """

    #: Maximum records the memo table holds (LRU beyond that).
    capacity: int
    #: Virtual cost of probing the repository's current source
    #: signature at consult time (a metadata-only exchange, the memo's
    #: analogue of the adoption handshake).
    probe_cost_ms: float
    #: Re-run a record's verifiers before serving it (the paper's
    #: class-(d) external conditions); ``False`` bypasses the memo for
    #: verifier-gated records instead of trusting them unverified.
    verify_on_serve: bool
    #: Remember UNCACHEABLE-voting chains so repeated misses skip the
    #: candidate machinery without ever serving from the memo.
    negative_cache: bool


class DefaultMemoPolicy:
    """Transform memoization with sensible bounds, off unless supplied.

    Parameters
    ----------
    capacity:
        LRU bound on the number of memo records.
    probe_cost_ms:
        Virtual cost charged per memo consult for the source-signature
        probe (compare ``ADOPTION_COST_MS``; both are metadata-only
        exchanges).
    verify_on_serve:
        Re-run recorded verifiers before serving a memoized output
        (default) instead of bypassing verifier-gated records.
    negative_cache:
        Negative-cache UNCACHEABLE-voting chains (default on).
    """

    def __init__(
        self,
        capacity: int = 1024,
        probe_cost_ms: float = 0.2,
        verify_on_serve: bool = True,
        negative_cache: bool = True,
    ) -> None:
        if capacity < 1:
            raise CacheError(f"memo capacity must be >= 1: {capacity}")
        if probe_cost_ms < 0:
            raise CacheError(
                f"probe_cost_ms must be non-negative: {probe_cost_ms}"
            )
        self.capacity = capacity
        self.probe_cost_ms = probe_cost_ms
        self.verify_on_serve = verify_on_serve
        self.negative_cache = negative_cache


@runtime_checkable
class ConcurrencyPolicy(Protocol):
    """Configuration seam for the concurrent read path.

    A cache constructed with a concurrency policy may drive read
    batches through an :class:`~repro.sim.scheduler.AsyncScheduler`
    (``DocumentCache.read_many``) and, when ``coalesce`` is on,
    single-flight concurrent misses: the pipeline's
    :class:`~repro.cache.pipeline.SingleFlightStage` shares one
    provider fetch and one property-chain execution among every
    concurrent requester of the same ``(document, user)`` key — and,
    via the transform-memo plane, the same ``(source signature, chain
    fingerprint)`` pair.  ``None`` (the default) keeps the stage a
    strict no-op, ``read_many`` sequential, and the cache
    byte-identical to its pre-concurrency behaviour.
    """

    #: Coalesce concurrent misses into single flights at all.
    coalesce: bool
    #: Additionally coalesce under the memo-plane key, sharing one
    #: chain execution among *different* users whose chains would
    #: produce identical bytes (requires a memo policy to have
    #: populated the context's probe results).
    coalesce_memo_plane: bool
    #: Budget bail-out: at most this many reads may park on one flight;
    #: excess reads fetch for themselves.  ``None`` for unbounded.
    max_followers: int | None


class DefaultConcurrencyPolicy:
    """Single-flight coalescing with sensible bounds.

    Parameters
    ----------
    coalesce:
        Coalesce concurrent misses (default on — constructing the
        policy at all is the opt-in; pass ``False`` for an ablation
        that runs the async scheduler with no coalescing).
    coalesce_memo_plane:
        Also coalesce under the ``(source signature, chain
        fingerprint)`` key (default on; only effective when the cache
        also has a memo policy, which supplies the probed pair).
    max_followers:
        Follower cap per flight (``None`` = unbounded, the default).
    """

    def __init__(
        self,
        coalesce: bool = True,
        coalesce_memo_plane: bool = True,
        max_followers: int | None = None,
    ) -> None:
        if max_followers is not None and max_followers < 1:
            raise CacheError(
                f"max_followers must be >= 1: {max_followers}"
            )
        self.coalesce = coalesce
        self.coalesce_memo_plane = coalesce_memo_plane
        self.max_followers = max_followers


@runtime_checkable
class RecoveryPolicy(Protocol):
    """Configuration seam for the consistency-recovery layer.

    A cache constructed with a recovery policy gets a leased, sequenced
    notifier channel (gap detection + anti-entropy resync) and — for
    write-back caches — a crash-recovery journal.  ``None`` (the
    default) leaves every recovery mechanism off and the cache
    byte-identical to its pre-recovery behaviour.
    """

    #: Lease term on the notifier registration; renewals run at half the
    #: term on the virtual clock, so a suspect or lapsed channel is
    #: resynced within one term (the bounded-staleness guarantee).
    lease_term_ms: float
    #: Stamp (epoch, sequence) on deliveries and detect gaps.
    sequence_invalidations: bool
    #: Journal buffered write-backs so a crash/restart replays them.
    journal_writes: bool

    def resync_due(self, *, suspect: bool, lapsed: bool) -> bool:
        """Should this renewal tick trigger an anti-entropy resync?"""
        ...  # pragma: no cover - protocol


class DefaultRecoveryPolicy:
    """Everything on: leases + sequencing + journal, resync when needed.

    Parameters
    ----------
    lease_term_ms:
        The notifier-registration lease term (renewed at half-term).
    sequence_invalidations, journal_writes:
        Individually disable gap detection or the write-back journal
        (both on by default) for ablations.
    """

    def __init__(
        self,
        lease_term_ms: float = 2_000.0,
        sequence_invalidations: bool = True,
        journal_writes: bool = True,
    ) -> None:
        if lease_term_ms <= 0:
            raise CacheError(
                f"lease_term_ms must be positive: {lease_term_ms}"
            )
        self.lease_term_ms = lease_term_ms
        self.sequence_invalidations = sequence_invalidations
        self.journal_writes = journal_writes

    def resync_due(self, *, suspect: bool, lapsed: bool) -> bool:
        """Resync whenever the channel is suspect or the lease lapsed."""
        return suspect or lapsed


@runtime_checkable
class StoragePolicy(Protocol):
    """Configuration seam for the durable L2 tier.

    A cache constructed with a storage policy gets an
    :class:`~repro.storage.tier.L2Tier`: evictions demote their bytes
    and metadata to checksummed on-disk segments, misses promote them
    back (chain-, source-, CRC- and verifier-gated), the write-back
    journal and transform memo spill to disk, and
    ``DocumentCache.restart()`` recovers all of it after a crash.
    ``None`` (the default) builds no tier and leaves the cache
    byte-identical to its storage-free behaviour.
    """

    #: Directory holding the tier's segments, or ``None`` for a private
    #: temporary directory (fresh per cache — durable across crashes
    #: within a run, not across processes).
    directory: "str | None"
    #: Individually disable the demote / promote / spill flows.
    demote_on_evict: bool
    promote_on_hit: bool
    spill_journal: bool
    spill_memo: bool
    #: Re-run verifiers on *every* promotion; recovered records are
    #: verified on first serve regardless of this knob.
    verify_on_promote: bool
    #: Virtual costs of the disk operations (per record) and of the
    #: promote-time source-signature probe.
    write_cost_ms: float
    read_cost_ms: float
    sync_cost_ms: float
    probe_cost_ms: float
    #: Storage-breaker tuning: consecutive disk failures before the
    #: tier trips open (falling back to L1-only), and the probation
    #: delay before a half-open retry.
    breaker_failure_threshold: int
    breaker_probation_ms: "float | None"


class DefaultStoragePolicy:
    """Durable tier with everything on, off unless supplied.

    Parameters
    ----------
    directory:
        Segment directory (one subdirectory per cache id); ``None``
        (default) uses a private temporary directory.
    demote_on_evict, promote_on_hit, spill_journal, spill_memo:
        Individually disable the four flows (all on by default) for
        ablations.
    verify_on_promote:
        Re-run verifiers on every promotion (default on).  Recovered
        records are always verified on their first serve even when
        this is off.
    write_cost_ms, read_cost_ms, sync_cost_ms, probe_cost_ms:
        Virtual costs charged per disk write, read, fsync and
        promote-time source probe.
    breaker_failure_threshold, breaker_probation_ms:
        Storage-breaker tuning (see
        :class:`~repro.cache.containment.BreakerConfig`).
    """

    def __init__(
        self,
        directory: "str | None" = None,
        demote_on_evict: bool = True,
        promote_on_hit: bool = True,
        spill_journal: bool = True,
        spill_memo: bool = True,
        verify_on_promote: bool = True,
        write_cost_ms: float = 0.4,
        read_cost_ms: float = 0.25,
        sync_cost_ms: float = 0.5,
        probe_cost_ms: float = 0.2,
        breaker_failure_threshold: int = 3,
        breaker_probation_ms: "float | None" = 2_000.0,
    ) -> None:
        for name, value in (
            ("write_cost_ms", write_cost_ms),
            ("read_cost_ms", read_cost_ms),
            ("sync_cost_ms", sync_cost_ms),
            ("probe_cost_ms", probe_cost_ms),
        ):
            if value < 0:
                raise CacheError(
                    f"{name} must be non-negative: {value}"
                )
        if breaker_failure_threshold < 1:
            raise CacheError(
                "breaker_failure_threshold must be >= 1: "
                f"{breaker_failure_threshold}"
            )
        self.directory = directory
        self.demote_on_evict = demote_on_evict
        self.promote_on_hit = promote_on_hit
        self.spill_journal = spill_journal
        self.spill_memo = spill_memo
        self.verify_on_promote = verify_on_promote
        self.write_cost_ms = write_cost_ms
        self.read_cost_ms = read_cost_ms
        self.sync_cost_ms = sync_cost_ms
        self.probe_cost_ms = probe_cost_ms
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_probation_ms = breaker_probation_ms


@runtime_checkable
class OverloadPolicy(Protocol):
    """Configuration seam for the overload-robustness layer.

    A cache constructed with an overload policy gets an
    :class:`~repro.overload.gate.OverloadGate`: reads carry a
    :class:`~repro.overload.budget.DeadlineBudget` derived from the
    chain's QoS access-time target (expiry degrades through the
    serve-stale ladder before raising
    :class:`~repro.errors.DeadlineExceededError`), an admission
    controller sheds the lowest priority class past saturation with
    :class:`~repro.errors.OverloadShedError`, and — on a
    :class:`~repro.cluster.coordinator.CacheCluster` — gray-failing
    shards are hedged to their replica and hard-failing shards routed
    around.  ``None`` (the default) builds no gate and leaves the
    cache byte-identical to its pre-overload behaviour.
    """

    #: Deadline propagation: budget every read, gate expensive seams.
    deadlines_enabled: bool
    #: Allowance for chains without a finite QoS target.
    default_deadline_ms: float
    #: Tighten the allowance to the chain's QoS ``max_access_time_ms``.
    deadline_from_qos: bool
    #: Admission control / load shedding.
    shedding_enabled: bool
    #: Token-bucket refill rate (reads per virtual second) and capacity.
    admission_rate_per_s: float
    admission_burst: float
    #: Overdraft bound: queue depth past which non-critical reads shed.
    queue_limit: float
    #: CoDel-style sojourn threshold; bulk reads shed past it, QoS
    #: reads past twice it, critical reads never.
    sojourn_threshold_ms: float
    #: Cluster hedging + health (ignored by a standalone cache).
    hedging_enabled: bool
    #: Hedge delay = healthy-fleet p95 × this factor, clamped below.
    hedge_delay_factor: float
    hedge_delay_min_ms: float
    hedge_delay_max_ms: float
    #: Gray detection: EWMA ≥ factor × healthiest peer's EWMA, after
    #: at least ``health_min_samples`` reads.
    gray_latency_factor: float
    health_min_samples: int
    health_ewma_alpha: float
    #: Failover: consecutive errors that mark a shard unhealthy, and
    #: consecutive clean reads that restore it (and its stickiness).
    unhealthy_error_threshold: int
    recovery_successes: int


class DefaultOverloadPolicy:
    """Deadlines + shedding + hedging with sensible defaults.

    Parameters
    ----------
    deadlines, shedding, hedging:
        Individually disable the three mechanisms (all on by default —
        constructing the policy at all is the opt-in) for ablations.
    default_deadline_ms:
        End-to-end budget for reads whose chain carries no finite QoS
        access-time target (the paper's §3 example is 250 ms).
    deadline_from_qos:
        Tighten the budget to the chain's ``max_access_time_ms``.
    admission_rate_per_s, admission_burst, queue_limit,
    sojourn_threshold_ms:
        Admission-controller tuning (see
        :class:`~repro.overload.admission.AdmissionController`).
    hedge_delay_factor, hedge_delay_min_ms, hedge_delay_max_ms:
        Hedge-delay shaping over the healthy-fleet p95.
    gray_latency_factor, health_min_samples, health_ewma_alpha,
    unhealthy_error_threshold, recovery_successes:
        Health-tracker tuning (see
        :class:`~repro.overload.health.HealthTracker`).
    """

    def __init__(
        self,
        deadlines: bool = True,
        shedding: bool = True,
        hedging: bool = True,
        default_deadline_ms: float = 250.0,
        deadline_from_qos: bool = True,
        admission_rate_per_s: float = 200.0,
        admission_burst: float = 16.0,
        queue_limit: float = 32.0,
        sojourn_threshold_ms: float = 100.0,
        hedge_delay_factor: float = 1.0,
        hedge_delay_min_ms: float = 1.0,
        hedge_delay_max_ms: float = 250.0,
        gray_latency_factor: float = 3.0,
        health_min_samples: int = 8,
        health_ewma_alpha: float = 0.2,
        unhealthy_error_threshold: int = 3,
        recovery_successes: int = 3,
    ) -> None:
        if default_deadline_ms <= 0:
            raise CacheError(
                f"default_deadline_ms must be positive: {default_deadline_ms}"
            )
        if admission_rate_per_s <= 0:
            raise CacheError(
                f"admission_rate_per_s must be positive: {admission_rate_per_s}"
            )
        if admission_burst < 1:
            raise CacheError(
                f"admission_burst must be >= 1: {admission_burst}"
            )
        if queue_limit < 0:
            raise CacheError(
                f"queue_limit must be non-negative: {queue_limit}"
            )
        if sojourn_threshold_ms < 0:
            raise CacheError(
                f"sojourn_threshold_ms must be non-negative: "
                f"{sojourn_threshold_ms}"
            )
        if hedge_delay_factor <= 0:
            raise CacheError(
                f"hedge_delay_factor must be positive: {hedge_delay_factor}"
            )
        if not 0 <= hedge_delay_min_ms <= hedge_delay_max_ms:
            raise CacheError(
                "hedge delay clamp must satisfy 0 <= min <= max: "
                f"{hedge_delay_min_ms}..{hedge_delay_max_ms}"
            )
        if gray_latency_factor <= 1.0:
            raise CacheError(
                f"gray_latency_factor must be > 1: {gray_latency_factor}"
            )
        if not 0.0 < health_ewma_alpha <= 1.0:
            raise CacheError(
                f"health_ewma_alpha must be in (0, 1]: {health_ewma_alpha}"
            )
        if (
            health_min_samples < 1
            or unhealthy_error_threshold < 1
            or recovery_successes < 1
        ):
            raise CacheError(
                "health_min_samples, unhealthy_error_threshold and "
                "recovery_successes must be >= 1"
            )
        self.deadlines_enabled = deadlines
        self.shedding_enabled = shedding
        self.hedging_enabled = hedging
        self.default_deadline_ms = default_deadline_ms
        self.deadline_from_qos = deadline_from_qos
        self.admission_rate_per_s = admission_rate_per_s
        self.admission_burst = admission_burst
        self.queue_limit = queue_limit
        self.sojourn_threshold_ms = sojourn_threshold_ms
        self.hedge_delay_factor = hedge_delay_factor
        self.hedge_delay_min_ms = hedge_delay_min_ms
        self.hedge_delay_max_ms = hedge_delay_max_ms
        self.gray_latency_factor = gray_latency_factor
        self.health_min_samples = health_min_samples
        self.health_ewma_alpha = health_ewma_alpha
        self.unhealthy_error_threshold = unhealthy_error_threshold
        self.recovery_successes = recovery_successes


class DefaultDegradationPolicy:
    """The PR-1 degradation cascade, now in one swappable object.

    Parameters mirror the former ``DocumentCache`` keyword arguments:
    ``serve_stale_on_error`` / ``stale_serve_max_age_ms`` bound the
    availability-over-freshness fallback, ``bypass_backing_on_error``
    lets misses route past a failed second level, and
    ``verifier_quarantine_threshold`` disables a repeatedly-raising
    verifier after that many consecutive failures.
    """

    def __init__(
        self,
        serve_stale_on_error: bool = False,
        stale_serve_max_age_ms: float | None = None,
        bypass_backing_on_error: bool = False,
        verifier_quarantine_threshold: int | None = None,
    ) -> None:
        if stale_serve_max_age_ms is not None and stale_serve_max_age_ms < 0:
            raise CacheError(
                "stale_serve_max_age_ms must be non-negative: "
                f"{stale_serve_max_age_ms}"
            )
        if (
            verifier_quarantine_threshold is not None
            and verifier_quarantine_threshold < 1
        ):
            raise CacheError(
                "verifier_quarantine_threshold must be >= 1: "
                f"{verifier_quarantine_threshold}"
            )
        self.serve_stale_on_error = serve_stale_on_error
        self.stale_serve_max_age_ms = stale_serve_max_age_ms
        self.bypass_backing_on_error = bypass_backing_on_error
        self.verifier_quarantine_threshold = verifier_quarantine_threshold
        #: The quarantine, re-expressed as circuit breakers: threshold-N
        #: consecutive failures trip, and with no probation delay an
        #: open breaker is permanent until ``breakers.reset_all()`` —
        #: exactly the historical dict-and-set semantics.  Inspect open
        #: quarantines via ``breakers.open_keys()``.
        self.breakers = BreakerRegistry(
            BreakerConfig(
                failure_threshold=(
                    verifier_quarantine_threshold
                    if verifier_quarantine_threshold is not None
                    else 1
                ),
                probation_delay_ms=None,
                half_open_successes=1,
            )
        )

    # -- serve-stale bounds ----------------------------------------------------

    def stale_age_acceptable(self, age_ms: float) -> bool:
        if self.stale_serve_max_age_ms is None:
            return True
        return age_ms <= self.stale_serve_max_age_ms

    # -- verifier quarantine ---------------------------------------------------

    def note_verifier_failure(self, key: tuple["DocumentId", str]) -> bool:
        if self.verifier_quarantine_threshold is None:
            return False
        return self.breakers.get(key).record_failure()

    def note_verifier_success(self, key: tuple["DocumentId", str]) -> None:
        if self.verifier_quarantine_threshold is None:
            return
        breaker = self.breakers.peek(key)
        if breaker is not None:
            breaker.record_success()

    def is_quarantined(self, key: tuple["DocumentId", str]) -> bool:
        breaker = self.breakers.peek(key)
        return breaker is not None and breaker.state is BreakerState.OPEN
