"""Cache statistics, itemised the way the paper's trade-offs need.

"In general, verifier execution trades-off cache consistency with cache
access time latencies, while notifier execution adds load to the
Placeless system." (§3)  The A1 bench therefore needs, per run: hit/miss
counts and latencies, verifier executions and their total cost, notifier
deliveries (server load), invalidations attributed per reason, and
staleness (hits that served out-of-date bytes, measurable only in
simulation where ground truth is known).

Since the pipeline refactor these counters are no longer mutated inline
by the cache: every stage emits structured
:class:`~repro.cache.instrumentation.StageEvent` records, and a
:class:`~repro.cache.instrumentation.StatsProjection` subscribed to the
cache's instrumentation bus derives the counters from the event stream.
The dataclass itself is unchanged, so everything that reads
``cache.stats`` keeps working.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.cache.consistency import InvalidationReason

__all__ = ["CacheStats"]


@dataclass
class CacheStats:
    """Counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    #: Reads that could not be cached (UNCACHEABLE vote) — always misses.
    uncacheable_reads: int = 0
    #: Hits whose verifier invalidated the entry (counted as misses too).
    verifier_invalidations: int = 0
    #: Hits whose verifier patched the entry in place (REVALIDATED).
    verifier_revalidations: int = 0
    verifier_executions: int = 0
    verifier_cost_ms: float = 0.0
    notifier_deliveries: int = 0
    forwarded_reads: int = 0
    forwarded_writes: int = 0
    evictions: int = 0
    writes_through: int = 0
    writes_backed: int = 0
    flushes: int = 0
    #: Collection-prefetch requests accepted / fills actually performed.
    prefetch_requests: int = 0
    prefetch_fills: int = 0
    #: Hits served from entries that a prefetch (not a demand read) filled.
    prefetched_hits: int = 0
    #: Misses served by adopting another user's identical cached version
    #: (§3's signature-sharing optimization) instead of a full read.
    sibling_adoptions: int = 0
    #: Stale bytes served because the refetch failed (availability mode).
    stale_served_on_error: int = 0
    #: Stale-serve candidates rejected because the entry exceeded the
    #: configured staleness bound (the read failed instead).
    stale_serve_rejected: int = 0
    #: Miss-path fetch retries performed, and the virtual backoff charged.
    retries: int = 0
    retry_delay_ms: float = 0.0
    #: Fetches that still failed after exhausting the retry policy.
    fetch_failures: int = 0
    #: Reads answered in a degradation mode (stale-on-error or a fetch
    #: served by bypassing a failed backing level).
    degraded_serves: int = 0
    #: Fetches served straight from the kernel because the backing
    #: (second-level) cache was unreachable.
    backing_bypasses: int = 0
    #: Verifiers quarantined after repeated failures, and the misses the
    #: quarantine forced.
    quarantined_verifiers: int = 0
    quarantine_forced_misses: int = 0
    #: Verifier invalidations that caught a notification the bus had
    #: lost (the lost-callback problem, detected after the fact).
    dropped_notifier_detected: int = 0
    #: Write-back flushes that failed (the dirty buffer is retained).
    flush_failures: int = 0
    bytes_served_from_cache: int = 0
    bytes_filled: int = 0
    hit_latency_ms: float = 0.0
    miss_latency_ms: float = 0.0
    #: Hits that served bytes differing from what a fresh read would have
    #: produced at that instant (ground-truth staleness; simulation-only).
    stale_hits: int = 0
    invalidations: Counter = field(default_factory=Counter)

    def record_invalidation(self, reason: InvalidationReason) -> None:
        """Attribute one invalidation to its reason."""
        self.invalidations[reason] += 1

    @property
    def lookups(self) -> int:
        """Total read attempts through the cache."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups (0.0 when no lookups)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    @property
    def mean_hit_latency_ms(self) -> float:
        """Average virtual latency of a hit (0.0 when no hits)."""
        return self.hit_latency_ms / self.hits if self.hits else 0.0

    @property
    def mean_miss_latency_ms(self) -> float:
        """Average virtual latency of a miss (0.0 when no misses)."""
        return self.miss_latency_ms / self.misses if self.misses else 0.0

    @property
    def staleness_ratio(self) -> float:
        """Stale hits over hits (0.0 when no hits)."""
        return self.stale_hits / self.hits if self.hits else 0.0

    @property
    def degraded_serve_ratio(self) -> float:
        """Degraded-mode serves over lookups (0.0 when no lookups)."""
        if self.lookups == 0:
            return 0.0
        return self.degraded_serves / self.lookups

    def invalidations_by_class(self) -> Counter:
        """Invalidations aggregated to the paper's four classes."""
        by_class: Counter = Counter()
        for reason, count in self.invalidations.items():
            by_class[reason.invalidation_class] += count
        return by_class

    @classmethod
    def merged(cls, parts: "list[CacheStats]") -> "CacheStats":
        """Fleet-wide aggregate of several caches' statistics.

        Counters and latency sums add; the derived ratios then reflect
        the whole deployment (used by placement experiments to report
        across per-user application-level caches).
        """
        total = cls()
        for part in parts:
            for field_name, value in vars(part).items():
                if field_name == "invalidations":
                    total.invalidations.update(value)
                else:
                    setattr(
                        total, field_name,
                        getattr(total, field_name) + value,
                    )
        return total
