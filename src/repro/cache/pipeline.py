"""The staged read/write pipeline behind :class:`DocumentCache`.

A read is a fixed sequence of small stages, each a class with one
``run(ctx)`` method over a shared typed :class:`ReadContext`:

    dirty-flush → lookup → verifier-gate → adoption → l2 → memo →
    single-flight → fetch → degradation → admission

A stage returns ``None`` to pass the context on, a terminal result
(:class:`CacheReadOutcome` for application reads, a ``(content, meta)``
pair for lower-level ``read_for_fill`` serves) to finish the read, or a
:class:`~repro.sim.scheduler.Suspension` to park the read on another
read's in-progress flight.  The write path is the same idea with two
stages (interpose → buffer) plus a flush stage shared by write-back
draining and the read path's dirty-flush gate.

Stages stay synchronous; *scheduling* is externalised.  The pipeline
expresses one access as a generator yielding suspension markers at the
verifier and fetch/chain seams, and a
:class:`~repro.sim.scheduler.Scheduler` drives it: the default
:class:`~repro.sim.scheduler.SequentialScheduler` inline (operation
order, clock charges and fault-plan consultations exactly as the
pre-scheduler pipeline performed them — the golden-digest equivalence
tests pin byte-identical stats and fault traces across the refactor),
the :class:`~repro.sim.scheduler.AsyncScheduler` as interleaved
coroutines with single-flight request coalescing (see
:class:`SingleFlightStage`).

Stages hold no state of their own: everything mutable lives in the
:class:`~repro.cache.core.CacheCore` they share, and every observable
step is emitted onto the core's instrumentation bus.
"""

from __future__ import annotations

import enum
import typing
from dataclasses import dataclass

from repro.cache.consistency import InvalidationReason
from repro.cache.containment import BreakerState
from repro.cache.core import ADOPTION_COST_MS, NOTIFIER_INSTALL_COST_MS, CacheCore
from repro.cache.entry import CacheEntry, EntryKey
from repro.cache.memo import ChainFingerprint
from repro.cache.notifiers import install_minimum_notifiers
from repro.cache.policies import AdmissionDecision
from repro.cache.verifiers import Verdict
from repro.errors import CacheError, OverloadShedError
from repro.overload.admission import PRIORITY_NAMES
from repro.sim.scheduler import (
    FETCH_SEAM,
    VERIFIER_SEAM,
    Scheduler,
    Suspension,
)
from repro.streams.chain import property_site, read_chain_properties

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.overload.budget import DeadlineBudget
    from repro.placeless.document import PathMeta
    from repro.placeless.reference import DocumentReference

__all__ = [
    "WriteMode",
    "CacheReadOutcome",
    "ReadContext",
    "WriteContext",
    "ReadPipeline",
    "WritePipeline",
    "DirtyFlushStage",
    "LookupStage",
    "VerifierGateStage",
    "AdoptionStage",
    "L2Stage",
    "MemoStage",
    "SingleFlightStage",
    "FetchStage",
    "DegradationStage",
    "AdmissionStage",
    "InterposeStage",
    "BufferStage",
    "FlushStage",
]


class WriteMode(enum.Enum):
    """Write-through vs. write-back (§3, Cache Management)."""

    WRITE_THROUGH = "write-through"
    WRITE_BACK = "write-back"


@dataclass(slots=True)
class CacheReadOutcome:
    """Result of one read through the cache."""

    content: bytes
    hit: bool
    elapsed_ms: float
    #: "hit", "revalidated", "miss", "miss-verifier", "miss-invalidated",
    #: "uncacheable", "miss-oversize", "miss-adopted", "miss-memoized"
    #: (served by the transform memo: signature adoption, no chain
    #: execution), "miss-promoted" (served by promoting a demoted copy
    #: back from the durable L2 tier — chain-, source-, CRC- and
    #: verifier-gated), or a degraded mode: "stale-on-error" (bounded
    #: stale bytes served because the refetch failed) / "miss-degraded"
    #: (fetched past a failed backing level).
    disposition: str

    @property
    def degraded(self) -> bool:
        """True when this read was answered in a degradation mode."""
        return self.disposition in ("stale-on-error", "miss-degraded")

    @property
    def size(self) -> int:
        """Bytes delivered to the application."""
        return len(self.content)


@dataclass(slots=True)
class ReadContext:
    """Mutable state threaded through the read stages for one read."""

    reference: "DocumentReference"
    key: EntryKey
    started_ms: float
    #: True when a lower-level cache serves an upper one: the terminal
    #: result is ``(content, meta)`` instead of a ``CacheReadOutcome``,
    #: fetch failures propagate undegraded, and hits re-derive fill
    #: metadata from the live entry.
    for_fill: bool = False
    #: The looked-up entry, cleared when a gate invalidates it.
    entry: CacheEntry | None = None
    #: Invalidated-but-still-held bytes and their fill time, kept for
    #: bounded serve-stale-on-error.
    stale: tuple[bytes, float] | None = None
    #: Fetched content + path metadata, once the fetch stage ran.
    content: bytes | None = None
    meta: "PathMeta | None" = None
    #: True when the content was fetched past a failed backing level.
    degraded: bool = False
    #: The fetch failure awaiting the degradation stage's decision.
    fetch_error: BaseException | None = None
    #: The chain fingerprint the memo stage computed for this read;
    #: ``None`` when the memo is off or the chain was not consultable
    #: (e.g. containment-blocked), in which case admission records
    #: nothing.
    memo_fingerprint: ChainFingerprint | None = None
    #: The source signature the memo stage probed alongside the
    #: fingerprint — together they form the memo-plane coalescing key.
    memo_source: typing.Any = None
    #: The scheduler driving this read (set by the pipeline; defaults to
    #: the core's sequential scheduler).  Nested reads — prefetch
    #: drains, backing-cache fills — always run sequentially.
    scheduler: "Scheduler | None" = None
    #: The single-flight this read *leads*, if any; resolved when the
    #: read terminates (landed) or raises (failed → follower promotion).
    flight: typing.Any = None
    #: Times this read suspended on another read's flight and re-entered
    #: the pipeline (0 for leaders and uncoalesced reads).
    follows: int = 0
    #: When the read entered the system (a batch's start instant for
    #: ``read_many``); the admission controller's sojourn signal.
    #: ``None`` means it arrived the moment the pipeline started.
    enqueued_ms: float | None = None
    #: The read's end-to-end deadline budget; ``None`` when the
    #: overload layer is off (the default) or deadlines are disabled.
    budget: "DeadlineBudget | None" = None


@dataclass(slots=True)
class WriteContext:
    """Mutable state threaded through the write stages for one write."""

    reference: "DocumentReference"
    key: EntryKey
    content: bytes
    started_ms: float


# -- read stages ---------------------------------------------------------------


class DirtyFlushStage:
    """A write-back user reading their own dirty document must see their
    buffered write; flush it through the full path first."""

    def __init__(self, core: CacheCore, writes: "WritePipeline") -> None:
        self.core = core
        self.writes = writes

    def run(self, ctx: ReadContext):
        if ctx.key in self.core.dirty:
            self.writes.flush(ctx.reference)
        return None


class LookupStage:
    """Find the live entry for the (document, user) key, if any."""

    def __init__(self, core: CacheCore) -> None:
        self.core = core

    def run(self, ctx: ReadContext):
        ctx.entry = self.core.entries.get(ctx.key)
        return None


class VerifierGateStage:
    """Serve a hit if the entry's verifiers agree (§3's hit-time check).

    On a verified hit the read terminates here; when a verifier
    invalidates (or a quarantine forces a miss) the stale bytes and
    their age are parked on the context for bounded serve-stale and the
    read falls through to the miss stages.
    """

    def __init__(self, core: CacheCore) -> None:
        self.core = core

    def run(self, ctx: ReadContext):
        core = self.core
        entry = ctx.entry
        if entry is not None and core.entries.get(ctx.key) is not entry:
            # The lookup ran before the verifier seam; under a
            # concurrent scheduler an interleaved read may have dropped
            # (or replaced) the entry while this read was suspended.
            # Re-anchor on the live table — sequentially nothing can
            # intervene, so this is the same object the lookup found.
            ctx.entry = entry = core.entries.get(ctx.key)
        if entry is None:
            return None
        content = core.store.get(entry.signature)
        stale = (content, entry.created_at_ms)
        disposition = "hit"
        # "cache hit" latency: the local (or app→server) hop only.
        for hop in core.topology.hit_path():
            core.ctx.charge_hop(hop, entry.size)

        if core.use_verifiers:
            guard = core.containment
            if guard is not None:
                if guard.verifier_blocked(entry):
                    # A breaker is open on one of the entry's verifiers:
                    # the entry cannot be trusted and the verifier cannot
                    # be afforded — force a miss.  Unlike the legacy
                    # quarantine this heals itself: after the probation
                    # delay the breaker admits a probe.
                    core.drop(entry, InvalidationReason.VERIFIER_FAILED,
                              origin="containment")
                    ctx.entry = None
                    ctx.stale = stale
                    return None
            elif self._entry_quarantined(entry):
                # A repeatedly-failing verifier guards this entry: the
                # entry cannot be trusted and the verifier cannot be
                # afforded — force a miss instead of verifying.
                core.drop(entry, InvalidationReason.VERIFIER_FAILED,
                          origin="quarantine")
                core.emit("quarantine", "forced-miss", key=ctx.key)
                ctx.entry = None
                ctx.stale = stale
                return None
            for verifier in entry.verifiers:
                verifier_started_ms = core.ctx.clock.now_ms
                core.ctx.charge(verifier.cost_ms)
                core.emit(
                    "verifier", "executed", key=ctx.key,
                    started_ms=verifier_started_ms,
                    cost_ms=verifier.cost_ms,
                )
                try:
                    if guard is not None:
                        guard.check_verifier_budget(entry, verifier)
                    if core.ctx.faults is not None:
                        core.ctx.faults.check_verifier(
                            verifier.cost_ms,
                            label=type(verifier).__name__,
                        )
                    result = verifier.run(core.ctx.clock.now_ms, content)
                except Exception:
                    if guard is not None:
                        guard.note_verifier_failure(entry, verifier)
                    else:
                        self._note_failure(entry, verifier)
                    core.drop(entry, InvalidationReason.VERIFIER_FAILED,
                              origin="verifier")
                    core.emit("verifier", "invalidated", key=ctx.key)
                    core.note_verifier_caught_lost(entry)
                    ctx.entry = None
                    ctx.stale = (content, entry.created_at_ms)
                    return None
                if guard is not None:
                    guard.note_verifier_success(entry, verifier)
                else:
                    core.degradation.note_verifier_success(
                        core.verifier_fault_key(entry, verifier)
                    )
                if result.verdict is Verdict.INVALID:
                    reason = (
                        InvalidationReason.SOURCE_UPDATED_OUT_OF_BAND
                        if verifier.invalidation_label == "source"
                        else InvalidationReason.EXTERNAL_CHANGED
                    )
                    core.drop(entry, reason, origin="verifier")
                    core.emit("verifier", "invalidated", key=ctx.key)
                    core.note_verifier_caught_lost(entry)
                    ctx.entry = None
                    ctx.stale = (content, entry.created_at_ms)
                    return None
                if result.verdict is Verdict.REVALIDATED:
                    content = result.patched_content or b""
                    core.replace_content(entry, content)
                    core.emit("verifier", "revalidated", key=ctx.key)
                    disposition = "revalidated"

        if entry.cacheability.requires_event_forwarding:
            core.forward_read(ctx.reference)

        entry.touch(core.ctx.clock.now_ms)
        core.policy.on_access(entry)
        if core.track_staleness and core.is_stale(ctx.reference, entry):
            core.emit("staleness", "stale-hit", key=ctx.key)
        elapsed = core.ctx.clock.now_ms - ctx.started_ms
        core.emit(
            "read", disposition, key=ctx.key,
            started_ms=ctx.started_ms, bytes=len(content),
        )
        if ctx.for_fill:
            # Serving an upper cache: re-derive fill metadata from the
            # live entry.  Event forwarding may have invalidated it
            # reentrantly — fall through to the miss stages if so.
            live = core.entries.get(ctx.key)
            if live is not None:
                return (content, core.meta_from_entry(live))
            ctx.entry = None
            return None
        if entry.policy_state.get("prefetched"):
            core.emit("prefetch", "hit", key=ctx.key)
            entry.policy_state["prefetched"] = False
        return CacheReadOutcome(
            content=content, hit=True, elapsed_ms=elapsed,
            disposition=disposition,
        )

    def _entry_quarantined(self, entry: CacheEntry) -> bool:
        core = self.core
        return any(
            core.degradation.is_quarantined(
                core.verifier_fault_key(entry, verifier)
            )
            for verifier in entry.verifiers
        )

    def _note_failure(self, entry: CacheEntry, verifier) -> None:
        core = self.core
        newly = core.degradation.note_verifier_failure(
            core.verifier_fault_key(entry, verifier)
        )
        if newly:
            core.emit("quarantine", "added", key=entry.key)


class AdoptionStage:
    """§3 signature adoption: reuse another user's identical version.

    A candidate must be another user's valid entry for the same base
    document whose recorded chain signature equals what this reference's
    chain would produce; its verifiers are re-run (the source could have
    changed) before the signature mapping is established.
    """

    def __init__(self, core: CacheCore) -> None:
        self.core = core

    def run(self, ctx: ReadContext):
        core = self.core
        if not core.share_across_users:
            return None
        adopted = self._try_adopt(ctx)
        if adopted is None:
            return None
        core.emit(
            "read", "miss-adopted", key=ctx.key, started_ms=ctx.started_ms
        )
        if ctx.for_fill:
            return (
                core.store.get(adopted.signature),
                core.meta_from_entry(adopted),
            )
        elapsed = core.ctx.clock.now_ms - ctx.started_ms
        return CacheReadOutcome(
            content=core.store.get(adopted.signature),
            hit=False,
            elapsed_ms=elapsed,
            disposition="miss-adopted",
        )

    def _try_adopt(self, ctx: ReadContext) -> CacheEntry | None:
        core = self.core
        key = ctx.key
        expected = core.expected_chain_signature(ctx.reference)
        now = core.ctx.clock.now_ms
        # Scan only this document's bucket: adoption candidates are by
        # definition other users' entries for the *same* document, and a
        # full-table scan per miss is O(entries) at churn scale.
        for candidate in list(core.entries_for_document(key.document_id).values()):
            if candidate.user_id == key.user_id:
                continue
            if candidate.chain_signature != expected:
                continue
            content = core.store.get(candidate.signature)
            if core.use_verifiers and not self._candidate_fresh(
                candidate, content, now
            ):
                continue
            # Metadata exchange only: one cache-side hop, no content moves
            # across the network (the bytes are already local).
            for hop in core.topology.hit_path():
                core.ctx.charge_hop(hop, 0)
            core.ctx.charge(ADOPTION_COST_MS)
            core.store.adopt(candidate.signature)
            entry = CacheEntry(
                key=key,
                signature=candidate.signature,
                size=candidate.size,
                cacheability=candidate.cacheability,
                verifiers=list(candidate.verifiers),
                replacement_cost_ms=candidate.replacement_cost_ms,
                chain_signature=expected,
                reference_id=ctx.reference.reference_id,
                created_at_ms=now,
                last_access_ms=now,
            )
            entry.pinned = candidate.pinned
            entry.policy_state["source_signature"] = (
                candidate.policy_state.get("source_signature")
            )
            core.insert_entry(entry)
            core.policy.on_insert(entry)
            core.emit("adoption", "adopted", key=key)
            if core.install_notifiers:
                installed = install_minimum_notifiers(
                    ctx.reference, core.bus, core.cache_id
                )
                core.ctx.charge(NOTIFIER_INSTALL_COST_MS * len(installed))
            return entry
        return None

    def _candidate_fresh(
        self, candidate: CacheEntry, content: bytes, now_ms: float
    ) -> bool:
        """Re-run a candidate's verifiers before adopting its bytes."""
        core = self.core
        for verifier in candidate.verifiers:
            verifier_started_ms = core.ctx.clock.now_ms
            core.ctx.charge(verifier.cost_ms)
            core.emit(
                "verifier", "executed", key=candidate.key,
                started_ms=verifier_started_ms,
                cost_ms=verifier.cost_ms,
            )
            try:
                result = verifier.run(now_ms, content)
            except Exception:
                return False
            if result.verdict is not Verdict.VALID:
                return False
        return True


class L2Stage:
    """Durable-tier promotion: answer a miss from the on-disk L2 tier.

    Sits between adoption and the memo: an adoption needs another
    user's *live* entry, while the L2 tier remembers entries this cache
    itself evicted — including across a crash/restart, which is the
    whole point.  The stage delegates entirely to
    :meth:`~repro.storage.tier.L2Tier.promote`, which re-gates the
    demoted copy on the reference's current chain signature, a charged
    source-signature probe, the record's CRC/digest and (for recovered
    records, unconditionally) its verifiers before serving it as a
    ``miss-promoted`` read.

    A strict no-op when no storage policy is configured, so the default
    pipeline stays byte-identical to the pre-storage one; likewise a
    no-op while the storage breaker is open — the L1-only fallback.
    """

    def __init__(self, core: CacheCore) -> None:
        self.core = core

    def run(self, ctx: ReadContext):
        if self.core.l2 is None:
            return None
        if ctx.budget is not None and ctx.budget.expired:
            # An expired read skips the disk probe and CRC work: the
            # fetch gate downstream fails it into the degradation
            # ladder without spending more of anyone's time.
            self.core.emit("deadline", "skipped", key=ctx.key, seam="l2")
            return None
        return self.core.l2.promote(ctx)


class MemoStage:
    """Transform memoization: answer a miss from the
    ``(source signature, chain fingerprint) → output signature`` memo.

    Sits between adoption and fetch: an adoption needs another user's
    *live* entry, while the memo remembers what an identical chain
    produced from identical source bytes even after every entry for it
    is gone.  A memo serve is a metadata-only exchange — one
    source-signature probe, the local hop, a
    :meth:`~repro.content.store.ContentStore.adopt` — with no provider
    fetch and no property-chain execution.

    The stage is a strict no-op when no memo policy is configured, so
    the default pipeline stays byte-identical to the pre-memo one.
    Consults participate in all four §3 invalidation classes (see
    :mod:`repro.cache.memo`) and respect the containment layer: an open
    breaker on any chain property bypasses the memo, because the
    recorded output was produced by code that is currently quarantined.
    """

    def __init__(self, core: CacheCore) -> None:
        self.core = core

    def run(self, ctx: ReadContext):
        core = self.core
        memo = core.memo
        if memo is None:
            return None
        if ctx.budget is not None and ctx.budget.expired:
            # Same fast-fail as the L2 stage: no probe charge for a
            # read whose deadline already passed.
            core.emit("deadline", "skipped", key=ctx.key, seam="memo")
            return None
        chain = read_chain_properties(ctx.reference)
        guard = core.containment
        if guard is not None and self._chain_blocked(guard, ctx.key, chain):
            core.emit("memo", "bypass-contained", key=ctx.key)
            return None
        fingerprint = ChainFingerprint.compose(
            prop.fingerprint() for prop in chain
        )
        # Admission records under this fingerprint if the miss proceeds.
        ctx.memo_fingerprint = fingerprint
        # Metadata-only probe of the repository's current source
        # signature — invalidation class (a): a changed source never
        # matches a stale record.
        assert core.memo_policy is not None
        core.ctx.charge(core.memo_policy.probe_cost_ms)
        source_signature = ctx.reference.base.provider.peek_signature()
        # The probed pair doubles as the memo-plane coalescing key for
        # the single-flight stage downstream.
        ctx.memo_source = source_signature
        record = memo.lookup(source_signature, fingerprint)
        if record is None:
            core.emit("memo", "missed", key=ctx.key)
            return None
        if record.is_negative:
            # Classes (b)/(d): this chain votes UNCACHEABLE for this
            # source — skip straight to the fetch path.
            core.emit("memo", "negative-hit", key=ctx.key)
            return None
        imported = False
        if record.output_signature in core.store:
            content = core.store.get(record.output_signature)
        else:
            # The output bytes left this store with the last referencing
            # entry.  A shared memo view may still recover them from a
            # sibling store (one ``put_signed`` reference the serving
            # entry takes over); the strictly local base memo returns
            # ``None`` and the record is pruned as dead.
            materialized = memo.materialize(record, core)
            if materialized is None:
                memo.discard(record)
                core.emit("memo", "dropped-dead", key=ctx.key)
                return None
            content = materialized
            imported = True
        if core.use_verifiers and record.verifiers:
            if not core.memo_policy.verify_on_serve:
                if imported:
                    core.store.release(record.output_signature)
                core.emit("memo", "bypass-verifier", key=ctx.key)
                return None
            if not self._record_fresh(ctx.key, record, content):
                # Class (d): an external condition gated this record
                # and no longer holds — the memo must not serve it.
                if imported:
                    core.store.release(record.output_signature)
                memo.discard(record)
                core.emit("memo", "dropped-verifier", key=ctx.key)
                return None
        return self._serve(ctx, record, content, imported=imported)

    @staticmethod
    def _chain_blocked(guard, key: EntryKey, chain) -> bool:
        """True when any chain property's wrapper breaker is open.

        Peeks rather than gets: a memo consult must neither create
        breakers nor consume half-open probe slots — probing is the
        fetch path's job.
        """
        for prop in chain:
            breaker = guard.wrappers.peek(
                (key.document_id, property_site(prop))
            )
            if breaker is not None and breaker.state is BreakerState.OPEN:
                return True
        return False

    def _record_fresh(self, key: EntryKey, record, content: bytes) -> bool:
        """Re-run a record's verifiers before serving its output."""
        core = self.core
        for verifier in record.verifiers:
            verifier_started_ms = core.ctx.clock.now_ms
            core.ctx.charge(verifier.cost_ms)
            core.emit(
                "verifier", "executed", key=key,
                started_ms=verifier_started_ms,
                cost_ms=verifier.cost_ms,
            )
            try:
                result = verifier.run(core.ctx.clock.now_ms, content)
            except Exception:
                return False
            if result.verdict is not Verdict.VALID:
                return False
        return True

    def _serve(
        self, ctx: ReadContext, record, content: bytes,
        *, imported: bool = False,
    ):
        """Adopt the recorded output signature and build the entry."""
        core = self.core
        key = ctx.key
        # Metadata exchange only, as in adoption: the local hop with no
        # content moving, plus the signature-mapping handshake.
        for hop in core.topology.hit_path():
            core.ctx.charge_hop(hop, 0)
        core.ctx.charge(ADOPTION_COST_MS)
        if not imported:
            # An import already holds the one store reference taken by
            # ``materialize``'s ``put_signed``; the entry takes it over.
            core.store.adopt(record.output_signature)
        existing = core.entries.get(key)
        if existing is not None:
            core.remove_entry(existing)
        now = core.ctx.clock.now_ms
        entry = CacheEntry(
            key=key,
            signature=record.output_signature,
            size=record.size,
            cacheability=record.cacheability,
            verifiers=list(record.verifiers),
            replacement_cost_ms=record.replacement_cost_ms,
            chain_signature=record.chain_signature,
            reference_id=ctx.reference.reference_id,
            created_at_ms=now,
            last_access_ms=now,
        )
        entry.pinned = record.pin
        entry.policy_state["source_signature"] = record.source_signature
        core.insert_entry(entry)
        core.policy.on_insert(entry)
        if core.install_notifiers:
            installed = install_minimum_notifiers(
                ctx.reference, core.bus, core.cache_id
            )
            core.ctx.charge(NOTIFIER_INSTALL_COST_MS * len(installed))
        if core.recovery is not None:
            core.recovery.note_reference(key, ctx.reference)
        if imported:
            # Imported bytes are new physical content in this store —
            # make room for them, protecting the entry just built.
            core.evict_to_capacity(protect=key)
            core.emit("memo", "adopted", key=key, imported=True)
        else:
            core.emit("memo", "adopted", key=key)
        core.emit(
            "read", "miss-memoized", key=key, started_ms=ctx.started_ms,
        )
        if ctx.for_fill:
            return (content, core.meta_from_entry(entry))
        elapsed = core.ctx.clock.now_ms - ctx.started_ms
        return CacheReadOutcome(
            content=content, hit=False, elapsed_ms=elapsed,
            disposition="miss-memoized",
        )


class SingleFlightStage:
    """Coalesce concurrent misses into one fetch + one chain execution.

    The last gate before the fetch/chain seam.  Under a concurrent
    scheduler with a :class:`~repro.cache.policies.ConcurrencyPolicy`
    whose ``coalesce`` flag is on, a miss probes the core's
    :class:`~repro.sim.scheduler.FlightTable` under two keys:

    * the ``(document, user)`` entry key — N concurrent reads of one
      reference share one fill;
    * via the A15 memo plane, the ``(source signature, chain
      fingerprint)`` pair — concurrent cold misses by *different* users
      whose chains would produce identical bytes share one chain
      execution, with followers answered by the leader's memo record.

    A hit on either key suspends the read on the leader's flight; when
    the leader lands, the follower re-enters the pipeline from the top,
    where the leader's fill answers it as a verifier-gated hit (same
    key) or a signature-only memo adoption (memo-plane key) — the
    "follower adopts the leader's signed result" rule, built on
    :meth:`~repro.content.store.ContentStore.put_signed` having already
    placed the leader's bytes in the store.  A leader that *fails*
    resolves the flight with its error: the first follower to wake
    finds the table empty and promotes itself to leader; the rest
    re-follow the promoted read.

    Containment semantics survive coalescing by bailing out instead of
    sharing: an open breaker on any chain property bypasses the flight
    table entirely (a quarantined chain's output must not fan out to N
    followers), and the policy's ``max_followers`` budget caps how many
    reads may park on one flight — excess reads fetch for themselves.

    The stage is a strict no-op when no concurrency policy is
    configured or the driving scheduler cannot suspend (the sequential
    default), so golden digests are untouched.
    """

    def __init__(self, core: CacheCore) -> None:
        self.core = core

    def run(self, ctx: ReadContext):
        core = self.core
        policy = core.concurrency
        if policy is None or not policy.coalesce:
            return None
        scheduler = ctx.scheduler
        if scheduler is None or not scheduler.supports_concurrency:
            return None
        if ctx.budget is not None and ctx.budget.expired:
            # An expired read neither follows (it cannot afford the
            # wait) nor leads (its fetch gate will refuse, stranding
            # followers on a doomed flight) — it falls straight through
            # to the fetch gate and the degradation ladder.
            core.emit("deadline", "skipped", key=ctx.key, seam="flight")
            return None
        guard = core.containment
        if guard is not None and self._chain_blocked(guard, ctx):
            core.emit("coalesce", "bailed-contained", key=ctx.key)
            return None
        keys = self._coalesce_keys(ctx, policy)
        for key in keys:
            flight = core.flights.lookup(key)
            if flight is None:
                continue
            max_followers = policy.max_followers
            if max_followers is not None and flight.waiters >= max_followers:
                core.emit("coalesce", "bailed-capacity", key=ctx.key)
                return None
            core.emit("coalesce", "followed", key=ctx.key)
            return Suspension("flight", flight)
        ctx.flight = core.flights.open(keys)
        core.emit("coalesce", "led", key=ctx.key)
        return None

    @staticmethod
    def _coalesce_keys(ctx: ReadContext, policy) -> tuple:
        """The flight-table keys this miss coalesces under."""
        keys: tuple = (("entry", ctx.key),)
        if (
            policy.coalesce_memo_plane
            and ctx.memo_source is not None
            and ctx.memo_fingerprint is not None
        ):
            keys += (("memo", ctx.memo_source, ctx.memo_fingerprint),)
        return keys

    @staticmethod
    def _chain_blocked(guard, ctx: ReadContext) -> bool:
        """True when any chain property's wrapper breaker is open.

        Mirrors the memo stage's peek-only probe: consulting the flight
        table must neither create breakers nor consume half-open probe
        slots.
        """
        for prop in read_chain_properties(ctx.reference):
            breaker = guard.wrappers.peek(
                (ctx.key.document_id, property_site(prop))
            )
            if breaker is not None and breaker.state is BreakerState.OPEN:
                return True
        return False


class FetchStage:
    """Full read through the level below, under the retry policy.

    Application reads trap the failure for the degradation stage;
    fill-serving reads let it propagate to the upper cache, whose own
    degradation cascade decides.
    """

    def __init__(self, core: CacheCore) -> None:
        self.core = core

    def run(self, ctx: ReadContext):
        core = self.core
        if ctx.for_fill:
            ctx.content, ctx.meta = core.fetch_with_retry(ctx.reference)
            self._mark_contained(ctx)
            return None
        budget = ctx.budget
        if budget is not None and budget.expired:
            # The deadline ran out before the expensive part began:
            # don't start a fetch whose result nobody will wait for.
            # The degradation stage downstream may still answer with
            # acceptable stale bytes before the error surfaces.
            core.emit("deadline", "exceeded", key=ctx.key, seam="fetch")
            ctx.fetch_error = budget.exceeded("fetch")
            return None
        try:
            ctx.content, ctx.meta = core.fetch_with_retry(
                ctx.reference, budget=budget
            )
        except CacheError:
            raise
        except Exception as error:
            core.emit("fetch", "failed", key=ctx.key)
            ctx.fetch_error = error
            return None
        if budget is not None and budget.expired:
            # The fetch itself overran the deadline.  The bytes are
            # fresh and already paid for, so they are served — "late",
            # not a violation (a violation is starting work past the
            # deadline, which the gate above rules out).
            core.emit("deadline", "late", key=ctx.key, seam="fetch")
        self._mark_contained(ctx)
        return None

    @staticmethod
    def _mark_contained(ctx: ReadContext) -> None:
        """A containment skip anywhere on the path degrades the serve."""
        meta = ctx.meta
        if meta is not None and (
            meta.contained_skips or meta.contained_required
        ):
            ctx.degraded = True


class DegradationStage:
    """The fetch-failure cascade: fresh content fetched past a failed
    backing level first, bounded stale bytes second, and only then does
    the read fail."""

    def __init__(self, core: CacheCore) -> None:
        self.core = core

    def run(self, ctx: ReadContext):
        if ctx.fetch_error is None:
            return None
        core = self.core
        recovered = self._bypass_backing(ctx.reference)
        if recovered is not None:
            core.emit("degradation", "bypassed", key=ctx.key)
            ctx.content, ctx.meta = recovered
            ctx.degraded = True
            ctx.fetch_error = None
            return None
        outcome = self._serve_stale(ctx)
        if outcome is None:
            raise ctx.fetch_error
        return outcome

    def _bypass_backing(self, reference: "DocumentReference"):
        """Degraded fetch past a failed backing level, or ``None``.

        When the second-level cache is unreachable, a cache configured
        with ``bypass_backing_on_error`` goes straight to the kernel —
        the content is fresh, only the hierarchy is degraded.
        """
        core = self.core
        if core.backing is None or not core.degradation.bypass_backing_on_error:
            return None
        try:
            outcome = core.kernel.read(reference)
        except Exception:
            return None
        return outcome.content, outcome.meta

    def _serve_stale(self, ctx: ReadContext) -> CacheReadOutcome | None:
        """Bounded serve-stale-on-error, or ``None`` if not permitted."""
        core = self.core
        if not core.degradation.serve_stale_on_error or ctx.stale is None:
            return None
        content, filled_at_ms = ctx.stale
        age_ms = core.ctx.clock.now_ms - filled_at_ms
        if not core.degradation.stale_age_acceptable(age_ms):
            core.emit("degradation", "stale-rejected", key=ctx.key)
            return None
        elapsed = core.ctx.clock.now_ms - ctx.started_ms
        core.emit("degradation", "stale-served", key=ctx.key)
        core.emit(
            "read", "stale-on-error", key=ctx.key, started_ms=ctx.started_ms
        )
        return CacheReadOutcome(
            content=content, hit=False, elapsed_ms=elapsed,
            disposition="stale-on-error",
        )


class AdmissionStage:
    """Terminal miss stage: consult the admission policy, fill, account.

    The returned cacheability vote decides whether/how to fill (§3);
    content larger than the whole cache is served but never admitted.
    """

    def __init__(self, core: CacheCore) -> None:
        self.core = core

    def run(self, ctx: ReadContext):
        core = self.core
        content, meta = ctx.content, ctx.meta
        assert content is not None and meta is not None
        disposition = "miss-degraded" if ctx.degraded else "miss"
        if meta.contained_required:
            # A *required* transformer was skipped by the containment
            # layer: the untransformed bytes may be served (degraded)
            # but never admitted, so every access misses to the kernel
            # until the breaker closes.
            core.emit("admission", "contained", key=ctx.key)
            core.emit(
                "read", disposition, key=ctx.key, started_ms=ctx.started_ms
            )
            if ctx.for_fill:
                return (content, meta)
            elapsed = core.ctx.clock.now_ms - ctx.started_ms
            return CacheReadOutcome(
                content=content, hit=False, elapsed_ms=elapsed,
                disposition=disposition,
            )
        decision = core.admission.decide(content, meta, core.capacity_bytes)
        if decision is AdmissionDecision.UNCACHEABLE:
            core.emit("admission", "uncacheable", key=ctx.key)
            disposition = "uncacheable"
            core.memo_record_negative(ctx.memo_fingerprint, ctx.key, meta)
        elif decision is AdmissionDecision.OVERSIZE:
            core.emit("admission", "oversize", key=ctx.key)
            disposition = "miss-oversize"
        else:
            entry = core.fill(ctx.reference, ctx.key, content, meta)
            core.emit("admission", "filled", key=ctx.key, bytes=len(content))
            if not ctx.degraded:
                # A degraded fill (containment skip or backing bypass)
                # ran a partial chain — its output must not be memoized.
                core.memo_record_output(ctx.memo_fingerprint, meta, entry)
        core.emit(
            "read", disposition, key=ctx.key, started_ms=ctx.started_ms
        )
        if ctx.for_fill:
            return (content, meta)
        elapsed = core.ctx.clock.now_ms - ctx.started_ms
        return CacheReadOutcome(
            content=content, hit=False, elapsed_ms=elapsed,
            disposition=disposition,
        )


class ReadPipeline:
    """Runs the read stages in order until one produces a result.

    One read is a generator over the stage sequence; the scheduler that
    drives it decides whether suspensions interleave other reads
    (async) or resolve inline (sequential, the default).
    """

    def __init__(self, core: CacheCore, writes: "WritePipeline") -> None:
        self.core = core
        self.stages = [
            DirtyFlushStage(core, writes),
            LookupStage(core),
            VerifierGateStage(core),
            AdoptionStage(core),
            L2Stage(core),
            MemoStage(core),
            SingleFlightStage(core),
            FetchStage(core),
            DegradationStage(core),
            AdmissionStage(core),
        ]
        #: Seam suspensions yielded *before* the keyed stage when the
        #: driving scheduler can interleave: the verifier seam and the
        #: fetch/chain seam, the two places a concurrent read path may
        #: switch to another read.
        self._seams = {
            id(self.stages[2]): VERIFIER_SEAM,
            id(self.stages[7]): FETCH_SEAM,
        }

    def read(self, reference: "DocumentReference") -> CacheReadOutcome:
        """Application read: run the stages to a ``CacheReadOutcome``."""
        return self.core.scheduler.drive(self.iterate(reference))

    def read_for_fill(self, reference: "DocumentReference"):
        """Lower-level serve: run the stages to ``(content, meta)``."""
        return self.core.scheduler.drive(self.iterate(reference, for_fill=True))

    def iterate(
        self,
        reference: "DocumentReference",
        *,
        for_fill: bool = False,
        scheduler: "Scheduler | None" = None,
        enqueued_ms: float | None = None,
    ):
        """One read as a scheduler-drivable generator.

        ``scheduler`` is whatever will drive the generator; the
        single-flight stage consults it to decide whether suspending is
        possible at all.  Nested reads (prefetch drains, backing-cache
        fills) leave it unset and run sequentially.  ``enqueued_ms``
        back-dates the read's arrival (``read_many`` batches pass their
        start instant) for the admission controller's sojourn signal.
        """
        budget = None
        if self.core.overload is not None and not for_fill:
            # The budget starts at *enqueue*: queueing delay counts
            # against the deadline, which is what makes sojourn-based
            # shedding protect the reads that are admitted.
            budget = self.core.overload.budget_for(reference, enqueued_ms)
        ctx = ReadContext(
            reference=reference,
            key=EntryKey.for_reference(reference),
            started_ms=self.core.ctx.clock.now_ms,
            for_fill=for_fill,
            scheduler=scheduler or self.core.scheduler,
            enqueued_ms=enqueued_ms,
            budget=budget,
        )
        return self._iterate(ctx)

    def _iterate(self, ctx: ReadContext):
        core = self.core
        concurrent = ctx.scheduler is not None and ctx.scheduler.supports_concurrency
        try:
            if not ctx.for_fill and core.overload is not None:
                decision = core.overload.admit(ctx.reference, ctx.enqueued_ms)
                if decision is not None:
                    if not decision.admitted:
                        core.emit(
                            "overload", "shed", key=ctx.key,
                            priority=PRIORITY_NAMES[decision.priority],
                            reason=decision.reason,
                            sojourn_ms=decision.sojourn_ms,
                        )
                        raise OverloadShedError(
                            f"read shed by admission control "
                            f"({decision.reason}: priority "
                            f"{PRIORITY_NAMES[decision.priority]}, sojourn "
                            f"{decision.sojourn_ms:.1f}ms, queue depth "
                            f"{decision.queue_depth:.0f})"
                        )
                    core.emit(
                        "overload", "admitted", key=ctx.key,
                        priority=PRIORITY_NAMES[decision.priority],
                        sojourn_ms=decision.sojourn_ms,
                    )
            while True:
                followed = False
                for stage in self.stages:
                    if concurrent:
                        seam = self._seams.get(id(stage))
                        if seam is not None:
                            yield seam
                    result = stage.run(ctx)
                    if isinstance(result, Suspension):
                        # Park on the leader's flight; on wake, re-enter
                        # the pipeline from the top, where the leader's
                        # fill (or memo record) answers this read.
                        payload = yield result
                        self._resume_follower(ctx, payload)
                        followed = True
                        break
                    if result is not None:
                        if ctx.flight is not None:
                            disposition = getattr(
                                result, "disposition", "fill"
                            )
                            core.flights.close(
                                ctx.flight, ("landed", disposition)
                            )
                            ctx.flight = None
                        return result
                if not followed:
                    raise CacheError(
                        "read pipeline ended without a terminal stage result"
                    )  # pragma: no cover - AdmissionStage always terminates
        except BaseException as error:
            if ctx.flight is not None:
                # Leader failure: deregister first, then wake followers —
                # the first to resume finds no flight and promotes
                # itself to lead its own fetch.
                core.flights.close(ctx.flight, ("failed", error))
                ctx.flight = None
            raise

    def _resume_follower(self, ctx: ReadContext, payload) -> None:
        """Reset per-attempt state after a flight wait; keep started_ms.

        The follower's latency deliberately includes the wait: its read
        began when it began, and the leader's remaining work is the
        price of coalescing.
        """
        ctx.entry = None
        ctx.stale = None
        ctx.content = None
        ctx.meta = None
        ctx.degraded = False
        ctx.fetch_error = None
        ctx.memo_fingerprint = None
        ctx.memo_source = None
        ctx.follows += 1
        if payload is not None and payload[0] == "failed":
            self.core.emit("coalesce", "promoted", key=ctx.key)


# -- write stages --------------------------------------------------------------


class InterposeStage:
    """Route the write: straight through (invalidating locally) or into
    the buffer stage, paying only the local hop now."""

    def __init__(self, core: CacheCore) -> None:
        self.core = core

    def run(self, ctx: WriteContext):
        core = self.core
        if core.write_mode is WriteMode.WRITE_THROUGH:
            core.kernel.write(ctx.reference, ctx.content)
            core.emit("write", "write-through", key=ctx.key)
            core.invalidate_local(ctx.key, InvalidationReason.LOCAL_WRITE)
            return True
        # Write-back: buffer locally; only the local hop is paid now.
        for hop in core.topology.hit_path():
            core.ctx.charge_hop(hop, len(ctx.content))
        return None


class BufferStage:
    """Write-back terminal: buffer dirty bytes, supersede the read entry,
    forward WRITE_FORWARDED to interested properties."""

    def __init__(self, core: CacheCore) -> None:
        self.core = core

    def run(self, ctx: WriteContext):
        core = self.core
        core.dirty[ctx.key] = (ctx.reference, bytes(ctx.content))
        if core.recovery is not None:
            # Journal before acknowledging: once write() returns, a
            # crash must not be able to lose these bytes.
            core.recovery.journal_append(
                ctx.key, ctx.reference, ctx.content
            )
        # The cached read entry (if any) no longer reflects what this
        # user would read — their buffered write supersedes it.
        core.invalidate_local(ctx.key, InvalidationReason.LOCAL_WRITE)
        core.emit("write", "write-back", key=ctx.key)
        core.forward_write(ctx.reference, len(ctx.content))
        return True


class FlushStage:
    """Push one buffered write-back through the full write path.

    Runs under the retry policy, if one is configured.  A flush that
    still fails keeps the dirty buffer (the write is not lost; a later
    flush can retry) and re-raises.
    """

    def __init__(self, core: CacheCore) -> None:
        self.core = core

    def flush(self, reference: "DocumentReference") -> bool:
        core = self.core
        key = EntryKey.for_reference(reference)
        buffered = core.dirty.pop(key, None)
        if buffered is None:
            return False
        dirty_reference, content = buffered
        try:
            if core.retry_policy is None:
                core.kernel.write(dirty_reference, content)
            else:
                core.retry_policy.call(
                    core.ctx,
                    lambda: core.kernel.write(dirty_reference, content),
                    on_retry=core.count_retry,
                )
        except Exception:
            core.dirty[key] = buffered
            core.emit("flush", "failed", key=key)
            raise
        core.emit("flush", "flushed", key=key)
        if core.recovery is not None:
            core.recovery.journal_mark_flushed(key)
        return True


class WritePipeline:
    """Runs the write stages; owns the flush stage for drains too."""

    def __init__(self, core: CacheCore) -> None:
        self.core = core
        self.stages = [InterposeStage(core), BufferStage(core)]
        self._flush_stage = FlushStage(core)

    def write(self, reference: "DocumentReference", content: bytes) -> float:
        """Write through (or into) the cache; returns elapsed virtual ms."""
        return self.core.scheduler.drive(self.iterate(reference, content))

    def iterate(self, reference: "DocumentReference", content: bytes):
        """One write as a scheduler-drivable generator.

        Writes are short critical sections — interpose/buffer mutate
        shared state — so the only suspension point is *before* the
        stages run: under a concurrent scheduler a write may interleave
        with in-flight reads at that seam, but never mid-mutation.
        """
        ctx = WriteContext(
            reference=reference,
            key=EntryKey.for_reference(reference),
            content=content,
            started_ms=self.core.ctx.clock.now_ms,
        )
        return self._iterate(ctx)

    def _iterate(self, ctx: WriteContext):
        if self.core.scheduler.supports_concurrency:
            yield FETCH_SEAM
        for stage in self.stages:
            if stage.run(ctx):
                break
        return self.core.ctx.clock.now_ms - ctx.started_ms

    def flush(self, reference: "DocumentReference") -> bool:
        """Flush one buffered write-back (False when nothing is dirty)."""
        return self._flush_stage.flush(reference)

    def flush_all(self) -> int:
        """Flush every buffered write-back; returns how many flushed."""
        flushed = 0
        for key in list(self.core.dirty):
            dirty_reference, _ = self.core.dirty[key]
            if self.flush(dirty_reference):
                flushed += 1
        return flushed
