"""The document content cache manager: public API over the staged pipeline.

:class:`DocumentCache` is the §3/§4 cache — per-(document, user) entries
indirecting through content signatures, verifier-gated hits, minimum
notifier sets on fills, cacheability-vote admission, pluggable
replacement, write-through/write-back — but the mechanics live
elsewhere: :class:`~repro.cache.core.CacheCore` holds the state,
:mod:`repro.cache.pipeline` the staged read and write paths,
:mod:`repro.cache.policies` the pluggable admission and degradation
decisions, and :mod:`repro.cache.instrumentation` the structured-event
bus every counter is now derived from.  This module is only the wiring
plus the public surface.
"""

from __future__ import annotations

import typing

from repro.cache.consistency import Invalidation, InvalidationReason
from repro.cache.containment import ContainmentGuard, ContainmentStats
from repro.cache.core import (  # noqa: F401  (constants re-exported for compat)
    ADOPTION_COST_MS,
    NOTIFIER_INSTALL_COST_MS,
    VERIFIER_INSTALL_COST_MS,
    CacheCore,
)
from repro.cache.entry import CacheEntry, EntryKey
from repro.cache.fastpath import FastReadLane
from repro.cache.instrumentation import (
    ConcurrencyStats,
    ConcurrencyStatsProjection,
    InstrumentationBus,
    OverloadStats,
    OverloadStatsProjection,
    StageRecorder,
    StatsProjection,
)
from repro.cache.memo import MemoStats, MemoStatsProjection, TransformMemo
from repro.cache.notifiers import InvalidationBus
from repro.cache.pipeline import (
    CacheReadOutcome,
    ReadPipeline,
    WriteMode,
    WritePipeline,
)
from repro.cache.policies import (
    AdmissionPolicy,
    ConcurrencyPolicy,
    ContainmentPolicy,
    DefaultDegradationPolicy,
    DegradationPolicy,
    GreedyDualSizePolicy,
    MemoPolicy,
    OverloadPolicy,
    RecoveryPolicy,
    ReplacementPolicy,
    StoragePolicy,
    VoteAdmissionPolicy,
)
from repro.cache.recovery import ConsistencyRecoveryManager, RecoveryStats
from repro.errors import (
    CacheCapacityError,
    CacheError,
    DeadlineExceededError,
    OverloadShedError,
)
from repro.ids import DocumentId, UserId
from repro.overload.gate import OverloadGate
from repro.sim.scheduler import AsyncScheduler, FlightTable
from repro.sim.topology import CachePlacement, Topology

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.retry import RetryPolicy
    from repro.placeless.kernel import PlacelessKernel
    from repro.placeless.reference import DocumentReference
    from repro.storage.tier import L2Tier, StorageStats

__all__ = ["WriteMode", "CacheReadOutcome", "DocumentCache"]


class DocumentCache:
    """An application-level (or server co-located) content cache.

    Parameters
    ----------
    kernel, capacity_bytes:
        The Placeless kernel behind this cache, and the physical capacity
        of its deduplicated content store.
    policy:
        Replacement policy; defaults to cost-aware Greedy-Dual-Size.
    bus:
        The invalidation bus notifiers deliver through; one is created
        (and registered with) if not supplied.
    write_mode:
        Write-through (default) or write-back.
    install_notifiers, use_verifiers:
        Whether fills install the §3 minimum notifier set, and whether
        hits execute verifiers.  The A1 ablation disables one of them to
        run verifier-only / notifier-only.
    track_staleness:
        When True, every hit is compared against ground truth (the
        repository's current raw bytes) to count stale hits — possible
        only in simulation, free of charge to the virtual clock.
    placement:
        Where *this* cache sits (overrides the topology default): an
        application-level cache serves hits over the local hop, a
        server-colocated one over the app→reference-server hop (§4).
    backing:
        Optional second-level cache misses are filled through, modelling
        the §4 deployment with both cache levels.
    serve_stale_on_error, stale_serve_max_age_ms,
    verifier_quarantine_threshold, bypass_backing_on_error:
        Degradation bounds, forwarded to the default
        :class:`~repro.cache.policies.DefaultDegradationPolicy` (see its
        docs) — bounded availability-over-freshness stale serving,
        circuit-breaker quarantine of repeatedly-raising verifiers
        (inspect and reset via the policy's ``breakers`` registry), and
        fetching straight from the kernel past a failed backing level.
    retry_policy:
        Optional :class:`~repro.faults.retry.RetryPolicy` applied to
        miss-path fetches and write-back flushes; backoff waits are
        charged to the virtual clock and counted in the stats.
    share_across_users:
        §3's signature-adoption optimization: a miss that finds another
        user's *valid* entry for the same document with an identical
        transformation-chain signature adopts that entry's content
        signature (after re-running its verifiers) instead of executing
        the full read path.  Off by default — the paper describes it as
        an extension beyond the implemented prototype.
    admission_policy:
        Override for the fill-admission decision (defaults to
        :class:`~repro.cache.policies.VoteAdmissionPolicy`, the §3
        cacheability-vote behaviour).
    degradation_policy:
        Override for the degradation bounds/quarantine bookkeeping; when
        supplied, the four individual degradation arguments are ignored.
    instrumentation:
        The :class:`~repro.cache.instrumentation.InstrumentationBus`
        stage events are emitted on; a private one is created if not
        supplied.  Pass a shared bus to aggregate several caches onto
        one subscriber.
    recovery_policy:
        Opt-in consistency recovery
        (:class:`~repro.cache.policies.RecoveryPolicy`, e.g.
        :class:`~repro.cache.policies.DefaultRecoveryPolicy`): a leased,
        sequenced notifier channel with gap detection and anti-entropy
        resync, plus a crash-recovery write-back journal.  ``None`` (the
        default) keeps the cache byte-identical to its pre-recovery
        behaviour.
    containment_policy:
        Opt-in containment of misbehaving active-property code
        (:class:`~repro.cache.policies.ContainmentPolicy`, e.g.
        :class:`~repro.cache.policies.DefaultContainmentPolicy`):
        per-(document, code-site) circuit breakers, per-invocation
        execution budgets and exception firewalls around the stream
        wrappers, verifier executions and notifier callbacks, with a
        per-role fallback (skip / force-miss / deny) when a breaker is
        open.  ``None`` (the default) keeps every property-code seam on
        its historical unguarded path.
    memo_policy:
        Opt-in transform memoization
        (:class:`~repro.cache.policies.MemoPolicy`, e.g.
        :class:`~repro.cache.policies.DefaultMemoPolicy`): a bounded
        ``(source signature, chain fingerprint) → output signature``
        memo consulted between adoption and fetch, so a miss whose
        source bytes and transformation chain match a previous fill is
        answered by signature adoption instead of a provider fetch plus
        chain execution.  ``None`` (the default) keeps the miss path
        byte-identical to the pre-memo pipeline.
    concurrency_policy:
        Opt-in concurrent read path
        (:class:`~repro.cache.policies.ConcurrencyPolicy`, e.g.
        :class:`~repro.cache.policies.DefaultConcurrencyPolicy`):
        :meth:`read_many` drives batches through an asyncio-backed
        :class:`~repro.sim.scheduler.AsyncScheduler`, and — when the
        policy's ``coalesce`` flag is on — concurrent misses
        single-flight: one provider fetch and one property-chain
        execution shared among every concurrent requester of the same
        ``(document, user)`` key (and, with a memo policy, the same
        ``(source signature, chain fingerprint)`` pair), with
        leader-failure promotion and breaker/budget bail-outs.
        ``None`` (the default) keeps every read sequential and the
        cache byte-identical to its pre-concurrency behaviour.
    storage_policy:
        Opt-in durable L2 tier
        (:class:`~repro.cache.policies.StoragePolicy`, e.g.
        :class:`~repro.cache.policies.DefaultStoragePolicy`): evictions
        demote their bytes and metadata to checksummed on-disk
        segments, misses promote them back under full validity gating
        (chain signature, source probe, CRC, verifiers), the write-back
        journal and transform memo spill to disk, and
        :meth:`restart` recovers all of it after a :meth:`crash` with
        every recovered entry verifier-gated on its first serve.  Disk
        faults trip a storage breaker; while it is open the cache runs
        L1-only.  ``None`` (the default) builds no tier and keeps the
        cache byte-identical to its storage-free behaviour.
    overload_policy:
        Opt-in overload robustness
        (:class:`~repro.cache.policies.OverloadPolicy`, e.g.
        :class:`~repro.cache.policies.DefaultOverloadPolicy`): every
        application read carries an end-to-end
        :class:`~repro.overload.budget.DeadlineBudget` (tightened to
        the chain's QoS access-time target when one is declared),
        charged implicitly by every virtual-clock charge on the path
        and gated explicitly before the expensive seams; an expired
        read degrades through the serve-stale ladder instead of
        starting work nobody will wait for, and retry backoff never
        sleeps past the remaining budget.  A token-bucket + sojourn
        admission controller in front of the pipeline sheds
        lowest-priority reads first (priority derived from the chain's
        properties: pinning → critical, finite QoS target → qos, else
        bulk) so goodput stays flat past saturation.  Shed and
        deadline-failed reads surface as typed
        :class:`~repro.errors.OverloadShedError` /
        :class:`~repro.errors.DeadlineExceededError` outcomes — always
        in-place entries from :meth:`read_many`, regardless of
        ``return_exceptions``.  ``None`` (the default) keeps every read
        unbudgeted and unshed, byte-identical to the pre-overload
        pipeline.
    core:
        Injected :class:`~repro.cache.core.CacheCore` — the cluster
        layer's seam.  When supplied, the state-building arguments
        (capacity, replacement policy, bus, topology, write mode,
        feature flags, backing, retry policy) are taken from the
        injected core and the corresponding constructor arguments are
        ignored; this cache becomes pure wiring (pipelines, planes,
        projections) over externally owned state.
    memo:
        Injected :class:`~repro.cache.memo.TransformMemo` (or a
        subclass — the cluster's shared cross-shard view).  Requires a
        ``memo_policy``; without this argument a private table of the
        policy's capacity is built, the historical behaviour.
    flights:
        Injected :class:`~repro.sim.scheduler.FlightTable`.  A cluster
        passes one table to every shard so single-flight coalescing on
        the ``(source signature, chain fingerprint)`` memo plane spans
        shard boundaries; by default each cache owns a private table.
    """

    def __init__(
        self,
        kernel: "PlacelessKernel",
        capacity_bytes: int,
        policy: ReplacementPolicy | None = None,
        bus: InvalidationBus | None = None,
        write_mode: WriteMode = WriteMode.WRITE_THROUGH,
        install_notifiers: bool = True,
        use_verifiers: bool = True,
        track_staleness: bool = False,
        placement: "CachePlacement | None" = None,
        backing: "DocumentCache | None" = None,
        share_across_users: bool = False,
        serve_stale_on_error: bool = False,
        stale_serve_max_age_ms: float | None = None,
        retry_policy: "RetryPolicy | None" = None,
        verifier_quarantine_threshold: int | None = None,
        bypass_backing_on_error: bool = False,
        name: str = "cache",
        admission_policy: AdmissionPolicy | None = None,
        degradation_policy: DegradationPolicy | None = None,
        instrumentation: InstrumentationBus | None = None,
        recovery_policy: RecoveryPolicy | None = None,
        containment_policy: ContainmentPolicy | None = None,
        memo_policy: MemoPolicy | None = None,
        concurrency_policy: ConcurrencyPolicy | None = None,
        storage_policy: StoragePolicy | None = None,
        overload_policy: OverloadPolicy | None = None,
        core: CacheCore | None = None,
        memo: TransformMemo | None = None,
        flights: "FlightTable | None" = None,
        fast_lane: bool = True,
    ) -> None:
        ctx = kernel.ctx
        if core is not None:
            self.instrumentation = core.instrumentation
            self._core = core
        else:
            self.instrumentation = instrumentation or InstrumentationBus()
            self._core = self._build_core(
                kernel=kernel,
                capacity_bytes=capacity_bytes,
                name=name,
                policy=policy,
                admission_policy=admission_policy,
                degradation_policy=degradation_policy,
                bus=bus,
                placement=placement,
                write_mode=write_mode,
                install_notifiers=install_notifiers,
                use_verifiers=use_verifiers,
                track_staleness=track_staleness,
                share_across_users=share_across_users,
                backing=backing,
                retry_policy=retry_policy,
                serve_stale_on_error=serve_stale_on_error,
                stale_serve_max_age_ms=stale_serve_max_age_ms,
                verifier_quarantine_threshold=verifier_quarantine_threshold,
                bypass_backing_on_error=bypass_backing_on_error,
            )
        if core is None:
            self._core.name = name
        self._wire_pipelines()
        self._wire_containment(containment_policy, ctx)
        self._wire_memo(memo_policy, memo)
        self._wire_concurrency(concurrency_policy, flights)
        self._wire_overload(overload_policy, ctx)
        self._wire_recovery(recovery_policy)
        # Storage wires last: the tier's construction-time recovery
        # scan reloads into the memo table and dirty buffer, which the
        # memo/recovery wiring must have set up first.
        self._wire_storage(storage_policy)
        self._schedule_fault_crashes(ctx)
        # The fast lane wires last: it snapshots the instrumentation
        # subscriber tuple as its eligibility baseline, so every wiring
        # step's projections must already be subscribed.
        self._fast: FastReadLane | None = None
        if fast_lane:
            self._fast = FastReadLane(self._core, self._reads, self.recorder)

    # -- construction steps ---------------------------------------------------

    def _build_core(
        self,
        *,
        kernel: "PlacelessKernel",
        capacity_bytes: int,
        name: str,
        policy: ReplacementPolicy | None,
        admission_policy: AdmissionPolicy | None,
        degradation_policy: DegradationPolicy | None,
        bus: InvalidationBus | None,
        placement: "CachePlacement | None",
        write_mode: WriteMode,
        install_notifiers: bool,
        use_verifiers: bool,
        track_staleness: bool,
        share_across_users: bool,
        backing: "DocumentCache | None",
        retry_policy: "RetryPolicy | None",
        serve_stale_on_error: bool,
        stale_serve_max_age_ms: float | None,
        verifier_quarantine_threshold: int | None,
        bypass_backing_on_error: bool,
    ) -> CacheCore:
        """Build the state container from the constructor arguments."""
        if capacity_bytes <= 0:
            raise CacheCapacityError(
                f"capacity must be positive: {capacity_bytes}"
            )
        if degradation_policy is None:
            degradation_policy = DefaultDegradationPolicy(
                serve_stale_on_error=serve_stale_on_error,
                stale_serve_max_age_ms=stale_serve_max_age_ms,
                bypass_backing_on_error=bypass_backing_on_error,
                verifier_quarantine_threshold=verifier_quarantine_threshold,
            )
        ctx = kernel.ctx
        if placement is None:
            topology = ctx.topology
        else:
            topology = Topology(placement=placement)
        return CacheCore(
            kernel=kernel,
            capacity_bytes=capacity_bytes,
            cache_id=ctx.ids.cache(name),
            policy=policy or GreedyDualSizePolicy(),
            admission=admission_policy or VoteAdmissionPolicy(),
            degradation=degradation_policy,
            bus=bus
            or InvalidationBus(ctx, instrumentation=self.instrumentation),
            instrumentation=self.instrumentation,
            topology=topology,
            write_mode=write_mode,
            install_notifiers=install_notifiers,
            use_verifiers=use_verifiers,
            track_staleness=track_staleness,
            share_across_users=share_across_users,
            backing=backing,
            retry_policy=retry_policy,
        )

    def _wire_pipelines(self) -> None:
        """Projections, stage recorder, read/write pipelines, prefetch."""
        self.recorder = StageRecorder()
        self.instrumentation.subscribe(StatsProjection(self._core.stats))
        self.instrumentation.subscribe(self.recorder)
        self._writes = WritePipeline(self._core)
        self._reads = ReadPipeline(self._core, self._writes)
        self._prefetch_queue: list["DocumentReference"] = []
        self._draining_prefetch = False

    def _wire_containment(
        self, containment_policy: ContainmentPolicy | None, ctx
    ) -> None:
        self._containment: ContainmentGuard | None = None
        if containment_policy is not None:
            self._containment = ContainmentGuard(
                containment_policy, ctx, self.instrumentation
            )
            self._core.containment = self._containment
            ctx.containment = self._containment

    def _wire_memo(
        self, memo_policy: MemoPolicy | None, memo: TransformMemo | None
    ) -> None:
        self._memo_stats: MemoStatsProjection | None = None
        if memo_policy is None:
            if memo is not None:
                raise CacheError(
                    "an injected memo table requires a memo_policy"
                )
            return
        self._core.memo_policy = memo_policy
        self._core.memo = (
            memo if memo is not None else TransformMemo(memo_policy.capacity)
        )
        self._memo_stats = MemoStatsProjection()
        self.instrumentation.subscribe(self._memo_stats)

    def _wire_concurrency(
        self,
        concurrency_policy: ConcurrencyPolicy | None,
        flights: "FlightTable | None",
    ) -> None:
        self._concurrency_stats: ConcurrencyStatsProjection | None = None
        if flights is not None:
            self._core.flights = flights
        if concurrency_policy is not None:
            self._core.concurrency = concurrency_policy
            self._concurrency_stats = ConcurrencyStatsProjection()
            self.instrumentation.subscribe(self._concurrency_stats)

    def _wire_overload(
        self, overload_policy: OverloadPolicy | None, ctx
    ) -> None:
        self._overload_stats: OverloadStatsProjection | None = None
        if overload_policy is None:
            return
        self._core.overload = OverloadGate(ctx.clock, overload_policy)
        self._overload_stats = OverloadStatsProjection()
        self.instrumentation.subscribe(self._overload_stats)

    def _wire_recovery(self, recovery_policy: RecoveryPolicy | None) -> None:
        self._recovery: ConsistencyRecoveryManager | None = None
        if recovery_policy is not None:
            self._recovery = ConsistencyRecoveryManager(
                self._core, recovery_policy, self.apply_invalidation
            )
            self._core.recovery = self._recovery
            self.bus.register(self.cache_id, self._recovery.receive)
        else:
            self.bus.register(self.cache_id, self.apply_invalidation)

    def _wire_storage(self, storage_policy: StoragePolicy | None) -> None:
        if storage_policy is None:
            return
        from repro.storage.tier import L2Tier

        self._core.l2 = L2Tier(self._core, storage_policy)

    def _schedule_fault_crashes(self, ctx) -> None:
        # Scheduled crash instants apply to every cache on the faulted
        # context, journalled or not — the unjournalled one simply loses
        # its unflushed writes, which is the A13 contrast.
        plan = ctx.faults
        if plan is not None:
            for instant in plan.cache_crashes:
                if instant >= ctx.clock.now_ms:
                    ctx.clock.call_at(instant, self._crash_and_restart)

    # -- wiring access -------------------------------------------------------

    #: Attributes transparently read from the core (kernel/context/state
    #: handles plus the construction-time configuration flags).
    _CORE_ATTRS = frozenset({
        "kernel", "ctx", "capacity_bytes", "policy", "bus", "stats",
        "store", "cache_id", "write_mode", "backing", "retry_policy",
        "install_notifiers", "use_verifiers", "track_staleness",
        "share_across_users",
    })
    #: Degradation bounds, readable under their legacy constructor names.
    _DEGRADATION_ATTRS = frozenset({
        "serve_stale_on_error", "stale_serve_max_age_ms",
        "bypass_backing_on_error",
    })

    def __getattr__(self, name: str):
        if not name.startswith("_"):
            if name in DocumentCache._CORE_ATTRS:
                return getattr(self._core, name)
            if name in DocumentCache._DEGRADATION_ATTRS:
                return getattr(self._core.degradation, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    @property
    def core(self) -> CacheCore:
        """The state container behind this cache (the cluster seam)."""
        return self._core

    @property
    def admission_policy(self) -> AdmissionPolicy:
        """The fill-admission policy."""
        return self._core.admission

    @property
    def degradation_policy(self) -> DegradationPolicy:
        """The degradation/quarantine policy."""
        return self._core.degradation

    @property
    def verifier_quarantine_threshold(self) -> int | None:
        """Consecutive verifier raises before quarantine, if enabled."""
        return getattr(
            self._core.degradation, "verifier_quarantine_threshold", None
        )

    # -- introspection ------------------------------------------------------

    def __contains__(self, key: EntryKey) -> bool:
        return key in self._core.entries

    def __len__(self) -> int:
        return len(self._core.entries)

    def entries(self) -> list[CacheEntry]:
        """All live entries (unspecified order)."""
        return list(self._core.entries.values())

    def entry_for(self, reference: "DocumentReference") -> CacheEntry | None:
        """The live entry for a reference's (document, user) pair, if any."""
        return self._core.entries.get(self._key(reference))

    @property
    def used_bytes(self) -> int:
        """Physical (deduplicated) bytes currently cached."""
        return self._core.store.physical_bytes

    @staticmethod
    def _key(reference: "DocumentReference") -> EntryKey:
        return EntryKey.for_reference(reference)

    def _expected_chain_signature(self, reference: "DocumentReference"):
        """See :meth:`CacheCore.expected_chain_signature`."""
        return self._core.expected_chain_signature(reference)

    def stage_breakdown(self) -> StageRecorder:
        """Per-(stage, outcome) count/latency recorder for this cache."""
        return self.recorder

    def describe(self) -> str:
        """Human-readable dump of the cache's state, one line per entry."""
        core = self._core
        lines = [
            f"{self.cache_id}: {len(core.entries)} entries, "
            f"{core.store.physical_bytes}/{self.capacity_bytes} bytes "
            f"({len(core.store)} distinct contents), "
            f"policy={self.policy.name}, mode={self.write_mode.value}"
        ]
        for entry in sorted(core.entries.values(), key=lambda e: str(e.key)):
            flags = []
            if entry.pinned:
                flags.append("pinned")
            if entry.is_dirty:
                flags.append("dirty")
            lines.append(
                f"  {entry.key} -> {entry.signature.short} "
                f"{entry.size}B {entry.cacheability.name} "
                f"verifiers={len(entry.verifiers)} "
                f"cost={entry.replacement_cost_ms:.2f}ms "
                f"accesses={entry.access_count}"
                + (f" [{','.join(flags)}]" if flags else "")
            )
        if core.dirty:
            lines.append(f"  dirty write-backs pending: {len(core.dirty)}")
        return "\n".join(lines)

    # -- read path -----------------------------------------------------------

    def read(self, reference: "DocumentReference") -> CacheReadOutcome:
        """Read the document through the cache.

        Any collection-prefetch requests queued by properties during the
        read are serviced *after* the outcome is computed, so prefetch
        work never inflates the triggering read's latency.

        With the fast lane enabled (the default), a verified hit on a
        cache with every optional seam disabled is served inline —
        byte-identical observable behaviour, none of the staged
        pipeline's per-read interpreter overhead; anything else falls
        back to the staged path before the first charge.
        """
        if self._fast is not None:
            outcome = self._fast.read(reference)
        else:
            outcome = self._reads.read(reference)
        self._drain_prefetch()
        return outcome

    def read_many(
        self,
        references: typing.Sequence["DocumentReference"],
        *,
        return_exceptions: bool = False,
    ) -> list[CacheReadOutcome]:
        """Read a batch concurrently; outcomes in submission order.

        With a ``concurrency_policy``, the batch runs under an
        asyncio-backed :class:`~repro.sim.scheduler.AsyncScheduler`:
        reads interleave at the verifier and fetch/chain seams, and —
        when the policy coalesces — concurrent misses on one key share
        a single flight.  Without one, the batch degenerates to
        sequential :meth:`read` calls, so callers can use ``read_many``
        unconditionally.

        With ``return_exceptions`` per-read failures are returned
        in-place instead of re-raised (the whole batch always runs to
        termination either way).  With an ``overload_policy``, shed and
        deadline-failed reads are *always* returned in-place as typed
        :class:`~repro.errors.OverloadShedError` /
        :class:`~repro.errors.DeadlineExceededError` entries — an
        overloaded batch is an expected outcome, not a caller bug —
        and every read in the batch shares the batch-start enqueue
        instant, so sojourn (and the deadline) accrues while earlier
        reads hold the clock.
        """
        overload = self._core.overload
        if self._core.concurrency is None:
            if overload is None:
                # The historical sequential arm, byte-identical.
                if not return_exceptions:
                    return [self.read(reference) for reference in references]
                outcomes: list = []
                for reference in references:
                    try:
                        outcomes.append(self.read(reference))
                    except Exception as error:
                        outcomes.append(error)
                return outcomes
            enqueued_ms = self._core.ctx.clock.now_ms
            gated: list = []
            for reference in references:
                try:
                    gated.append(
                        self._core.scheduler.drive(
                            self._reads.iterate(
                                reference, enqueued_ms=enqueued_ms
                            )
                        )
                    )
                except (OverloadShedError, DeadlineExceededError) as error:
                    gated.append(error)
                except Exception as error:
                    if not return_exceptions:
                        raise
                    gated.append(error)
                self._drain_prefetch()
            return gated
        scheduler = AsyncScheduler()
        if overload is None:
            results = scheduler.run(
                [
                    self.iterate_read(reference, scheduler=scheduler)
                    for reference in references
                ],
                return_exceptions=return_exceptions,
            )
            self._drain_prefetch()
            return results
        enqueued_ms = self._core.ctx.clock.now_ms
        results = scheduler.run(
            [
                self.iterate_read(
                    reference, scheduler=scheduler, enqueued_ms=enqueued_ms
                )
                for reference in references
            ],
            return_exceptions=True,
        )
        if not return_exceptions:
            for result in results:
                if isinstance(result, BaseException) and not isinstance(
                    result, (OverloadShedError, DeadlineExceededError)
                ):
                    raise result
        self._drain_prefetch()
        return results

    def iterate_read(
        self,
        reference: "DocumentReference",
        *,
        scheduler,
        enqueued_ms: float | None = None,
    ):
        """One read as a suspendable generator for an external scheduler.

        The cluster-layer seam behind :meth:`read_many`: a coordinator
        fanning a batch across several caches builds one
        :class:`~repro.sim.scheduler.AsyncScheduler`, collects each
        target cache's generator through this method, and drives them
        together — deterministic interleaving and single-flight
        coalescing then span cache boundaries.  Callers must
        :meth:`drain_prefetch` once the batch completes.
        """
        return self._reads.iterate(
            reference, scheduler=scheduler, enqueued_ms=enqueued_ms
        )

    def drain_prefetch(self) -> None:
        """Service queued collection prefetches (see :meth:`read_many`)."""
        self._drain_prefetch()

    def read_for_fill(self, reference: "DocumentReference"):
        """Serve an upper-level cache: content plus fill metadata.

        A hit synthesizes the metadata the upper cache needs (verifiers,
        cacheability, replacement cost, chain signature) from the stored
        entry — the same information the read path originally supplied;
        a miss runs the normal miss path and reuses its metadata.
        """
        return self._reads.read_for_fill(reference)

    # -- collection prefetch (§5 "related documents") -------------------------

    def request_prefetch(self, reference: "DocumentReference") -> bool:
        """Queue a sibling document for prefetching after the current read
        (used by ``CollectionPrefetchProperty`` to tailor caching for
        related documents).  Returns True if queued."""
        key = self._key(reference)
        if key in self._core.entries:
            return False
        if any(self._key(queued) == key for queued in self._prefetch_queue):
            return False
        self._prefetch_queue.append(reference)
        self._core.emit("prefetch", "requested", key=key)
        return True

    def _drain_prefetch(self) -> None:
        """Fill every queued prefetch (misses only; no recursion)."""
        if self._draining_prefetch:
            return
        self._draining_prefetch = True
        try:
            while self._prefetch_queue:
                reference = self._prefetch_queue.pop(0)
                key = self._key(reference)
                if key in self._core.entries:
                    continue
                self._reads.read(reference)
                entry = self._core.entries.get(key)
                if entry is not None:
                    entry.policy_state["prefetched"] = True
                    self._core.emit("prefetch", "filled", key=key)
        finally:
            self._draining_prefetch = False

    # -- write path -----------------------------------------------------------

    def write(self, reference: "DocumentReference", content: bytes) -> float:
        """Write through (or into) the cache; returns elapsed virtual ms."""
        return self._writes.write(reference, content)

    def flush(self, reference: "DocumentReference") -> bool:
        """Push a buffered write-back through the full write path."""
        return self._writes.flush(reference)

    def flush_all(self) -> int:
        """Flush every buffered write-back; returns how many flushed."""
        return self._writes.flush_all()

    @property
    def dirty_count(self) -> int:
        """Buffered (unflushed) write-backs."""
        return len(self._core.dirty)

    # -- containment -----------------------------------------------------------

    @property
    def containment(self) -> ContainmentGuard | None:
        """The containment guard, when a containment policy is set."""
        return self._containment

    @property
    def containment_stats(self) -> ContainmentStats | None:
        """Containment counters (``None`` without a containment policy)."""
        return (
            self._containment.stats if self._containment is not None else None
        )

    # -- transform memoization -------------------------------------------------

    @property
    def memo(self) -> TransformMemo | None:
        """The transform memo table, when a memo policy is set."""
        return self._core.memo

    @property
    def memo_policy(self) -> MemoPolicy | None:
        """The memo policy, when one is set."""
        return self._core.memo_policy

    @property
    def memo_stats(self) -> MemoStats | None:
        """Memo-plane counters (``None`` without a memo policy)."""
        return (
            self._memo_stats.stats if self._memo_stats is not None else None
        )

    # -- concurrency -----------------------------------------------------------

    @property
    def concurrency_policy(self) -> ConcurrencyPolicy | None:
        """The concurrency policy, when one is set."""
        return self._core.concurrency

    @property
    def concurrency_stats(self) -> ConcurrencyStats | None:
        """Single-flight counters (``None`` without a concurrency policy)."""
        return (
            self._concurrency_stats.stats
            if self._concurrency_stats is not None
            else None
        )

    # -- overload --------------------------------------------------------------

    @property
    def overload_policy(self) -> OverloadPolicy | None:
        """The overload policy, when one is set."""
        gate = self._core.overload
        return gate.policy if gate is not None else None

    @property
    def overload_stats(self) -> OverloadStats | None:
        """Overload-layer counters (``None`` without an overload policy)."""
        return (
            self._overload_stats.stats
            if self._overload_stats is not None
            else None
        )

    # -- durable storage -------------------------------------------------------

    @property
    def storage(self) -> "L2Tier | None":
        """The durable L2 tier, when a storage policy is set."""
        return self._core.l2

    @property
    def storage_stats(self) -> "StorageStats | None":
        """Durable-tier counters (``None`` without a storage policy)."""
        return self._core.l2.stats if self._core.l2 is not None else None

    def compact_storage(self) -> int:
        """Reclaim dead bytes in the durable tier; returns bytes freed.

        Requires a storage policy (there is nothing to compact without
        the tier).
        """
        if self._core.l2 is None:
            raise CacheError(
                "compact_storage requires a storage_policy on this cache"
            )
        return self._core.l2.compact()

    # -- consistency recovery --------------------------------------------------

    @property
    def recovery(self) -> ConsistencyRecoveryManager | None:
        """The recovery coordinator, when a recovery policy is set."""
        return self._recovery

    @property
    def recovery_stats(self) -> RecoveryStats | None:
        """Recovery-layer counters (``None`` without a recovery policy)."""
        return self._recovery.stats if self._recovery is not None else None

    def resync(self) -> int:
        """Force one anti-entropy resync; returns entries repaired.

        Requires a recovery policy (the resync needs the channel/lease
        machinery to reset afterwards).
        """
        if self._recovery is None:
            raise CacheError(
                "resync requires a recovery_policy on this cache"
            )
        return self._recovery.resync()

    def crash(self) -> None:
        """Simulate a cache-process crash: volatile state vanishes.

        The entry table, content store references and dirty write-back
        buffer are discarded without invalidation traffic (the process
        died; nothing ran).  The write-back journal — stable storage —
        survives for :meth:`restart` to replay.
        """
        core = self._core
        core.emit(
            "crash", "crashed",
            entries=len(core.entries), dirty=len(core.dirty),
        )
        for entry in list(core.entries.values()):
            core.remove_entry(entry)
        core.dirty.clear()
        self._prefetch_queue.clear()
        # The memo is volatile state too: a record that survived the
        # crash could map onto content-store bytes that did not.
        core.memo_purge("crash")
        if core.l2 is not None:
            # The durable tier loses exactly its un-fsynced bytes and
            # its in-memory catalog; what the disk kept, :meth:`restart`
            # recovers.
            core.l2.crash()
        if self._recovery is not None:
            self._recovery.on_crash()

    def restart(self) -> int:
        """Recover after :meth:`crash`; returns replayed dirty writes.

        With a journalling recovery policy the unflushed write-backs are
        replayed into the dirty buffer (idempotently), the notifier
        lease is re-granted and the channel resynced; without one the
        restart comes back empty-handed.  With a storage policy the
        durable tier then recovers on top: the demotion catalog is
        rebuilt (every recovered entry verify-on-first-serve), disk-
        journalled writes the in-memory journal did not cover are
        replayed, and spilled memo records reload — the warm restart.
        """
        replayed = 0
        if self._recovery is not None:
            replayed = self._recovery.on_restart()
        if self._core.l2 is not None:
            self._core.l2.recover()
        self._core.emit("crash", "restarted", replayed=replayed)
        return replayed

    def _crash_and_restart(self) -> None:
        """Clock callback for fault-plan scheduled crash instants."""
        self.crash()
        self.restart()

    # -- invalidation ------------------------------------------------------------

    def apply_invalidation(self, invalidation: Invalidation) -> None:
        """Sink for the invalidation bus (notifier deliveries)."""
        core = self._core
        core.emit(
            "notifier", "delivered",
            key=EntryKey(invalidation.document_id, invalidation.user_id),
        )
        # An invalidation names its document, so only that document's
        # bucket can match — the full-table scan was O(entries) per
        # delivered notifier.  Bucket order is global insertion order
        # restricted to the document, so drops happen in the same
        # relative order the scan produced.
        for key in list(core.entries_for_document(invalidation.document_id)):
            if invalidation.matches_key(key):
                core.drop(
                    core.entries[key], invalidation.reason,
                    origin=invalidation.origin,
                )

    def invalidate_document(
        self, document_id: DocumentId, user_id: UserId | None = None
    ) -> int:
        """Explicitly drop entries for a document; returns count dropped."""
        dropped = 0
        core = self._core
        invalidation = Invalidation(
            reason=InvalidationReason.EXPLICIT,
            document_id=document_id,
            user_id=user_id,
            at_ms=core.ctx.clock.now_ms,
        )
        for key in list(core.entries_for_document(document_id)):
            if invalidation.matches_key(key):
                core.drop(core.entries[key], InvalidationReason.EXPLICIT)
                dropped += 1
        return dropped

    def clear(self) -> None:
        """Drop every entry (flushing nothing; dirty buffers survive)."""
        core = self._core
        for entry in list(core.entries.values()):
            core.drop(entry, InvalidationReason.EXPLICIT)
