"""The document content cache manager.

Ties together everything §3 and §4 describe:

* entries tagged ``(document id, user id)`` indirecting through MD5
  content signatures into a shared, reference-counted content store;
* on every hit, the entry's verifiers execute (charging their cost —
  the consistency/latency trade-off), possibly invalidating or patching
  the entry in place;
* on every miss, the full Placeless read path runs; the returned
  cacheability indicator decides whether/how to fill, and the first fill
  for a (document, user) installs the paper's *minimum notifier set*
  (whose creation cost is the Table-1 miss overhead);
* entries voted ``CACHEABLE_WITH_EVENTS`` forward each hit to the
  Placeless system as a READ_FORWARDED event so properties like the
  read-audit-trail still observe operations;
* replacement is delegated to a pluggable policy (Greedy-Dual-Size with
  path-supplied costs by default);
* writes run write-through (immediate full write path) or write-back
  (buffer locally, forward WRITE_FORWARDED events to interested
  properties, flush on demand/eviction/read).
"""

from __future__ import annotations

import enum
import typing
from dataclasses import dataclass

from repro.cache.consistency import Invalidation, InvalidationReason
from repro.cache.entry import CacheEntry, EntryKey
from repro.cache.notifiers import InvalidationBus, install_minimum_notifiers
from repro.cache.stats import CacheStats
from repro.cache.verifiers import Verdict
from repro.content.signature import sign
from repro.content.store import ContentStore
from repro.errors import CacheCapacityError, CacheError
from repro.cache.replacement import GreedyDualSizePolicy, ReplacementPolicy
from repro.events.types import EventType
from repro.ids import CacheId, DocumentId, UserId
from repro.sim.topology import CachePlacement, Topology

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.retry import RetryPolicy
    from repro.placeless.kernel import PlacelessKernel
    from repro.placeless.reference import DocumentReference

__all__ = ["WriteMode", "CacheReadOutcome", "DocumentCache"]

#: Simulated cost of creating one notifier property at fill time — part
#: of the small miss overhead Table 1 reports.
NOTIFIER_INSTALL_COST_MS = 0.15
#: Simulated cost of receiving/registering one verifier at fill time.
VERIFIER_INSTALL_COST_MS = 0.05
#: Simulated cost of the metadata exchange that establishes a
#: (document, user) → signature mapping from another user's entry.
ADOPTION_COST_MS = 0.3


class WriteMode(enum.Enum):
    """Write-through vs. write-back (§3, Cache Management)."""

    WRITE_THROUGH = "write-through"
    WRITE_BACK = "write-back"


@dataclass
class CacheReadOutcome:
    """Result of one read through the cache."""

    content: bytes
    hit: bool
    elapsed_ms: float
    #: "hit", "revalidated", "miss", "miss-verifier", "miss-invalidated",
    #: "uncacheable", "miss-oversize", "miss-adopted", or a degraded
    #: mode: "stale-on-error" (bounded stale bytes served because the
    #: refetch failed) / "miss-degraded" (fetched past a failed backing
    #: level).
    disposition: str

    @property
    def degraded(self) -> bool:
        """True when this read was answered in a degradation mode."""
        return self.disposition in ("stale-on-error", "miss-degraded")

    @property
    def size(self) -> int:
        """Bytes delivered to the application."""
        return len(self.content)


class DocumentCache:
    """An application-level (or server co-located) content cache.

    Parameters
    ----------
    kernel:
        The Placeless kernel behind this cache.
    capacity_bytes:
        Physical capacity of the content store (deduplicated bytes).
    policy:
        Replacement policy; defaults to cost-aware Greedy-Dual-Size.
    bus:
        The invalidation bus notifiers deliver through; one is created
        (and registered with) if not supplied.
    write_mode:
        Write-through (default) or write-back.
    install_notifiers:
        Whether fills install the §3 minimum notifier set.  The A1
        ablation disables this to run in verifier-only mode.
    use_verifiers:
        Whether hits execute verifiers.  The A1 ablation disables this to
        run in notifier-only mode.
    track_staleness:
        When True, every hit is compared against ground truth (the
        repository's current raw bytes) to count stale hits — possible
        only in simulation, free of charge to the virtual clock.
    placement:
        Where *this* cache sits (overrides the topology default).  §4
        experimented "with caches co-located with the Placeless server
        and on the machine where applications are run"; an
        application-level cache serves hits over the local hop, a
        server-colocated one over the app→reference-server hop.
    backing:
        Optional second-level cache.  Misses are filled from the backing
        cache instead of going straight to the kernel, modelling the §4
        deployment with *both* an application-level and a server
        co-located cache.
    serve_stale_on_error:
        When a verifier invalidates an entry but the refetch fails (the
        repository is offline), serve the stale bytes instead of raising
        — availability over freshness, the choice web proxies make.  Off
        by default.
    stale_serve_max_age_ms:
        Staleness bound for ``serve_stale_on_error``: stale bytes older
        than this (measured from fill time on the virtual clock) are
        *not* served and the read fails instead.  ``None`` (default)
        serves stale bytes of any age.
    retry_policy:
        Optional :class:`~repro.faults.retry.RetryPolicy` applied to
        miss-path fetches and write-back flushes.  Backoff waits are
        charged to the virtual clock and counted in
        :attr:`CacheStats.retries` / :attr:`CacheStats.retry_delay_ms`.
    verifier_quarantine_threshold:
        When set, a verifier (keyed by document and verifier type) that
        *raises* this many consecutive times is quarantined: entries
        carrying it are dropped on access and every read forces a miss,
        trading verification cost and trust for availability, until
        :meth:`lift_quarantines` re-enables it.  ``None`` (default)
        disables quarantining.
    bypass_backing_on_error:
        When a fetch through the ``backing`` (second-level) cache fails,
        go straight to the kernel instead — degraded operation past a
        failed intermediate level.  Off by default.
    share_across_users:
        §3's signature-adoption optimization: "for subsequent accesses,
        content entries could be shared ... On a cache miss for an
        already cached version of the same content, only the document and
        user identifier mapping to the content signature needs to be
        established."  When a miss finds another user's *valid* entry for
        the same document with an identical transformation-chain
        signature, the cache adopts that entry's content signature after
        re-running its verifiers, instead of executing the full read
        path.  Off by default (the paper describes it as a possible
        extension beyond the implemented prototype).
    """

    def __init__(
        self,
        kernel: "PlacelessKernel",
        capacity_bytes: int,
        policy: ReplacementPolicy | None = None,
        bus: InvalidationBus | None = None,
        write_mode: WriteMode = WriteMode.WRITE_THROUGH,
        install_notifiers: bool = True,
        use_verifiers: bool = True,
        track_staleness: bool = False,
        placement: "CachePlacement | None" = None,
        backing: "DocumentCache | None" = None,
        share_across_users: bool = False,
        serve_stale_on_error: bool = False,
        stale_serve_max_age_ms: float | None = None,
        retry_policy: "RetryPolicy | None" = None,
        verifier_quarantine_threshold: int | None = None,
        bypass_backing_on_error: bool = False,
        name: str = "cache",
    ) -> None:
        if capacity_bytes <= 0:
            raise CacheCapacityError(
                f"capacity must be positive: {capacity_bytes}"
            )
        if stale_serve_max_age_ms is not None and stale_serve_max_age_ms < 0:
            raise CacheError(
                "stale_serve_max_age_ms must be non-negative: "
                f"{stale_serve_max_age_ms}"
            )
        if (
            verifier_quarantine_threshold is not None
            and verifier_quarantine_threshold < 1
        ):
            raise CacheError(
                "verifier_quarantine_threshold must be >= 1: "
                f"{verifier_quarantine_threshold}"
            )
        self.kernel = kernel
        self.ctx = kernel.ctx
        self.capacity_bytes = capacity_bytes
        self.policy = policy or GreedyDualSizePolicy()
        self.bus = bus or InvalidationBus(self.ctx)
        self.write_mode = write_mode
        self.install_notifiers = install_notifiers
        self.use_verifiers = use_verifiers
        self.track_staleness = track_staleness
        self.backing = backing
        self.share_across_users = share_across_users
        self.serve_stale_on_error = serve_stale_on_error
        self.stale_serve_max_age_ms = stale_serve_max_age_ms
        self.retry_policy = retry_policy
        self.verifier_quarantine_threshold = verifier_quarantine_threshold
        self.bypass_backing_on_error = bypass_backing_on_error
        if placement is None:
            self._topology = self.ctx.topology
        else:
            self._topology = Topology(placement=placement)
        self.cache_id: CacheId = self.ctx.ids.cache(name)
        self.stats = CacheStats()
        self.store = ContentStore()
        self._entries: dict[EntryKey, CacheEntry] = {}
        #: Consecutive raise-failures per (document, verifier type), and
        #: the keys currently quarantined.
        self._verifier_failures: dict[tuple[DocumentId, str], int] = {}
        self._quarantined: set[tuple[DocumentId, str]] = set()
        self._dirty: dict[EntryKey, tuple["DocumentReference", bytes]] = {}
        self._prefetch_queue: list["DocumentReference"] = []
        self._draining_prefetch = False
        self.bus.register(self.cache_id, self.apply_invalidation)

    # -- introspection ------------------------------------------------------

    def __contains__(self, key: EntryKey) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[CacheEntry]:
        """All live entries (unspecified order)."""
        return list(self._entries.values())

    def entry_for(self, reference: "DocumentReference") -> CacheEntry | None:
        """The live entry for a reference's (document, user) pair, if any."""
        return self._entries.get(self._key(reference))

    @property
    def used_bytes(self) -> int:
        """Physical (deduplicated) bytes currently cached."""
        return self.store.physical_bytes

    @staticmethod
    def _key(reference: "DocumentReference") -> EntryKey:
        return EntryKey(reference.base.document_id, reference.owner)

    def describe(self) -> str:
        """Human-readable dump of the cache's state, for debugging.

        One line per entry: key, content signature, size, cacheability,
        verifier count, replacement cost, pinned/dirty flags.
        """
        lines = [
            f"{self.cache_id}: {len(self._entries)} entries, "
            f"{self.store.physical_bytes}/{self.capacity_bytes} bytes "
            f"({len(self.store)} distinct contents), "
            f"policy={self.policy.name}, mode={self.write_mode.value}"
        ]
        for entry in sorted(self._entries.values(), key=lambda e: str(e.key)):
            flags = []
            if entry.pinned:
                flags.append("pinned")
            if entry.is_dirty:
                flags.append("dirty")
            lines.append(
                f"  {entry.key} -> {entry.signature.short} "
                f"{entry.size}B {entry.cacheability.name} "
                f"verifiers={len(entry.verifiers)} "
                f"cost={entry.replacement_cost_ms:.2f}ms "
                f"accesses={entry.access_count}"
                + (f" [{','.join(flags)}]" if flags else "")
            )
        if self._dirty:
            lines.append(f"  dirty write-backs pending: {len(self._dirty)}")
        return "\n".join(lines)

    # -- read path -----------------------------------------------------------

    def read(self, reference: "DocumentReference") -> CacheReadOutcome:
        """Read the document through the cache.

        Any collection-prefetch requests queued by properties during the
        read are serviced *after* the outcome is computed, so prefetch
        work never inflates the triggering read's latency.
        """
        outcome = self._read_inner(reference)
        self._drain_prefetch()
        return outcome

    def _read_inner(self, reference: "DocumentReference") -> CacheReadOutcome:
        key = self._key(reference)
        started_ms = self.ctx.clock.now_ms

        # A write-back user reading their own dirty document must see
        # their buffered write; flush it through the full path first.
        if key in self._dirty:
            self.flush(reference)

        entry = self._entries.get(key)
        stale: tuple[bytes, float] | None = None
        if entry is not None:
            outcome, stale = self._try_hit(reference, entry, started_ms)
            if outcome is not None:
                if entry.policy_state.get("prefetched"):
                    self.stats.prefetched_hits += 1
                    entry.policy_state["prefetched"] = False
                return outcome
        return self._miss(reference, key, started_ms, stale)

    # -- collection prefetch (§5 "related documents") -------------------------

    def request_prefetch(self, reference: "DocumentReference") -> bool:
        """Queue a sibling document for prefetching after the current read.

        Used by :class:`~repro.properties.collection.CollectionPrefetchProperty`
        to tailor caching for related documents.  Returns True if queued
        (not already cached or queued).
        """
        key = self._key(reference)
        if key in self._entries:
            return False
        if any(self._key(queued) == key for queued in self._prefetch_queue):
            return False
        self._prefetch_queue.append(reference)
        self.stats.prefetch_requests += 1
        return True

    def _drain_prefetch(self) -> None:
        """Fill every queued prefetch (misses only; no recursion)."""
        if self._draining_prefetch:
            return
        self._draining_prefetch = True
        try:
            while self._prefetch_queue:
                reference = self._prefetch_queue.pop(0)
                key = self._key(reference)
                if key in self._entries:
                    continue
                self._read_inner(reference)
                entry = self._entries.get(key)
                if entry is not None:
                    entry.policy_state["prefetched"] = True
                    self.stats.prefetch_fills += 1
        finally:
            self._draining_prefetch = False

    def _try_hit(
        self,
        reference: "DocumentReference",
        entry: CacheEntry,
        started_ms: float,
    ) -> tuple[CacheReadOutcome | None, tuple[bytes, float] | None]:
        """Serve a hit if the verifiers agree.

        Returns ``(outcome, None)`` on a hit, or ``(None, (stale_bytes,
        filled_at_ms))`` when a verifier invalidated the entry — the
        caller falls through to the miss path, keeping the stale bytes
        (and their age) available for bounded serve-stale-on-error.
        """
        content = self.store.get(entry.signature)
        stale = (content, entry.created_at_ms)
        disposition = "hit"
        # "cache hit" latency: the local (or app→server) hop only.
        for hop in self._topology.hit_path():
            self.ctx.charge_hop(hop, entry.size)

        if self.use_verifiers:
            if self._entry_quarantined(entry):
                # A repeatedly-failing verifier guards this entry: the
                # entry cannot be trusted and the verifier cannot be
                # afforded — force a miss instead of verifying.
                self._drop(entry, InvalidationReason.VERIFIER_FAILED,
                           origin="quarantine")
                self.stats.quarantine_forced_misses += 1
                return None, stale
            for verifier in entry.verifiers:
                self.stats.verifier_executions += 1
                self.stats.verifier_cost_ms += verifier.cost_ms
                self.ctx.charge(verifier.cost_ms)
                try:
                    if self.ctx.faults is not None:
                        self.ctx.faults.check_verifier(
                            verifier.cost_ms,
                            label=type(verifier).__name__,
                        )
                    result = verifier.run(self.ctx.clock.now_ms, content)
                except Exception:
                    self._note_verifier_failure(entry, verifier)
                    self._drop(entry, InvalidationReason.VERIFIER_FAILED,
                               origin="verifier")
                    self.stats.verifier_invalidations += 1
                    self._note_verifier_caught_lost(entry)
                    return None, (content, entry.created_at_ms)
                self._note_verifier_success(entry, verifier)
                if result.verdict is Verdict.INVALID:
                    reason = (
                        InvalidationReason.SOURCE_UPDATED_OUT_OF_BAND
                        if verifier.invalidation_label == "source"
                        else InvalidationReason.EXTERNAL_CHANGED
                    )
                    self._drop(entry, reason, origin="verifier")
                    self.stats.verifier_invalidations += 1
                    self._note_verifier_caught_lost(entry)
                    return None, (content, entry.created_at_ms)
                if result.verdict is Verdict.REVALIDATED:
                    content = result.patched_content or b""
                    self._replace_content(entry, content)
                    self.stats.verifier_revalidations += 1
                    disposition = "revalidated"

        if entry.cacheability.requires_event_forwarding:
            self._forward_read(reference)

        entry.touch(self.ctx.clock.now_ms)
        self.policy.on_access(entry)
        if self.track_staleness and self._is_stale(reference, entry):
            self.stats.stale_hits += 1
        elapsed = self.ctx.clock.now_ms - started_ms
        self.stats.hits += 1
        self.stats.hit_latency_ms += elapsed
        self.stats.bytes_served_from_cache += len(content)
        return (
            CacheReadOutcome(
                content=content, hit=True, elapsed_ms=elapsed,
                disposition=disposition,
            ),
            None,
        )

    def _fetch(self, reference: "DocumentReference"):
        """Fetch content + path metadata from the next level down.

        With a backing cache this is the second-level cache (which may
        itself hit or miss); without one it is the full Placeless read
        path.
        """
        if self.backing is not None:
            return self.backing.read_for_fill(reference)
        outcome = self.kernel.read(reference)
        return outcome.content, outcome.meta

    def _fetch_with_retry(self, reference: "DocumentReference"):
        """Fetch from the level below under the retry policy, if any."""
        if self.retry_policy is None:
            return self._fetch(reference)
        return self.retry_policy.call(
            self.ctx,
            lambda: self._fetch(reference),
            on_retry=self._count_retry,
        )

    def _count_retry(
        self, attempt: int, delay_ms: float, error: BaseException
    ) -> None:
        self.stats.retries += 1
        self.stats.retry_delay_ms += delay_ms

    def _bypass_backing(self, reference: "DocumentReference"):
        """Degraded fetch past a failed backing level, or ``None``.

        When the second-level cache is unreachable, a cache configured
        with ``bypass_backing_on_error`` goes straight to the kernel —
        the content is fresh, only the hierarchy is degraded.
        """
        if self.backing is None or not self.bypass_backing_on_error:
            return None
        try:
            outcome = self.kernel.read(reference)
        except Exception:
            return None
        self.stats.backing_bypasses += 1
        self.stats.degraded_serves += 1
        return outcome.content, outcome.meta

    def _serve_stale(
        self, stale: tuple[bytes, float] | None, started_ms: float
    ) -> CacheReadOutcome | None:
        """Bounded serve-stale-on-error, or ``None`` if not permitted."""
        if not self.serve_stale_on_error or stale is None:
            return None
        content, filled_at_ms = stale
        if self.stale_serve_max_age_ms is not None:
            age_ms = self.ctx.clock.now_ms - filled_at_ms
            if age_ms > self.stale_serve_max_age_ms:
                self.stats.stale_serve_rejected += 1
                return None
        elapsed = self.ctx.clock.now_ms - started_ms
        self.stats.misses += 1
        self.stats.miss_latency_ms += elapsed
        self.stats.stale_served_on_error += 1
        self.stats.degraded_serves += 1
        return CacheReadOutcome(
            content=content, hit=False, elapsed_ms=elapsed,
            disposition="stale-on-error",
        )

    def _miss(
        self,
        reference: "DocumentReference",
        key: EntryKey,
        started_ms: float,
        stale: tuple[bytes, float] | None = None,
    ) -> CacheReadOutcome:
        """Full read through the level below, then fill if cacheable.

        On fetch failure (after any retries) the degradation cascade
        runs: fresh content fetched past a failed backing level first,
        bounded stale bytes second, and only then does the read fail.
        """
        if self.share_across_users:
            adopted = self._try_adopt(reference, key)
            if adopted is not None:
                elapsed = self.ctx.clock.now_ms - started_ms
                self.stats.misses += 1
                self.stats.miss_latency_ms += elapsed
                return CacheReadOutcome(
                    content=self.store.get(adopted.signature),
                    hit=False,
                    elapsed_ms=elapsed,
                    disposition="miss-adopted",
                )
        degraded = False
        try:
            content, meta = self._fetch_with_retry(reference)
        except CacheError:
            raise
        except Exception:
            self.stats.fetch_failures += 1
            recovered = self._bypass_backing(reference)
            if recovered is None:
                outcome = self._serve_stale(stale, started_ms)
                if outcome is None:
                    raise
                return outcome
            content, meta = recovered
            degraded = True
        disposition = "miss-degraded" if degraded else "miss"

        if not meta.cacheability.allows_caching:
            self.stats.uncacheable_reads += 1
            disposition = "uncacheable"
        elif len(content) > self.capacity_bytes:
            disposition = "miss-oversize"
        else:
            self._fill(reference, key, content, meta)

        elapsed = self.ctx.clock.now_ms - started_ms
        self.stats.misses += 1
        self.stats.miss_latency_ms += elapsed
        return CacheReadOutcome(
            content=content, hit=False, elapsed_ms=elapsed,
            disposition=disposition,
        )

    def read_for_fill(self, reference: "DocumentReference"):
        """Serve an upper-level cache: content plus fill metadata.

        A hit synthesizes the metadata the upper cache needs (verifiers,
        cacheability, replacement cost, chain signature) from the stored
        entry — the same information the read path originally supplied;
        a miss runs the normal miss path and reuses its metadata.
        """
        key = self._key(reference)
        started_ms = self.ctx.clock.now_ms
        if key in self._dirty:
            self.flush(reference)
        entry = self._entries.get(key)
        if entry is not None:
            hit, _ = self._try_hit(reference, entry, started_ms)
            if hit is not None:
                live = self._entries.get(key)
                if live is not None:
                    return hit.content, self._meta_from_entry(live)
        if self.share_across_users:
            adopted = self._try_adopt(reference, key)
            if adopted is not None:
                self.stats.misses += 1
                self.stats.miss_latency_ms += (
                    self.ctx.clock.now_ms - started_ms
                )
                return (
                    self.store.get(adopted.signature),
                    self._meta_from_entry(adopted),
                )
        content, meta = self._fetch_with_retry(reference)
        if not meta.cacheability.allows_caching:
            self.stats.uncacheable_reads += 1
        elif len(content) <= self.capacity_bytes:
            self._fill(reference, key, content, meta)
        elapsed = self.ctx.clock.now_ms - started_ms
        self.stats.misses += 1
        self.stats.miss_latency_ms += elapsed
        return content, meta

    def _meta_from_entry(self, entry: CacheEntry):
        """Reconstruct read-path metadata from a stored entry."""
        from repro.placeless.document import PathMeta

        return PathMeta(
            verifiers=list(entry.verifiers),
            votes=[entry.cacheability],
            replacement_cost_ms=entry.replacement_cost_ms,
            chain_signature=entry.chain_signature,
            properties_executed=0,
            source_signature=entry.policy_state.get("source_signature"),
            pin=entry.pinned,
        )

    def _fill(self, reference, key: EntryKey, content: bytes, meta) -> None:
        """Insert (or refresh) the entry for *key* with *content*."""
        existing = self._entries.get(key)
        if existing is not None:
            self._remove_entry(existing)

        signature = self.store.put(content)
        self._evict_to_capacity(protect=key)
        now = self.ctx.clock.now_ms
        entry = CacheEntry(
            key=key,
            signature=signature,
            size=len(content),
            cacheability=meta.cacheability,
            verifiers=list(meta.verifiers),
            replacement_cost_ms=meta.replacement_cost_ms,
            chain_signature=meta.chain_signature,
            reference_id=reference.reference_id,
            created_at_ms=now,
            last_access_ms=now,
        )
        entry.pinned = bool(getattr(meta, "pin", False))
        entry.policy_state["source_signature"] = meta.source_signature
        self._entries[key] = entry
        self.policy.on_insert(entry)
        self.stats.bytes_filled += len(content)
        # Fill overhead: register the returned verifiers and install the
        # minimum notifier set — Table 1's miss-vs-no-cache delta.
        self.ctx.charge(VERIFIER_INSTALL_COST_MS * len(meta.verifiers))
        if self.install_notifiers:
            installed = install_minimum_notifiers(
                reference, self.bus, self.cache_id
            )
            self.ctx.charge(NOTIFIER_INSTALL_COST_MS * len(installed))

    def _evict_to_capacity(self, protect: EntryKey | None = None) -> None:
        """Evict victims until physical bytes fit the capacity."""
        while self.store.physical_bytes > self.capacity_bytes:
            candidates = {
                key: entry
                for key, entry in self._entries.items()
                if key != protect and not entry.pinned
            }
            if not candidates:
                raise CacheError(
                    "cannot satisfy capacity: nothing evictable"
                )
            victim_key = self.policy.select_victim(candidates)
            victim = self._entries[victim_key]
            self._drop(victim, InvalidationReason.EVICTED, origin="internal")
            self.stats.evictions += 1

    def _expected_chain_signature(self, reference: "DocumentReference"):
        """The chain signature this reference's read path would record.

        Computable from property metadata alone — no content fetch — so
        a cache can predict whether another user's cached bytes apply.
        """
        chain = (
            reference.base.stream_chain(EventType.GET_INPUT_STREAM)
            + reference.stream_chain(EventType.GET_INPUT_STREAM)
        )
        return tuple(
            signature
            for signature in (p.transform_signature() for p in chain)
            if signature is not None
        )

    def _try_adopt(
        self, reference: "DocumentReference", key: EntryKey
    ) -> CacheEntry | None:
        """§3 signature adoption: reuse another user's identical version.

        A candidate must be another user's valid entry for the same base
        document whose recorded chain signature equals what this
        reference's chain would produce; its verifiers are re-run (the
        source could have changed) before the signature mapping is
        established.
        """
        expected = self._expected_chain_signature(reference)
        now = self.ctx.clock.now_ms
        for candidate in list(self._entries.values()):
            if candidate.document_id != key.document_id:
                continue
            if candidate.user_id == key.user_id:
                continue
            if candidate.chain_signature != expected:
                continue
            content = self.store.get(candidate.signature)
            if self.use_verifiers and not self._candidate_fresh(
                candidate, content, now
            ):
                continue
            # Metadata exchange only: one cache-side hop, no content moves
            # across the network (the bytes are already local).
            for hop in self._topology.hit_path():
                self.ctx.charge_hop(hop, 0)
            self.ctx.charge(ADOPTION_COST_MS)
            self.store.adopt(candidate.signature)
            entry = CacheEntry(
                key=key,
                signature=candidate.signature,
                size=candidate.size,
                cacheability=candidate.cacheability,
                verifiers=list(candidate.verifiers),
                replacement_cost_ms=candidate.replacement_cost_ms,
                chain_signature=expected,
                reference_id=reference.reference_id,
                created_at_ms=now,
                last_access_ms=now,
            )
            entry.pinned = candidate.pinned
            entry.policy_state["source_signature"] = (
                candidate.policy_state.get("source_signature")
            )
            self._entries[key] = entry
            self.policy.on_insert(entry)
            self.stats.sibling_adoptions += 1
            if self.install_notifiers:
                installed = install_minimum_notifiers(
                    reference, self.bus, self.cache_id
                )
                self.ctx.charge(NOTIFIER_INSTALL_COST_MS * len(installed))
            return entry
        return None

    def _candidate_fresh(
        self, candidate: CacheEntry, content: bytes, now_ms: float
    ) -> bool:
        """Re-run a candidate's verifiers before adopting its bytes."""
        for verifier in candidate.verifiers:
            self.stats.verifier_executions += 1
            self.stats.verifier_cost_ms += verifier.cost_ms
            self.ctx.charge(verifier.cost_ms)
            try:
                result = verifier.run(now_ms, content)
            except Exception:
                return False
            if result.verdict is not Verdict.VALID:
                return False
        return True

    # -- verifier quarantine (graceful degradation) ---------------------------

    @staticmethod
    def _verifier_fault_key(
        entry: CacheEntry, verifier
    ) -> tuple[DocumentId, str]:
        """Quarantine key: stable across refills (which rebuild verifier
        objects), so repeated failures accumulate per document and
        verifier type rather than per object."""
        return (entry.document_id, type(verifier).__name__)

    def _note_verifier_failure(self, entry: CacheEntry, verifier) -> None:
        if self.verifier_quarantine_threshold is None:
            return
        key = self._verifier_fault_key(entry, verifier)
        count = self._verifier_failures.get(key, 0) + 1
        self._verifier_failures[key] = count
        if (
            count >= self.verifier_quarantine_threshold
            and key not in self._quarantined
        ):
            self._quarantined.add(key)
            self.stats.quarantined_verifiers += 1

    def _note_verifier_success(self, entry: CacheEntry, verifier) -> None:
        if self.verifier_quarantine_threshold is None:
            return
        self._verifier_failures.pop(
            self._verifier_fault_key(entry, verifier), None
        )

    def _entry_quarantined(self, entry: CacheEntry) -> bool:
        if not self._quarantined:
            return False
        return any(
            self._verifier_fault_key(entry, verifier) in self._quarantined
            for verifier in entry.verifiers
        )

    def quarantined_verifier_keys(self) -> set[tuple[DocumentId, str]]:
        """The (document, verifier type) pairs currently quarantined."""
        return set(self._quarantined)

    def lift_quarantines(self) -> int:
        """Re-enable every quarantined verifier; returns how many.

        Call after the underlying fault is known to be repaired (e.g. an
        outage window ended); fills resume verification from scratch.
        """
        lifted = len(self._quarantined)
        self._quarantined.clear()
        self._verifier_failures.clear()
        return lifted

    def _note_verifier_caught_lost(self, entry: CacheEntry) -> None:
        """Count a verifier invalidation that covered a lost callback."""
        if self.bus.consume_lost(entry.document_id):
            self.stats.dropped_notifier_detected += 1

    # -- write path -----------------------------------------------------------

    def write(self, reference: "DocumentReference", content: bytes) -> float:
        """Write through (or into) the cache; returns elapsed virtual ms."""
        key = self._key(reference)
        started_ms = self.ctx.clock.now_ms
        if self.write_mode is WriteMode.WRITE_THROUGH:
            self.kernel.write(reference, content)
            self.stats.writes_through += 1
            self._invalidate_local(key, InvalidationReason.LOCAL_WRITE)
        else:
            # Write-back: buffer locally; only the local hop is paid now.
            for hop in self._topology.hit_path():
                self.ctx.charge_hop(hop, len(content))
            self._dirty[key] = (reference, bytes(content))
            # The cached read entry (if any) no longer reflects what this
            # user would read — their buffered write supersedes it.
            self._invalidate_local(key, InvalidationReason.LOCAL_WRITE)
            self.stats.writes_backed += 1
            self._forward_write(reference, len(content))
        return self.ctx.clock.now_ms - started_ms

    def flush(self, reference: "DocumentReference") -> bool:
        """Push a buffered write-back through the full write path.

        Runs under the retry policy, if one is configured.  A flush that
        still fails keeps the dirty buffer (the write is not lost; a
        later flush can retry) and re-raises.
        """
        key = self._key(reference)
        buffered = self._dirty.pop(key, None)
        if buffered is None:
            return False
        dirty_reference, content = buffered
        try:
            if self.retry_policy is None:
                self.kernel.write(dirty_reference, content)
            else:
                self.retry_policy.call(
                    self.ctx,
                    lambda: self.kernel.write(dirty_reference, content),
                    on_retry=self._count_retry,
                )
        except Exception:
            self._dirty[key] = buffered
            self.stats.flush_failures += 1
            raise
        self.stats.flushes += 1
        return True

    def flush_all(self) -> int:
        """Flush every buffered write-back; returns how many flushed."""
        flushed = 0
        for key in list(self._dirty):
            dirty_reference, _ = self._dirty[key]
            if self.flush(dirty_reference):
                flushed += 1
        return flushed

    @property
    def dirty_count(self) -> int:
        """Buffered (unflushed) write-backs."""
        return len(self._dirty)

    # -- event forwarding -------------------------------------------------------

    def _forward_read(self, reference: "DocumentReference") -> None:
        """Forward a cache-served read as READ_FORWARDED events.

        "the cache will forward the operation, but the Placeless system
        will not execute them fully, instead just use them to trigger
        active properties that have registered for these events." (§3)
        """
        for hop in self._topology.notifier_path():
            self.ctx.charge_hop(hop, 0)
        event = reference.make_event(EventType.READ_FORWARDED)
        reference.base.dispatcher.dispatch(event)
        reference.dispatcher.dispatch(event)
        self.stats.forwarded_reads += 1

    def _forward_write(self, reference: "DocumentReference", size: int) -> None:
        """Forward a buffered write as WRITE_FORWARDED events, if wanted."""
        event = reference.make_event(
            EventType.WRITE_FORWARDED, payload={"size": size}
        )
        base_wants = reference.base.dispatcher.has_listener(
            EventType.WRITE_FORWARDED
        )
        ref_wants = reference.dispatcher.has_listener(EventType.WRITE_FORWARDED)
        if not (base_wants or ref_wants):
            return
        for hop in self._topology.notifier_path():
            self.ctx.charge_hop(hop, 0)
        if base_wants:
            reference.base.dispatcher.dispatch(event)
        if ref_wants:
            reference.dispatcher.dispatch(event)
        self.stats.forwarded_writes += 1

    # -- invalidation ------------------------------------------------------------

    def apply_invalidation(self, invalidation: Invalidation) -> None:
        """Sink for the invalidation bus (notifier deliveries)."""
        self.stats.notifier_deliveries += 1
        for key in list(self._entries):
            if invalidation.matches(key.document_id, key.user_id):
                self._drop(
                    self._entries[key], invalidation.reason,
                    origin=invalidation.origin,
                )

    def invalidate_document(
        self, document_id: DocumentId, user_id: UserId | None = None
    ) -> int:
        """Explicitly drop entries for a document; returns count dropped."""
        dropped = 0
        invalidation = Invalidation(
            reason=InvalidationReason.EXPLICIT,
            document_id=document_id,
            user_id=user_id,
            at_ms=self.ctx.clock.now_ms,
        )
        for key in list(self._entries):
            if invalidation.matches(key.document_id, key.user_id):
                self._drop(self._entries[key], InvalidationReason.EXPLICIT)
                dropped += 1
        return dropped

    def clear(self) -> None:
        """Drop every entry (flushing nothing; dirty buffers survive)."""
        for entry in list(self._entries.values()):
            self._drop(entry, InvalidationReason.EXPLICIT)

    def _invalidate_local(
        self, key: EntryKey, reason: InvalidationReason
    ) -> None:
        entry = self._entries.get(key)
        if entry is not None:
            self._drop(entry, reason, origin="internal")

    def _drop(
        self,
        entry: CacheEntry,
        reason: InvalidationReason,
        origin: str = "internal",
    ) -> None:
        """Invalidate and remove an entry, releasing its content bytes."""
        entry.invalidate(
            Invalidation(
                reason=reason,
                document_id=entry.document_id,
                user_id=entry.user_id,
                at_ms=self.ctx.clock.now_ms,
                origin=origin,
            )
        )
        self.stats.record_invalidation(reason)
        self._remove_entry(entry)

    def _remove_entry(self, entry: CacheEntry) -> None:
        if self._entries.get(entry.key) is entry:
            del self._entries[entry.key]
            self.store.release(entry.signature)
            self.policy.on_remove(entry)

    def _replace_content(self, entry: CacheEntry, content: bytes) -> None:
        """Swap an entry's bytes (verifier REVALIDATED patching)."""
        self.store.release(entry.signature)
        entry.signature = self.store.put(content)
        entry.size = len(content)
        self._evict_to_capacity(protect=entry.key)

    def _is_stale(self, reference: "DocumentReference", entry: CacheEntry) -> bool:
        """Ground-truth staleness: raw source changed since fill.

        Uses :meth:`BitProvider.peek`, which charges nothing — this is
        simulation-side omniscience, not something a real cache could do.
        """
        recorded = entry.policy_state.get("source_signature")
        if recorded is None:
            return False
        return sign(reference.base.provider.peek()) != recorded
