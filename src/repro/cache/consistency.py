"""Invalidation vocabulary: the paper's four consistency classes.

§3 (Cache Consistency) enumerates exactly four ways cached transformed
content becomes invalid:

1. the original source is modified — either *through* Placeless (in-band,
   snoopable) or directly at the repository (out-of-band, only verifiers
   catch it);
2. active properties are added, deleted or modified;
3. the order of the active properties changes;
4. information used by active properties changes (external dependencies).

Every invalidation in this implementation carries one of these reasons
(plus bookkeeping reasons for evictions, explicit drops and write-backs)
so experiments can attribute staleness and invalidation traffic to its
cause — which is what the A5 bench reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.ids import DocumentId, UserId

__all__ = ["InvalidationClass", "InvalidationReason", "Invalidation"]


class InvalidationClass(enum.Enum):
    """The paper's four consistency classes, plus cache bookkeeping."""

    SOURCE_MODIFIED = 1
    PROPERTIES_CHANGED = 2
    PROPERTY_ORDER_CHANGED = 3
    EXTERNAL_DEPENDENCY_CHANGED = 4
    BOOKKEEPING = 0


class InvalidationReason(enum.Enum):
    """Specific cause of one invalidation."""

    #: Class 1, in-band: content written through Placeless (snooped).
    SOURCE_UPDATED_IN_BAND = "source-updated-in-band"
    #: Class 1, out-of-band: a verifier caught a repository-side change.
    SOURCE_UPDATED_OUT_OF_BAND = "source-updated-out-of-band"
    #: Class 1: another user opened the document for writing.
    OPENED_FOR_WRITE = "opened-for-write"
    #: Class 2.
    PROPERTY_ADDED = "property-added"
    PROPERTY_REMOVED = "property-removed"
    PROPERTY_MODIFIED = "property-modified"
    #: Class 3.
    PROPERTY_REORDERED = "property-reordered"
    #: Class 4: a verifier (TTL, threshold, ...) or notifier watching
    #: external information declared the entry stale.
    EXTERNAL_CHANGED = "external-changed"
    #: Bookkeeping: replacement policy evicted the entry.
    EVICTED = "evicted"
    #: Bookkeeping: explicit application/cache-management drop.
    EXPLICIT = "explicit"
    #: Bookkeeping: a write-back buffered a newer local version.
    LOCAL_WRITE = "local-write"
    #: Bookkeeping: a verifier raised; treated as conservatively stale.
    VERIFIER_FAILED = "verifier-failed"

    @property
    def invalidation_class(self) -> InvalidationClass:
        """Which of the paper's four classes this reason belongs to."""
        mapping = {
            InvalidationReason.SOURCE_UPDATED_IN_BAND: InvalidationClass.SOURCE_MODIFIED,
            InvalidationReason.SOURCE_UPDATED_OUT_OF_BAND: InvalidationClass.SOURCE_MODIFIED,
            InvalidationReason.OPENED_FOR_WRITE: InvalidationClass.SOURCE_MODIFIED,
            InvalidationReason.PROPERTY_ADDED: InvalidationClass.PROPERTIES_CHANGED,
            InvalidationReason.PROPERTY_REMOVED: InvalidationClass.PROPERTIES_CHANGED,
            InvalidationReason.PROPERTY_MODIFIED: InvalidationClass.PROPERTIES_CHANGED,
            InvalidationReason.PROPERTY_REORDERED: InvalidationClass.PROPERTY_ORDER_CHANGED,
            InvalidationReason.EXTERNAL_CHANGED: InvalidationClass.EXTERNAL_DEPENDENCY_CHANGED,
        }
        return mapping.get(self, InvalidationClass.BOOKKEEPING)


@dataclass
class Invalidation:
    """One invalidation as delivered to (or raised inside) a cache.

    ``user_id is None`` means the invalidation applies to every user's
    entry for the document (e.g. the source changed); a specific user
    targets that user's personalized version only (e.g. *their* personal
    property changed).
    """

    reason: InvalidationReason
    document_id: DocumentId
    user_id: UserId | None = None
    at_ms: float = 0.0
    #: "notifier" (pushed by a notifier property), "verifier" (caught on
    #: a hit), "resync" (anti-entropy repair), or "internal"
    #: (bookkeeping).
    origin: str = "internal"
    #: Channel epoch/sequence stamped by a sequencing
    #: :class:`~repro.cache.notifiers.InvalidationBus` channel; ``None``
    #: on unsequenced deliveries (sequencing is opt-in per cache).  The
    #: receiver uses these for gap detection: a jump in ``sequence``
    #: within one ``epoch`` proves a notification was lost in transit.
    epoch: int | None = None
    sequence: int | None = None

    @property
    def invalidation_class(self) -> InvalidationClass:
        """The paper's consistency class for this invalidation."""
        return self.reason.invalidation_class

    def matches(self, document_id: DocumentId, user_id: UserId) -> bool:
        """True if this invalidation covers the given cache entry key."""
        if self.document_id != document_id:
            return False
        return self.user_id is None or self.user_id == user_id

    def matches_key(self, key) -> bool:
        """True if this invalidation covers the given :class:`EntryKey`."""
        return self.matches(key.document_id, key.user_id)
