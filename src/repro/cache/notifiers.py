"""Notifiers: active properties that push invalidations to caches.

"Notifiers are active properties themselves that are used to invalidate
cache entries resulting from changes through the Placeless system.
Notifiers send a notification to each of the affected caches to
invalidate the corresponding entries. ... Notifiers, in fact, integrate
the notion of semantic validators and callbacks into one mechanism." (§3)

Pieces:

* :class:`InvalidationBus` — the delivery fabric between the Placeless
  servers (where notifiers execute) and the caches; charges the
  notifier-path network hops and counts deliveries, which is the
  "load to the Placeless system" side of the A1 trade-off.
* :class:`NotifierProperty` — a configurable notifier: which events it
  watches, how each maps to an invalidation reason, an optional semantic
  *predicate* (the semantic-callback integration), and the entry scope it
  invalidates (one user's version or every user's).
* :func:`install_minimum_notifiers` — the "minimum set of notifiers"
  whose creation cost Table 1's miss column includes: a base notifier for
  writes by other users, a base notifier for content-affecting property
  changes, and a reference notifier for the user's personal property
  changes (§3's worked example, verbatim).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass
from typing import Any, Callable

from repro.cache.consistency import Invalidation, InvalidationReason
from repro.cache.instrumentation import (
    BusStatsProjection,
    InstrumentationBus,
    StageEvent,
)
from repro.errors import NotifierError, RepositoryOfflineError
from repro.events.types import Event, EventType
from repro.ids import CacheId, UserId
from repro.placeless.properties import ActiveProperty
from repro.sim.context import SimContext

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.placeless.reference import DocumentReference

__all__ = [
    "InvalidationBus",
    "ChannelState",
    "NotifierProperty",
    "install_minimum_notifiers",
    "DEFAULT_REASON_MAP",
]

#: How watched events map to invalidation reasons by default.
DEFAULT_REASON_MAP: dict[EventType, InvalidationReason] = {
    EventType.CONTENT_UPDATED: InvalidationReason.SOURCE_UPDATED_IN_BAND,
    EventType.GET_OUTPUT_STREAM: InvalidationReason.OPENED_FOR_WRITE,
    EventType.SET_PROPERTY: InvalidationReason.PROPERTY_ADDED,
    EventType.REMOVE_PROPERTY: InvalidationReason.PROPERTY_REMOVED,
    EventType.MODIFY_PROPERTY: InvalidationReason.PROPERTY_MODIFIED,
    EventType.REORDER_PROPERTIES: InvalidationReason.PROPERTY_REORDERED,
    EventType.TIMER: InvalidationReason.EXTERNAL_CHANGED,
}


@dataclass
class BusStats:
    """Delivery-side counters (the notifier load on the system)."""

    deliveries: int = 0
    delivery_cost_ms: float = 0.0
    dropped: int = 0
    #: Deliveries silently discarded by fault injection (the paper's
    #: lost-callback problem) and deliveries deferred by injected delay.
    lost: int = 0
    delayed: int = 0
    delay_ms_total: float = 0.0


@dataclass
class ChannelState:
    """Bus-side send state for one sequenced (server, cache) channel.

    Every delivery *attempt* consumes a sequence number — including ones
    fault injection subsequently drops — which is exactly what makes
    receiver-side gap detection possible: the receiver sees the sequence
    jump (or, for a trailing loss, learns the send-side high-water mark
    at lease renewal) and knows something never arrived.
    """

    epoch: int = 1
    next_sequence: int = 1


class InvalidationBus:
    """Routes invalidations from notifier properties to registered caches.

    When the context carries a :class:`~repro.faults.plan.FaultPlan`,
    each delivery is gated through it: the notification may be silently
    *lost* (never arrives — the cache entry it should have killed lives
    on until a verifier catches it) or *delayed* (scheduled on the
    virtual clock and delivered later).  Lost invalidations are remembered
    per document so the cache manager can count how many of them a
    verifier subsequently detected.

    Delivery accounting is emitted as ``bus`` stage events on an
    :class:`~repro.cache.instrumentation.InstrumentationBus` (pass the
    cache's to get bus rows in its stage breakdown); :attr:`stats` is
    derived from those events by a
    :class:`~repro.cache.instrumentation.BusStatsProjection`.
    """

    def __init__(
        self,
        ctx: SimContext,
        instrumentation: InstrumentationBus | None = None,
    ) -> None:
        self.ctx = ctx
        self.stats = BusStats()
        self.instrumentation = instrumentation or InstrumentationBus()
        self.instrumentation.subscribe(BusStatsProjection(self.stats))
        self._sinks: dict[CacheId, Callable[[Invalidation], None]] = {}
        self._lost_documents: dict[object, int] = {}
        #: Sequenced channels, keyed by cache id.  Sequencing is opt-in
        #: (the recovery layer enables it); unsequenced caches see the
        #: exact pre-recovery delivery behaviour.
        self._channels: dict[CacheId, ChannelState] = {}

    def _emit(self, outcome: str, document_id=None, **payload) -> None:
        now = self.ctx.clock.now_ms
        self.instrumentation.emit(
            StageEvent(
                stage="bus",
                outcome=outcome,
                document_id=document_id,
                started_ms=now,
                ended_ms=now,
                payload=payload,
            )
        )

    def register(
        self, cache_id: CacheId, sink: Callable[[Invalidation], None]
    ) -> None:
        """Register a cache's invalidation sink under its id."""
        self._sinks[cache_id] = sink

    def unregister(self, cache_id: CacheId) -> None:
        """Remove a cache (e.g. it shut down); deliveries to it drop."""
        self._sinks.pop(cache_id, None)

    # -- sequenced channels (consistency recovery) ----------------------------

    def enable_sequencing(self, cache_id: CacheId) -> ChannelState:
        """Stamp every future delivery to *cache_id* with (epoch, seq).

        Idempotent: re-enabling returns the existing channel state (the
        sequence survives a cache restart — that is what lets the
        restarted cache detect what it missed while it was down).
        """
        channel = self._channels.get(cache_id)
        if channel is None:
            channel = self._channels[cache_id] = ChannelState()
        return channel

    def channel_checkpoint(self, cache_id: CacheId) -> tuple[int, int] | None:
        """The send-side (epoch, next sequence) for a sequenced channel.

        Piggybacked on lease renewals: a receiver whose expectation
        trails the returned high-water mark has missed deliveries even
        if no later delivery ever arrived to expose the gap inline.
        """
        channel = self._channels.get(cache_id)
        if channel is None:
            return None
        return channel.epoch, channel.next_sequence

    def bump_epoch(self, cache_id: CacheId) -> tuple[int, int]:
        """Start a fresh epoch after a resync; returns (epoch, next seq).

        The resync reconciled every entry against server state, so prior
        losses are water under the bridge; the sequence restarts at 1.
        """
        channel = self.enable_sequencing(cache_id)
        channel.epoch += 1
        channel.next_sequence = 1
        return channel.epoch, channel.next_sequence

    def deliver(self, cache_id: CacheId, invalidation: Invalidation) -> None:
        """Deliver one invalidation, charging the notifier network path."""
        channel = self._channels.get(cache_id)
        if channel is not None:
            invalidation.epoch = channel.epoch
            invalidation.sequence = channel.next_sequence
            channel.next_sequence += 1
        plan = self.ctx.faults
        if plan is not None:
            if plan.check_bus_delivery(str(cache_id)):
                # Partition blackout: the delivery dies on the floor.
                self._emit(
                    "lost",
                    document_id=invalidation.document_id,
                    partition=True,
                )
                if invalidation.document_id is not None:
                    self._lost_documents[invalidation.document_id] = (
                        self._lost_documents.get(invalidation.document_id, 0)
                        + 1
                    )
                return
            action, delay_ms = plan.notifier_disposition(str(cache_id))
            if action == "drop":
                self._emit("lost", document_id=invalidation.document_id)
                if invalidation.document_id is not None:
                    self._lost_documents[invalidation.document_id] = (
                        self._lost_documents.get(invalidation.document_id, 0)
                        + 1
                    )
                return
            if action == "delay":
                self._emit(
                    "delayed",
                    document_id=invalidation.document_id,
                    delay_ms=delay_ms,
                )
                self.ctx.clock.call_after(
                    delay_ms,
                    lambda: self._deliver_now(
                        cache_id, invalidation, charge=False
                    ),
                )
                return
        self._deliver_now(cache_id, invalidation, charge=True)

    def _deliver_now(
        self, cache_id: CacheId, invalidation: Invalidation, charge: bool
    ) -> None:
        """Hand one invalidation to its sink, optionally charging hops.

        Delayed deliveries run inside a clock callback; their network
        cost is accounted in the stats but not re-charged to the clock
        (the delay already covered the transit time).
        """
        sink = self._sinks.get(cache_id)
        if sink is None:
            self._emit("dropped", document_id=invalidation.document_id)
            return
        cost = 0.0
        try:
            for hop in self.ctx.topology.notifier_path():
                if charge:
                    cost += self.ctx.charge_hop(hop, 0)
                else:
                    cost += self.ctx.latency.hop_cost_ms(hop, 0)
        except RepositoryOfflineError:
            # The notification died in transit on a downed link: it is
            # lost, exactly like a fault-plan drop.
            self._emit("lost", document_id=invalidation.document_id)
            if invalidation.document_id is not None:
                self._lost_documents[invalidation.document_id] = (
                    self._lost_documents.get(invalidation.document_id, 0) + 1
                )
            return
        self._emit(
            "delivered", document_id=invalidation.document_id, cost_ms=cost
        )
        sink(invalidation)

    def consume_lost(self, document_id: object) -> bool:
        """Report (and forget) one lost invalidation for *document_id*.

        The cache manager calls this when a verifier invalidates an
        entry: a pending lost notification for the same document means
        the verifier just caught what the dropped callback missed.
        """
        pending = self._lost_documents.get(document_id, 0)
        if pending <= 0:
            return False
        if pending == 1:
            del self._lost_documents[document_id]
        else:
            self._lost_documents[document_id] = pending - 1
        return True


class NotifierProperty(ActiveProperty):
    """A notifier: watches events, pushes invalidations to one cache.

    Parameters
    ----------
    bus, cache_id:
        Where invalidations are delivered.
    watch:
        The event types of interest.
    scope_user:
        ``None`` invalidates every user's entry for the document (the
        change is universal); a specific user invalidates only that
        user's personalized version.
    predicate:
        Optional semantic filter — "semantic callbacks are triggered only
        if some predicate is satisfied" — receiving the event; return
        ``False`` to suppress the notification.
    reason_map:
        Override the event→reason mapping.
    """

    #: Notifiers are cache infrastructure: their own attachment/removal
    #: must not trigger other notifiers.
    is_infrastructure = True
    execution_cost_ms = 0.05

    def __init__(
        self,
        bus: InvalidationBus,
        cache_id: CacheId,
        watch: set[EventType],
        scope_user: UserId | None = None,
        predicate: Callable[[Event], bool] | None = None,
        reason_map: dict[EventType, InvalidationReason] | None = None,
        name: str = "notifier",
    ) -> None:
        super().__init__(name)
        if not watch:
            raise NotifierError("notifier must watch at least one event type")
        self.bus = bus
        self.cache_id = cache_id
        self.watch = set(watch)
        self.scope_user = scope_user
        self.predicate = predicate
        self.reason_map = dict(DEFAULT_REASON_MAP)
        if reason_map:
            self.reason_map.update(reason_map)
        self.notifications_sent = 0
        self.events_filtered = 0

    def events_of_interest(self) -> set[EventType]:
        return set(self.watch)

    def handle(self, event: Event) -> Any:
        if self._suppressed(event):
            self.events_filtered += 1
            return None
        guard = getattr(self.bus.ctx, "containment", None)
        if guard is not None:
            return guard.run_notifier(self, event, self._notify)
        return self._notify(event)

    def _notify(self, event: Event) -> Invalidation:
        """Build and deliver the invalidation (the unguarded body)."""
        reason = self.reason_map.get(
            event.type, InvalidationReason.EXTERNAL_CHANGED
        )
        invalidation = Invalidation(
            reason=reason,
            document_id=event.document_id,
            user_id=self.scope_user,
            at_ms=event.at_ms,
            origin="notifier",
        )
        self.notifications_sent += 1
        self.bus.deliver(self.cache_id, invalidation)
        return invalidation

    def _suppressed(self, event: Event) -> bool:
        # Never react to cache-infrastructure properties (avoids notifier
        # installation cascading into invalidation storms).
        if event.payload.get("infrastructure"):
            return True
        # Property additions/removals only matter when the property
        # "could modify the content" (§3): static labels don't invalidate.
        if event.type in (EventType.SET_PROPERTY, EventType.REMOVE_PROPERTY):
            if not event.payload.get("transforms_reads", False):
                return True
        if event.type is EventType.MODIFY_PROPERTY:
            if not event.payload.get("transforms_reads", False):
                return True
        if self.predicate is not None and not self.predicate(event):
            return True
        return False


def install_minimum_notifiers(
    reference: "DocumentReference",
    bus: InvalidationBus,
    cache_id: CacheId,
) -> list[NotifierProperty]:
    """Attach §3's minimum notifier set for one user's cached document.

    Mirrors the paper's worked example: "a notifier property is attached
    to the base document to invalidate the cache if the file is opened
    for writing by another user.  Another notifier at the base tracks any
    additions or deletions of active properties that could modify the
    content.  At [the user's] document reference, a third notifier is
    attached to watch for active property additions, deletions and for
    changes in [their personal properties]."

    Plus the in-band content-update watch the dual update model needs.
    Idempotent per (cache, user, document): already-installed notifiers
    are not duplicated.  Returns the notifiers newly attached.
    """
    base = reference.base
    owner = reference.owner
    installed: list[NotifierProperty] = []

    write_watch_name = f"notify-writes:{cache_id.value}:{owner.value}"
    if not base.has_property(write_watch_name):
        notifier = NotifierProperty(
            bus,
            cache_id,
            watch={EventType.GET_OUTPUT_STREAM, EventType.CONTENT_UPDATED},
            scope_user=owner,
            # "if the file is opened for writing by another user" — the
            # user's own writes are handled locally by their cache.
            predicate=lambda event: event.user_id != owner,
            name=write_watch_name,
        )
        base.attach(notifier, acting_user=owner)
        installed.append(notifier)

    base_props_name = f"notify-base-properties:{cache_id.value}"
    if not base.has_property(base_props_name):
        notifier = NotifierProperty(
            bus,
            cache_id,
            watch={
                EventType.SET_PROPERTY,
                EventType.REMOVE_PROPERTY,
                EventType.MODIFY_PROPERTY,
                EventType.REORDER_PROPERTIES,
            },
            scope_user=None,  # universal property changes affect everyone
            name=base_props_name,
        )
        base.attach(notifier, acting_user=owner)
        installed.append(notifier)

    ref_props_name = f"notify-ref-properties:{cache_id.value}"
    if not reference.has_property(ref_props_name):
        notifier = NotifierProperty(
            bus,
            cache_id,
            watch={
                EventType.SET_PROPERTY,
                EventType.REMOVE_PROPERTY,
                EventType.MODIFY_PROPERTY,
                EventType.REORDER_PROPERTIES,
            },
            scope_user=owner,  # personal properties affect only this user
            name=ref_props_name,
        )
        reference.attach(notifier, acting_user=owner)
        installed.append(notifier)

    return installed
