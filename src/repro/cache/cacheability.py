"""Cacheability indicators and their most-restrictive aggregation.

Section 3 (Cache Management): "we provide three cacheability options:
uncacheable, cacheable but operation events need to be triggered, and
unrestricted caching.  The three cacheability options are set by all
active properties on the read-path ... and these choices aggregate to the
most restrictive value."
"""

from __future__ import annotations

import enum
import functools
from typing import Iterable

__all__ = ["Cacheability"]


@functools.total_ordering
class Cacheability(enum.Enum):
    """One property's vote on how a document's content may be cached.

    The enum orders from most to least restrictive, so aggregation is
    simply ``min``.
    """

    #: The content must not be cached at all (e.g. a live video source
    #: whose content changes on every access).
    UNCACHEABLE = 0
    #: The content may be cached, but the cache must forward each
    #: operation as an event so registered properties (e.g. a
    #: read-audit-trail) still observe it; the system does not execute the
    #: forwarded operation fully.
    CACHEABLE_WITH_EVENTS = 1
    #: No restrictions.
    UNRESTRICTED = 2

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Cacheability):
            return NotImplemented
        return self.value < other.value

    def combine(self, other: "Cacheability") -> "Cacheability":
        """The more restrictive of the two votes."""
        return self if self.value <= other.value else other

    @classmethod
    def aggregate(cls, votes: Iterable["Cacheability"]) -> "Cacheability":
        """Most restrictive vote; UNRESTRICTED when nothing voted.

        An empty vote set means no property on the read path expressed a
        caching constraint, which the paper treats as freely cacheable.
        """
        result = cls.UNRESTRICTED
        for vote in votes:
            result = result.combine(vote)
        return result

    @property
    def allows_caching(self) -> bool:
        """True unless the vote is :attr:`UNCACHEABLE`."""
        return self is not Cacheability.UNCACHEABLE

    @property
    def requires_event_forwarding(self) -> bool:
        """True when cached hits must still be forwarded as events."""
        return self is Cacheability.CACHEABLE_WITH_EVENTS
