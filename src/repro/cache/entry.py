"""Cache entries: per-(document, user) versions indirecting via signatures.

"Our current implementation tags content with both a document identifier
and the user to whom the version of the document belongs. ... content
entries could be shared if the cache maps a pair of document and user
identifiers to a content signature (e.g., MD5 hash) and in turn these
signatures map to the actual content." (§3)

The entry holds the *signature*, not the bytes; the bytes live in the
cache's :class:`~repro.content.store.ContentStore`, shared between all
entries whose transformed content is identical.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.cache.cacheability import Cacheability
from repro.cache.consistency import Invalidation
from repro.cache.verifiers import Verifier
from repro.content.signature import ContentSignature
from repro.ids import DocumentId, ReferenceId, UserId

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.placeless.reference import DocumentReference

__all__ = ["EntryKey", "CacheEntry", "key_for"]


class EntryKey(NamedTuple):
    """The (document, user) pair identifying a personalized cached version."""

    document_id: DocumentId
    user_id: UserId

    @classmethod
    def for_reference(cls, reference: "DocumentReference") -> "EntryKey":
        """The canonical key for a document reference.

        Every site that needs a (document, user) key — the manager, the
        pipeline stages, notifier/invalidation matching, stats
        attribution — must construct it through here, so the key shape
        is defined exactly once.

        The key is interned on the reference: both halves are fixed at
        reference construction, and at scale-workload read rates the
        tuple allocation and repeated attribute walk dominate the hot
        path (the interned key also hashes/compares by identity-cached
        ``NamedTuple`` contents, so dict probes stay cheap).
        """
        key = getattr(reference, "_entry_key", None)
        if key is None:
            key = cls(reference.base.document_id, reference.owner)
            reference._entry_key = key  # type: ignore[attr-defined]
        return key

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"({self.document_id}, {self.user_id})"


def key_for(reference: "DocumentReference") -> EntryKey:
    """Module-level alias for :meth:`EntryKey.for_reference`."""
    return EntryKey.for_reference(reference)


@dataclass
class CacheEntry:
    """One user's cached version of one document's transformed content."""

    key: EntryKey
    signature: ContentSignature
    size: int
    cacheability: Cacheability
    verifiers: list[Verifier]
    #: Replacement cost accumulated along the read path (bit-provider
    #: retrieval cost + property execution times + QoS inflation).
    replacement_cost_ms: float
    #: Ordered transform signatures of the chain that produced the bytes.
    chain_signature: tuple[str, ...]
    #: The reference the content was read through (needed to forward
    #: operation events and to refill on misses).
    reference_id: ReferenceId | None
    created_at_ms: float
    last_access_ms: float
    access_count: int = 1
    #: Set when the entry is invalidated; kept for attribution/reporting.
    invalidation: Invalidation | None = None
    #: Dirty bytes buffered by a write-back cache, pending flush.
    dirty_content: bytes | None = None
    #: Pinned entries are never chosen as replacement victims (§5's
    #: "always available" QoS requirement).
    pinned: bool = False
    #: Replacement-policy scratch state (e.g. the GDS H-value).
    policy_state: dict = field(default_factory=dict)

    @property
    def document_id(self) -> DocumentId:
        """The document half of the key."""
        return self.key.document_id

    @property
    def user_id(self) -> UserId:
        """The user half of the key."""
        return self.key.user_id

    @property
    def valid(self) -> bool:
        """True until the entry is invalidated."""
        return self.invalidation is None

    @property
    def is_dirty(self) -> bool:
        """True while a write-back has unflushed local bytes."""
        return self.dirty_content is not None

    def touch(self, now_ms: float) -> None:
        """Record one access."""
        self.last_access_ms = now_ms
        self.access_count += 1

    def invalidate(self, invalidation: Invalidation) -> None:
        """Mark the entry stale (first invalidation wins)."""
        if self.invalidation is None:
            self.invalidation = invalidation
