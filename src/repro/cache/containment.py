"""Containment layer for misbehaving active-property code.

The paper's premise is that cached content is *produced by running
arbitrary property code*: stream transformers interpose on every read
and write (§2) and "verifiers … are executed each time an entry is
retrieved" (§3).  That code is the availability hazard — a single
raising, runaway or corrupt property poisons every access to its
document.  This module contains the blast radius with three mechanisms
wrapped around the three untrusted-code seams (stream wrappers, verifier
execution, notifier callbacks):

* per-(document, code-site) **circuit breakers** with the full
  closed → open → half-open probation state machine, driven by the
  virtual clock — repeated failures stop the code from running at all,
  a probation delay later one probe is let through, and enough
  consecutive probe successes close the circuit again;
* per-invocation **execution budgets** — virtual-ms and byte caps that
  abort runaway property code with
  :class:`~repro.errors.BudgetExceededError`;
* **exception firewalls** — raises from property code are caught at the
  seam, recorded against the breaker, and converted into a policy-chosen
  fallback instead of propagating to the application.

On a tripped breaker the fallback depends on the property's *role*:
an optional transformer (``transforms_reads`` False) is skipped and the
base-document content served with a ``degraded`` marker; a required
transformer forces the access to miss to the kernel (the untransformed
result is never admitted); or the policy may *deny* with a typed
:class:`~repro.errors.CircuitOpenError`.

Everything here is **off by default**: a cache constructed without a
``containment_policy`` never builds a guard and behaves byte-identically
to the uncontained pipeline (the golden-digest equivalence tests pin
this).  New counters live in :class:`ContainmentStats`, projected from
``containment`` stage events — :class:`~repro.cache.stats.CacheStats`
gains no fields.
"""

from __future__ import annotations

import enum
import typing
from dataclasses import dataclass, fields
from typing import Any, Callable

from repro.cache.instrumentation import InstrumentationBus, StageEvent
from repro.errors import (
    BudgetExceededError,
    CacheError,
    CircuitOpenError,
    ContainmentError,
)
from repro.streams import chain as chains
from repro.streams.base import InputStream, OutputStream

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.entry import CacheEntry
    from repro.placeless.document import PathMeta
    from repro.placeless.properties import ActiveProperty
    from repro.sim.context import SimContext

__all__ = [
    "BreakerState",
    "BreakerConfig",
    "CircuitBreaker",
    "BreakerRegistry",
    "ExecutionBudget",
    "ContainmentStats",
    "ContainmentStatsProjection",
    "ContainmentGuard",
]

#: A breaker is keyed by (document id, code-site label); site labels are
#: ``stream:<property name>``, the verifier type name (matching the
#: legacy quarantine key shape), or ``notifier:<property name>``.
BreakerKey = tuple[Any, str]


class BreakerState(enum.Enum):
    """Where a circuit breaker is in its state machine."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning for one family of circuit breakers.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip a closed breaker open.
    probation_delay_ms:
        Virtual time an open breaker waits before admitting a half-open
        probe.  ``None`` means *no probation*: the breaker stays open
        until explicitly reset — exactly the legacy permanent verifier
        quarantine, re-expressed.
    half_open_successes:
        Consecutive successful probes required to close again.
    """

    failure_threshold: int = 3
    probation_delay_ms: float | None = 1_000.0
    half_open_successes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise CacheError(
                f"failure_threshold must be >= 1: {self.failure_threshold}"
            )
        if self.probation_delay_ms is not None and self.probation_delay_ms < 0:
            raise CacheError(
                "probation_delay_ms must be non-negative: "
                f"{self.probation_delay_ms}"
            )
        if self.half_open_successes < 1:
            raise CacheError(
                f"half_open_successes must be >= 1: {self.half_open_successes}"
            )


class CircuitBreaker:
    """One (document, code-site) breaker: closed → open → half-open.

    All timing is virtual-clock milliseconds supplied by the caller, so
    the machine is deterministic and usable both with a clock (the
    containment guard) and without one (the quarantine re-expression,
    which never probes).
    """

    def __init__(self, config: BreakerConfig) -> None:
        self.config = config
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.probe_successes = 0
        self.opened_at_ms = 0.0

    def allow(self, now_ms: float) -> bool:
        """May the guarded code run right now?

        An open breaker whose probation delay has elapsed transitions to
        half-open and admits the caller as its probe.
        """
        if self.state is BreakerState.OPEN:
            delay = self.config.probation_delay_ms
            if delay is None or now_ms - self.opened_at_ms < delay:
                return False
            self.state = BreakerState.HALF_OPEN
            self.probe_successes = 0
        return True

    def record_success(self, now_ms: float = 0.0) -> bool:
        """The guarded code completed cleanly; True when this closes."""
        if self.state is BreakerState.CLOSED:
            self.consecutive_failures = 0
            return False
        if self.state is BreakerState.HALF_OPEN:
            self.probe_successes += 1
            if self.probe_successes >= self.config.half_open_successes:
                self.state = BreakerState.CLOSED
                self.consecutive_failures = 0
                self.probe_successes = 0
                return True
        # A success observed while OPEN (e.g. a stream admitted before
        # the trip finishing cleanly) never closes the circuit.
        return False

    def record_failure(self, now_ms: float = 0.0) -> bool:
        """The guarded code failed; True when this (re)opens the circuit."""
        if self.state is BreakerState.HALF_OPEN:
            self.state = BreakerState.OPEN
            self.opened_at_ms = now_ms
            self.probe_successes = 0
            return True
        if self.state is BreakerState.CLOSED:
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.config.failure_threshold:
                self.state = BreakerState.OPEN
                self.opened_at_ms = now_ms
                return True
        return False


class BreakerRegistry:
    """Lazily-created breakers, one per (document, code-site) key."""

    def __init__(self, config: BreakerConfig) -> None:
        self.config = config
        self._breakers: dict[BreakerKey, CircuitBreaker] = {}

    def get(self, key: BreakerKey) -> CircuitBreaker:
        """The breaker for *key*, created (closed) on first use."""
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = self._breakers[key] = CircuitBreaker(self.config)
        return breaker

    def peek(self, key: BreakerKey) -> CircuitBreaker | None:
        """The breaker for *key* if one exists, without creating it."""
        return self._breakers.get(key)

    def open_keys(self) -> set[BreakerKey]:
        """Keys whose breaker is currently open (probation not reached)."""
        return {
            key
            for key, breaker in self._breakers.items()
            if breaker.state is BreakerState.OPEN
        }

    def reset_all(self) -> int:
        """Forget every breaker; returns how many were open."""
        opened = len(self.open_keys())
        self._breakers.clear()
        return opened

    def __len__(self) -> int:
        return len(self._breakers)


@dataclass(frozen=True)
class ExecutionBudget:
    """Per-invocation caps on property code: virtual-ms and bytes.

    ``None`` disables the corresponding cap.  The cost cap is checked
    before the invocation runs (declared/injected cost versus cap); the
    byte cap is enforced mid-stream by a counting wrapper.
    """

    max_cost_ms: float | None = None
    max_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.max_cost_ms is not None and self.max_cost_ms <= 0:
            raise CacheError(
                f"max_cost_ms must be positive: {self.max_cost_ms}"
            )
        if self.max_bytes is not None and self.max_bytes <= 0:
            raise CacheError(f"max_bytes must be positive: {self.max_bytes}")

    def check_cost(self, cost_ms: float, site: str) -> None:
        """Raise :class:`BudgetExceededError` when *cost_ms* busts the cap."""
        if self.max_cost_ms is not None and cost_ms > self.max_cost_ms:
            raise BudgetExceededError(
                f"{site}: invocation cost {cost_ms:.1f} ms exceeds "
                f"budget {self.max_cost_ms:.1f} ms"
            )


@dataclass
class ContainmentStats:
    """Counters for the containment layer, projected from stage events.

    Deliberately separate from :class:`~repro.cache.stats.CacheStats`,
    which must not change shape while containment is off by default.
    """

    #: Property raises caught by an exception firewall (and converted
    #: into a fallback instead of reaching the application).
    failures_contained: int = 0
    #: Invocations aborted by an execution budget (ms or byte cap).
    budget_overruns: int = 0
    #: Failures that escaped mid-stream (recorded, but the access fails).
    escapes: int = 0
    #: Breakers newly tripped open from closed.
    trips: int = 0
    #: Half-open probes that failed and re-opened the circuit.
    reopens: int = 0
    #: Breakers that closed again after probation.
    closes: int = 0
    #: Half-open probes admitted through an open circuit.
    probes: int = 0
    #: Optional transformers skipped (served degraded).
    optional_skips: int = 0
    #: Accesses forced to miss to the kernel (required transformer or
    #: verifier-gate breaker open).
    forced_misses: int = 0
    #: Accesses denied with a typed error.
    denials: int = 0
    #: Notifier callbacks suppressed while their breaker was open.
    notifier_suppressed: int = 0

    @property
    def total(self) -> int:
        """Every containment action taken."""
        return sum(getattr(self, f.name) for f in fields(self))


class ContainmentStatsProjection:
    """Derives :class:`ContainmentStats` from ``containment`` events."""

    _COUNTERS = {
        "contained": "failures_contained",
        "budget-exceeded": "budget_overruns",
        "escaped": "escapes",
        "tripped": "trips",
        "reopened": "reopens",
        "closed": "closes",
        "probe": "probes",
        "skipped": "optional_skips",
        "forced-miss": "forced_misses",
        "denied": "denials",
        "suppressed": "notifier_suppressed",
    }

    def __init__(self, stats: ContainmentStats) -> None:
        self.stats = stats

    def __call__(self, event: StageEvent) -> None:
        if event.stage != "containment":
            return
        name = self._COUNTERS.get(event.outcome)
        if name is not None:
            setattr(self.stats, name, getattr(self.stats, name) + 1)


class ContainmentGuard:
    """Coordinates breakers, budgets and firewalls across the three seams.

    One guard per cache, built from a
    :class:`~repro.cache.policies.ContainmentPolicy` and attached to
    both the cache core (verifier/notifier seams) and the simulation
    context (stream-wrapper seam, consulted by
    :mod:`repro.streams.chain`).
    """

    def __init__(
        self,
        policy: Any,
        ctx: "SimContext",
        instrumentation: InstrumentationBus,
    ) -> None:
        self.policy = policy
        self.ctx = ctx
        self.instrumentation = instrumentation
        self.wrappers = BreakerRegistry(policy.wrapper_breaker)
        self.verifiers = BreakerRegistry(policy.verifier_breaker)
        self.notifiers = BreakerRegistry(policy.notifier_breaker)
        self.stats = ContainmentStats()
        instrumentation.subscribe(ContainmentStatsProjection(self.stats))

    # -- event + breaker bookkeeping -------------------------------------------

    def _emit(
        self, outcome: str, document_id: Any, site: str, **payload: Any
    ) -> None:
        now = self.ctx.clock.now_ms
        self.instrumentation.emit(
            StageEvent(
                "containment",
                outcome,
                document_id=document_id,
                started_ms=now,
                ended_ms=now,
                payload={"site": site, **payload},
            )
        )

    def _allow(self, registry: BreakerRegistry, key: BreakerKey) -> bool:
        breaker = registry.get(key)
        was_open = breaker.state is BreakerState.OPEN
        allowed = breaker.allow(self.ctx.clock.now_ms)
        if allowed and was_open:
            self._emit("probe", key[0], key[1])
        return allowed

    def _failure(self, registry: BreakerRegistry, key: BreakerKey) -> None:
        breaker = registry.get(key)
        was_half_open = breaker.state is BreakerState.HALF_OPEN
        if breaker.record_failure(self.ctx.clock.now_ms):
            self._emit("reopened" if was_half_open else "tripped", *key)

    def _success(self, registry: BreakerRegistry, key: BreakerKey) -> None:
        if registry.get(key).record_success(self.ctx.clock.now_ms):
            self._emit("closed", *key)

    # -- stream-wrapper seam ---------------------------------------------------

    def wrap_input(
        self,
        prop: "ActiveProperty",
        stream: InputStream,
        event: Any,
        meta: "PathMeta",
    ) -> InputStream:
        """Firewalled equivalent of absorb + ``prop.wrap_input``."""
        ctx = self.ctx
        if getattr(prop, "is_infrastructure", False):
            meta.absorb_property(ctx, prop)
            return prop.wrap_input(stream, event)
        site = chains.property_site(prop)
        key: BreakerKey = (event.document_id, site)
        role = self._role(prop)
        if not self._allow(self.wrappers, key):
            return self._fallback_input(key, role, stream, meta, cause=None)
        plan = ctx.faults
        mode = plan.check_property(site) if plan is not None else None
        cost = prop.execution_cost_ms
        if mode == "runaway" and plan is not None:
            cost += plan.property_runaway_cost_ms
        overrun = self._check_budget(key, cost)
        if overrun is not None:
            return self._fallback_input(key, role, stream, meta, cause=overrun)
        try:
            meta.absorb_property(ctx, prop)
            if mode == "runaway" and plan is not None:
                ctx.charge(plan.property_runaway_cost_ms)
            if mode == "raise":
                raise chains.injected_property_error(prop)
            wrapped = prop.wrap_input(stream, event)
        except ContainmentError:
            raise
        except Exception as error:
            self._emit("contained", *key, error=type(error).__name__)
            self._failure(self.wrappers, key)
            return self._fallback_input(key, role, stream, meta, cause=error)
        if mode == "corrupt":
            wrapped = chains.CorruptingInputStream(wrapped, site)
        budget = self.policy.budget
        if budget is not None and budget.max_bytes is not None:
            wrapped = chains.ByteCapInputStream(wrapped, budget.max_bytes, site)
        return chains.FirewallInputStream(
            wrapped,
            on_failure=lambda error: self._stream_failure(key, error),
            on_success=lambda: self._success(self.wrappers, key),
        )

    def wrap_output(
        self, prop: "ActiveProperty", stream: OutputStream, event: Any
    ) -> OutputStream:
        """Firewalled equivalent of charge + ``prop.wrap_output``."""
        ctx = self.ctx
        if getattr(prop, "is_infrastructure", False):
            ctx.charge(prop.execution_cost_ms)
            return prop.wrap_output(stream, event)
        site = chains.property_site(prop)
        key: BreakerKey = (event.document_id, site)
        role = self._role(prop)
        if not self._allow(self.wrappers, key):
            return self._fallback_output(key, role, stream, cause=None)
        plan = ctx.faults
        mode = plan.check_property(site) if plan is not None else None
        cost = prop.execution_cost_ms
        if mode == "runaway" and plan is not None:
            cost += plan.property_runaway_cost_ms
        overrun = self._check_budget(key, cost)
        if overrun is not None:
            return self._fallback_output(key, role, stream, cause=overrun)
        try:
            ctx.charge(prop.execution_cost_ms)
            if mode == "runaway" and plan is not None:
                ctx.charge(plan.property_runaway_cost_ms)
            if mode == "raise":
                raise chains.injected_property_error(prop)
            wrapped = prop.wrap_output(stream, event)
        except ContainmentError:
            raise
        except Exception as error:
            self._emit("contained", *key, error=type(error).__name__)
            self._failure(self.wrappers, key)
            return self._fallback_output(key, role, stream, cause=error)
        if mode == "corrupt":
            wrapped = chains.CorruptingOutputStream(wrapped, site)
        return chains.FirewallOutputStream(
            wrapped,
            on_failure=lambda error: self._stream_failure(key, error),
            on_success=lambda: self._success(self.wrappers, key),
        )

    def _role(self, prop: "ActiveProperty") -> str:
        return (
            "required"
            if getattr(prop, "transforms_reads", False)
            else "optional"
        )

    def _check_budget(
        self, key: BreakerKey, cost_ms: float
    ) -> BudgetExceededError | None:
        """Pre-invocation cost-cap check; charges the capped time on abort."""
        budget = self.policy.budget
        if budget is None:
            return None
        try:
            budget.check_cost(cost_ms, key[1])
        except BudgetExceededError as error:
            # The runaway code ran until the budget killed it: the cap,
            # not the full runaway cost, is what the access pays.
            self.ctx.charge(budget.max_cost_ms or 0.0)
            self._emit("budget-exceeded", *key, cost_ms=cost_ms)
            self._failure(self.wrappers, key)
            return error
        return None

    def _stream_failure(self, key: BreakerKey, error: BaseException) -> None:
        if isinstance(error, BudgetExceededError):
            self._emit("budget-exceeded", *key, error=type(error).__name__)
        else:
            self._emit("escaped", *key, error=type(error).__name__)
        self._failure(self.wrappers, key)

    def _fallback_input(
        self,
        key: BreakerKey,
        role: str,
        stream: InputStream,
        meta: "PathMeta",
        cause: BaseException | None,
    ) -> InputStream:
        decision = self.policy.fallback(role)
        if decision == "deny":
            self._emit("denied", *key)
            raise CircuitOpenError(
                f"containment denied {key[1]} for document {key[0]}"
            ) from cause
        if decision == "force-miss":
            meta.contained_required += 1
            self._emit("forced-miss", *key, seam="wrapper")
        else:
            meta.contained_skips += 1
            self._emit("skipped", *key)
        return stream

    def _fallback_output(
        self,
        key: BreakerKey,
        role: str,
        stream: OutputStream,
        cause: BaseException | None,
    ) -> OutputStream:
        # Writes have no degraded-serve option: skipping a *required*
        # transformer on the write path would store wrong bytes, so only
        # optional properties may be skipped; everything else denies.
        if self.policy.fallback(role) == "skip":
            self._emit("skipped", *key)
            return stream
        self._emit("denied", *key)
        raise CircuitOpenError(
            f"containment denied {key[1]} for document {key[0]} (write)"
        ) from cause

    # -- verifier seam ---------------------------------------------------------

    def verifier_key(
        self, entry: "CacheEntry", verifier: Any
    ) -> BreakerKey:
        """Same key shape as the legacy quarantine's fault key."""
        return (entry.document_id, type(verifier).__name__)

    def verifier_blocked(self, entry: "CacheEntry") -> bool:
        """Is any of the entry's verifiers behind an open breaker?

        A blocked verifier forces the access to miss to the kernel —
        the breaker-shaped successor of the quarantine's forced miss.
        An open breaker past its probation admits the caller as a probe
        instead of blocking.
        """
        blocked = False
        for verifier in entry.verifiers:
            if not self._allow(
                self.verifiers, self.verifier_key(entry, verifier)
            ):
                blocked = True
        if blocked:
            self._emit(
                "forced-miss", entry.document_id, "verifier-gate",
                seam="verifier",
            )
        return blocked

    def check_verifier_budget(
        self, entry: "CacheEntry", verifier: Any
    ) -> None:
        """Budget gate before a verifier runs; raises on overrun."""
        budget = self.policy.budget
        if budget is None:
            return
        key = self.verifier_key(entry, verifier)
        try:
            budget.check_cost(verifier.cost_ms, key[1])
        except BudgetExceededError:
            self._emit("budget-exceeded", *key, cost_ms=verifier.cost_ms)
            raise

    def note_verifier_failure(
        self, entry: "CacheEntry", verifier: Any
    ) -> None:
        self._failure(self.verifiers, self.verifier_key(entry, verifier))

    def note_verifier_success(
        self, entry: "CacheEntry", verifier: Any
    ) -> None:
        self._success(self.verifiers, self.verifier_key(entry, verifier))

    # -- notifier seam ---------------------------------------------------------

    def run_notifier(
        self,
        prop: Any,
        event: Any,
        call: Callable[[Any], Any],
    ) -> Any:
        """Run a notifier callback behind its breaker + firewall.

        A raising notifier is contained (the dispatch continues to other
        handlers); while its breaker is open the callback is suppressed
        entirely — mirroring how a crashed notifier simply misses events.
        """
        document_id = getattr(event, "document_id", None)
        key: BreakerKey = (document_id, f"notifier:{prop.name}")
        if not self._allow(self.notifiers, key):
            self._emit("suppressed", *key)
            return None
        try:
            result = call(event)
        except Exception as error:
            self._emit("contained", *key, error=type(error).__name__)
            self._failure(self.notifiers, key)
            return None
        self._success(self.notifiers, key)
        return result

    # -- introspection / reset -------------------------------------------------

    def open_sites(self) -> dict[str, set[BreakerKey]]:
        """Currently-open breakers per seam (for benches and bridges)."""
        return {
            "wrapper": self.wrappers.open_keys(),
            "verifier": self.verifiers.open_keys(),
            "notifier": self.notifiers.open_keys(),
        }

    def reset(self) -> int:
        """Forget every breaker across all seams; returns open count."""
        return (
            self.wrappers.reset_all()
            + self.verifiers.reset_all()
            + self.notifiers.reset_all()
        )
