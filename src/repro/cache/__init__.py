"""The paper's core contribution: active-property-aware content caching.

Everything §3 describes lives here: per-(document, user) cache entries
indirecting through MD5 content signatures, the three-level cacheability
vote with most-restrictive aggregation, notifier- and verifier-based
consistency covering the four invalidation classes, cost-aware
Greedy-Dual-Size replacement seeded by bit-provider retrieval costs and
property execution times, and write-through/write-back modes with
operation-event forwarding.

The cache itself is a staged pipeline (:mod:`repro.cache.pipeline`)
over a shared :mod:`core <repro.cache.core>`, with cross-cutting
decisions behind pluggable :mod:`policies <repro.cache.policies>` and
every counter derived from the structured-event
:mod:`instrumentation <repro.cache.instrumentation>` bus;
:mod:`manager <repro.cache.manager>` is the wiring plus public API.
"""

from repro.cache.cacheability import Cacheability
from repro.cache.consistency import (
    Invalidation,
    InvalidationClass,
    InvalidationReason,
)
from repro.cache.containment import (
    BreakerConfig,
    BreakerRegistry,
    BreakerState,
    CircuitBreaker,
    ContainmentGuard,
    ContainmentStats,
    ExecutionBudget,
)
from repro.cache.entry import CacheEntry, EntryKey, key_for
from repro.cache.instrumentation import (
    ConcurrencyStats,
    InstrumentationBus,
    StageEvent,
    StageRecorder,
    StatsProjection,
)
from repro.cache.manager import CacheReadOutcome, DocumentCache, WriteMode
from repro.cache.notifiers import (
    InvalidationBus,
    NotifierProperty,
    install_minimum_notifiers,
)
from repro.cache.pipeline import ReadPipeline, WritePipeline
from repro.cache.policies import (
    AdmissionDecision,
    AdmissionPolicy,
    ConcurrencyPolicy,
    ContainmentPolicy,
    DefaultConcurrencyPolicy,
    DefaultContainmentPolicy,
    DefaultDegradationPolicy,
    DefaultRecoveryPolicy,
    DefaultStoragePolicy,
    DegradationPolicy,
    RecoveryPolicy,
    StoragePolicy,
    VoteAdmissionPolicy,
)
from repro.cache.recovery import (
    ConsistencyRecoveryManager,
    NotifierLease,
    RecoveryStats,
    WriteBackJournal,
)
from repro.cache.replacement import (
    FIFOPolicy,
    GreedyDualPolicy,
    GreedyDualSizePolicy,
    LFUPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SizePolicy,
    make_policy,
)
from repro.cache.stats import CacheStats
from repro.cache.verifiers import (
    AlwaysInvalidVerifier,
    AlwaysValidVerifier,
    CompositeVerifier,
    ModificationTimeVerifier,
    PredicateVerifier,
    ThresholdVerifier,
    TTLVerifier,
    Verdict,
    Verifier,
    VerifierResult,
)

__all__ = [
    "Cacheability",
    "Invalidation",
    "InvalidationClass",
    "InvalidationReason",
    "CacheEntry",
    "EntryKey",
    "key_for",
    "DocumentCache",
    "CacheReadOutcome",
    "WriteMode",
    "ReadPipeline",
    "WritePipeline",
    "InstrumentationBus",
    "StageEvent",
    "StageRecorder",
    "StatsProjection",
    "AdmissionDecision",
    "AdmissionPolicy",
    "VoteAdmissionPolicy",
    "DegradationPolicy",
    "DefaultDegradationPolicy",
    "ContainmentPolicy",
    "DefaultContainmentPolicy",
    "ConcurrencyPolicy",
    "DefaultConcurrencyPolicy",
    "ConcurrencyStats",
    "ContainmentGuard",
    "ContainmentStats",
    "BreakerConfig",
    "BreakerState",
    "BreakerRegistry",
    "CircuitBreaker",
    "ExecutionBudget",
    "RecoveryPolicy",
    "DefaultRecoveryPolicy",
    "StoragePolicy",
    "DefaultStoragePolicy",
    "ConsistencyRecoveryManager",
    "NotifierLease",
    "RecoveryStats",
    "WriteBackJournal",
    "InvalidationBus",
    "NotifierProperty",
    "install_minimum_notifiers",
    "ReplacementPolicy",
    "GreedyDualSizePolicy",
    "GreedyDualPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "FIFOPolicy",
    "SizePolicy",
    "RandomPolicy",
    "make_policy",
    "CacheStats",
    "Verifier",
    "Verdict",
    "VerifierResult",
    "AlwaysValidVerifier",
    "AlwaysInvalidVerifier",
    "TTLVerifier",
    "ModificationTimeVerifier",
    "PredicateVerifier",
    "CompositeVerifier",
    "ThresholdVerifier",
]
