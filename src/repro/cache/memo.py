"""The transform memoization plane: chain fingerprints + output memo.

The paper's per-(document, user) entries indirect through an MD5 content
signature, "enabling sharing of identical transformed content between
users" (§3) — but that sharing happens at *storage* time only: every
miss still re-executes the full active-property chain, even when another
user's miss already produced byte-identical output from the same source
bytes and the same chain.  Vcache makes the matching observation for
dynamic documents: cache the generator's output keyed by its *inputs*.

This module supplies the two data structures behind the pipeline's
``MemoStage``:

* :class:`ChainFingerprint` — a stable, order-sensitive digest of one
  read path's transformation chain.  Every property contributes a
  ``fingerprint()`` covering its code identity, configuration and
  version; composing them *with their position* makes the fingerprint
  sensitive to the paper's invalidation class (c): the same properties
  reordered produce a different fingerprint.
* :class:`TransformMemo` — a bounded LRU table mapping
  ``(source signature, chain fingerprint) → output signature`` plus the
  fill metadata needed to rebuild a cache entry.  A second user's miss
  with a recorded pair becomes a signature-only
  :meth:`~repro.content.store.ContentStore.adopt` instead of a provider
  fetch and a chain execution.  The table holds *no* content-store
  references of its own (refcount-aware by construction): a record whose
  output bytes have been evicted is detected at consult time and pruned.

The four §3 invalidation classes map onto the memo as follows:

(a) **source changes** — records are keyed by the *current* source
    signature (probed at consult time), so a changed source simply never
    matches; stale keys age out of the LRU.
(b) **property add/delete/modify** — any change to the chain's members
    changes the composed fingerprint, so stale records never match.
(c) **property reordering** — fingerprints are position-indexed, so a
    permuted chain changes the key the same way.
(d) **external conditions (verifiers)** — a record carrying verifiers is
    re-verified before it is served (or bypassed entirely, per
    :class:`~repro.cache.policies.MemoPolicy`); chains voting
    UNCACHEABLE are negative-cached so repeated misses skip the lookup
    machinery without ever serving from the memo.

Recovery and containment integrate at the edges: an anti-entropy resync
purges the whole table (a resync exists precisely because cached state
is suspect), a cache crash discards it with the rest of volatile state,
and a tripped breaker on any chain property bypasses the memo for that
document (the recorded output was produced by code that is currently
quarantined).
"""

from __future__ import annotations

import hashlib
import typing
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, NamedTuple

from repro.cache.cacheability import Cacheability
from repro.streams.chain import read_chain_properties

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.core import CacheCore
    from repro.cache.instrumentation import StageEvent
    from repro.cache.verifiers import Verifier
    from repro.content.signature import ContentSignature
    from repro.ids import DocumentId
    from repro.placeless.reference import DocumentReference

__all__ = [
    "ChainFingerprint",
    "fingerprint_reference",
    "MemoRecord",
    "TransformMemo",
    "MemoStats",
    "MemoStatsProjection",
]


class ChainFingerprint(NamedTuple):
    """Order-sensitive digest of one read path's transformation chain."""

    digest: str

    @classmethod
    def compose(cls, fingerprints: Iterable[str]) -> "ChainFingerprint":
        """Fold per-property fingerprints, tagged with their position.

        Position tagging is what makes the paper's invalidation class
        (c) observable: ``[a, b]`` and ``[b, a]`` compose differently
        even though the member set is identical.
        """
        hasher = hashlib.md5()
        for position, fingerprint in enumerate(fingerprints):
            hasher.update(f"{position}:{fingerprint}\n".encode())
        return cls(hasher.hexdigest())

    @property
    def short(self) -> str:
        """Abbreviated digest for traces."""
        return self.digest[:8]


def fingerprint_reference(
    reference: "DocumentReference",
) -> ChainFingerprint:
    """The chain fingerprint *reference*'s read path would produce.

    Computed from property metadata alone — no content fetch, no chain
    execution — over the same base-then-reference chain order the read
    path executes (§2), so it is a per-(document, user) key: two users
    of one document with identical chains fingerprint identically.
    """
    return ChainFingerprint.compose(
        prop.fingerprint() for prop in read_chain_properties(reference)
    )


@dataclass(slots=True)
class MemoRecord:
    """One memoized ``(source, chain) → output`` mapping.

    ``output_signature`` of ``None`` marks a *negative* record: the
    chain voted UNCACHEABLE for this source, so the pipeline should not
    bother consulting candidates or recording again — it falls straight
    through to the fetch path.
    """

    source_signature: "ContentSignature"
    fingerprint: ChainFingerprint
    output_signature: "ContentSignature | None"
    document_id: "DocumentId | None" = None
    size: int = 0
    cacheability: Cacheability = Cacheability.UNRESTRICTED
    verifiers: tuple["Verifier", ...] = ()
    verifier_fingerprints: tuple[str, ...] = ()
    replacement_cost_ms: float = 0.0
    chain_signature: tuple[str, ...] = ()
    pin: bool = False

    @property
    def key(self) -> tuple["ContentSignature", ChainFingerprint]:
        """The memo-table key of this record."""
        return (self.source_signature, self.fingerprint)

    @property
    def is_negative(self) -> bool:
        """True for the UNCACHEABLE negative-cache sentinel."""
        return self.output_signature is None


class TransformMemo:
    """Bounded LRU ``(source signature, chain fingerprint) → record``.

    The table stores signatures, never bytes, and takes no content-store
    references: output bytes stay alive only while some cache entry
    still references them.  The consult path checks membership in the
    store before serving and prunes dead records, which is what keeps
    the memo refcount-aware without a second accounting scheme.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"memo capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._records: OrderedDict[
            tuple["ContentSignature", ChainFingerprint], MemoRecord
        ] = OrderedDict()
        #: Records displaced by the LRU bound since construction.
        self.evictions = 0

    def lookup(
        self,
        source_signature: "ContentSignature",
        fingerprint: ChainFingerprint,
    ) -> MemoRecord | None:
        """The live record for the pair, freshened in LRU order."""
        record = self._records.get((source_signature, fingerprint))
        if record is not None:
            self._records.move_to_end((source_signature, fingerprint))
        return record

    def record(self, record: MemoRecord) -> int:
        """Insert (or refresh) *record*; returns LRU evictions made."""
        self._records[record.key] = record
        self._records.move_to_end(record.key)
        evicted = 0
        while len(self._records) > self.capacity:
            self._records.popitem(last=False)
            evicted += 1
        self.evictions += evicted
        return evicted

    def discard(self, record: MemoRecord) -> None:
        """Forget one record (no-op when already gone or superseded).

        Identity-guarded: only removes the mapping when the table still
        holds *this* record object.  Under the concurrent scheduler a
        read can decide to discard a record (dead output signature,
        failed verifier), suspend at a seam, and resume after another
        read has re-recorded a fresh record under the same key — a
        blind ``pop`` would drop the fresh record and silently lose its
        refcount bookkeeping (see DESIGN.md §3.3).
        """
        if self._records.get(record.key) is record:
            del self._records[record.key]

    def purge_all(self) -> int:
        """Drop every record; returns how many were dropped."""
        purged = len(self._records)
        self._records.clear()
        return purged

    def purge_document(self, document_id: "DocumentId") -> int:
        """Drop every record attributed to one document."""
        doomed = [
            key
            for key, record in self._records.items()
            if record.document_id == document_id
        ]
        for key in doomed:
            del self._records[key]
        return len(doomed)

    def materialize(
        self, record: MemoRecord, core: "CacheCore"
    ) -> bytes | None:
        """Recover *record*'s output bytes when *core*'s store lacks them.

        The base memo is a strictly local plane: a record whose output
        bytes have left this cache's content store is dead, so the
        default answer is ``None`` and the consult path prunes the
        record.  Shared views (the cluster's cross-shard memo) override
        this to pull the bytes from a sibling store — charging the
        inter-cache link on the virtual clock — and seed them into
        *core*'s store via ``put_signed`` before returning them, making
        a remote shard's chain execution a local signature-only adopt.
        A successful materialization leaves exactly one store reference,
        which the serving entry takes over (the pipeline must not
        ``adopt`` again on this path).

        A cache with a durable L2 tier gets one local recovery source
        before giving up: demoted (or crash-surviving) bytes for the
        recorded output signature are read back off disk, CRC-gated,
        with the same single-reference contract.
        """
        if record.output_signature is not None and core.l2 is not None:
            return core.l2.materialize_bytes(record.output_signature)
        return None

    def records(self) -> list[MemoRecord]:
        """All live records, LRU order (oldest first); for inspection."""
        return list(self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(
        self, key: tuple["ContentSignature", ChainFingerprint]
    ) -> bool:
        return key in self._records


@dataclass(slots=True)
class MemoStats:
    """Counters derived from ``memo`` stage events."""

    #: Misses served from the memo (each one is a provider fetch plus a
    #: full chain execution that did not happen).
    adoptions: int = 0
    #: The subset of adoptions whose output bytes had to be pulled from
    #: a sibling cache's store (cross-shard memo sharing); always zero
    #: for the strictly local base memo.
    imports: int = 0
    #: Consults that found no record and fell through to the fetch path.
    misses: int = 0
    #: Consults answered by the UNCACHEABLE negative-cache sentinel.
    negative_hits: int = 0
    #: Output records written at admission time.
    records: int = 0
    #: Negative (UNCACHEABLE) records written at admission time.
    negative_records: int = 0
    #: Consults skipped because a chain property's breaker is open.
    contained_bypasses: int = 0
    #: Verifier-gated records skipped because the policy declines to
    #: re-verify at serve time.
    verifier_bypasses: int = 0
    #: Records pruned because their output bytes left the content store.
    dead_drops: int = 0
    #: Records pruned because a verifier failed at serve time.
    verifier_drops: int = 0
    #: Records removed by purges (resync, crash, explicit).
    purged: int = 0
    #: Records displaced by the LRU capacity bound.
    evictions: int = 0

    @property
    def chain_executions_avoided(self) -> int:
        """The headline A15 metric: one adoption = one chain not run."""
        return self.adoptions

    @property
    def consults(self) -> int:
        """Total lookups that reached the memo table."""
        return self.adoptions + self.misses + self.negative_hits


class MemoStatsProjection:
    """Instrumentation subscriber deriving :class:`MemoStats`."""

    _COUNTERS = {
        "adopted": "adoptions",
        "missed": "misses",
        "negative-hit": "negative_hits",
        "recorded": "records",
        "negative-recorded": "negative_records",
        "bypass-contained": "contained_bypasses",
        "bypass-verifier": "verifier_bypasses",
        "dropped-dead": "dead_drops",
        "dropped-verifier": "verifier_drops",
    }

    def __init__(self, stats: MemoStats | None = None) -> None:
        self.stats = stats if stats is not None else MemoStats()

    def __call__(self, event: "StageEvent") -> None:
        if event.stage != "memo":
            return
        counter = self._COUNTERS.get(event.outcome)
        if counter is not None:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
            if event.outcome == "adopted" and event.payload.get("imported"):
                self.stats.imports += 1
        elif event.outcome == "purged":
            self.stats.purged += event.payload.get("records", 0)
        elif event.outcome == "evicted":
            self.stats.evictions += event.payload.get("records", 0)
