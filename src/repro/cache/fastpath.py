"""The zero-allocation fast lane through the read pipeline.

The staged :class:`~repro.cache.pipeline.ReadPipeline` buys its
composability with per-read overhead: a :class:`ReadContext`, a
generator, a scheduler drive loop, ten stage dispatches and a
:class:`~repro.cache.instrumentation.StageEvent` per observation — all
of it pure interpreter work that never touches the virtual clock.  At
trace scale (the A20 million-entry churn workloads) that interpreter
work *is* the wall-clock cost of a hit, because a verified hit charges
one hop and runs a couple of verifiers and is otherwise pure
bookkeeping.

:class:`FastReadLane` serves the common case — a verified hit on a
cache with every optional seam disabled — inline, with no context
object, no generator, no stage dispatch and no event construction,
while producing *byte-identical observable behaviour*: the same
virtual-clock charges in the same order, the same
:class:`~repro.cache.stats.CacheStats` counter updates, the same
:class:`~repro.cache.instrumentation.StageRecorder` cells and the same
:class:`~repro.cache.pipeline.CacheReadOutcome`.  The equivalence tests
pin this with the golden workload digests run lane-on and lane-off.

Eligibility is re-checked per read with O(1) attribute tests; any
configured seam — transform memo, durable L2 tier, overload gate,
concurrency policy, containment guard, fault plan, staleness tracking,
a concurrent scheduler, or *any* instrumentation subscriber beyond the
two the manager itself wires — falls back to the staged pipeline.  So
does anything the fast lane does not model inline: a dirty write-back
key, a miss, a quarantined verifier, a verifier that invalidates.  The
fallback happens *before* the first charge, so a bailed read re-enters
the staged pipeline from the top and is indistinguishable from one
that never touched the lane.
"""

from __future__ import annotations

import typing

from repro.cache.consistency import InvalidationReason
from repro.cache.entry import EntryKey
from repro.cache.instrumentation import StageCell
from repro.cache.pipeline import CacheReadOutcome, ReadContext
from repro.cache.verifiers import Verdict
from repro.errors import CacheError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.core import CacheCore
    from repro.cache.instrumentation import StageRecorder
    from repro.cache.pipeline import ReadPipeline
    from repro.placeless.reference import DocumentReference

__all__ = ["FastReadLane"]


class FastReadLane:
    """Inline hit path over a :class:`~repro.cache.core.CacheCore`.

    Construct *after* the manager has finished wiring: the lane
    snapshots the instrumentation bus's subscriber tuple as its
    baseline, and any later subscription (a test probe, an aggregating
    projection) disqualifies the lane by identity comparison — direct
    counter accumulation is only equivalent to emission while the
    subscriber set is exactly what the manager wired.
    """

    __slots__ = (
        "core", "reads", "recorder", "_baseline", "_hit_path",
        "_miss_stages",
    )

    def __init__(
        self,
        core: "CacheCore",
        reads: "ReadPipeline",
        recorder: "StageRecorder",
    ) -> None:
        self.core = core
        self.reads = reads
        self.recorder = recorder
        self._baseline = core.instrumentation.subscribers
        self._hit_path = tuple(core.topology.hit_path())
        # Stages after the verifier gate: where a read continues when a
        # verifier invalidates mid-lane (adoption → L2 → memo →
        # single-flight → fetch → degradation → admission).
        self._miss_stages = tuple(reads.stages[3:])

    # -- eligibility ---------------------------------------------------------

    def _eligible(self, core: "CacheCore") -> bool:
        """True when the staged pipeline would take the plain hit path."""
        return (
            core.memo is None
            and core.l2 is None
            and core.overload is None
            and core.concurrency is None
            and core.containment is None
            and not core.track_staleness
            and core.ctx.faults is None
            and not core.scheduler.supports_concurrency
            and core.instrumentation.subscribers is self._baseline
        )

    # -- the lane ------------------------------------------------------------

    def read(self, reference: "DocumentReference") -> CacheReadOutcome:
        """One application read; bails to the staged pipeline when the
        configuration, the key's state, or the verifier verdicts leave
        the modelled common case.  Nothing is charged before a bail, so
        the fallback read is byte-identical to a lane-less one."""
        core = self.core
        if not self._eligible(core):
            return self.reads.read(reference)
        key = EntryKey.for_reference(reference)
        if key in core.dirty:
            # The dirty-flush stage would write first; rare, slow path.
            return self.reads.read(reference)
        entry = core.entries.get(key)
        if entry is None:
            # A miss runs the full staged miss path (adoption, fetch,
            # degradation, admission); re-entering from the top costs
            # one redundant table probe and nothing else.
            return self.reads.read(reference)

        clock = core.ctx.clock
        started_ms = clock.now_ms
        content = core.store.get(entry.signature)
        disposition = "hit"
        stats = core.stats
        # "cache hit" latency: the local (or app→server) hop only.
        for hop in self._hit_path:
            core.ctx.charge_hop(hop, entry.size)

        if core.use_verifiers:
            verifiers = entry.verifiers
            if verifiers and self._entry_quarantined(entry):
                # Mirrors the staged gate's forced miss, then continues
                # through the miss stages with the stale bytes parked.
                core.drop(entry, InvalidationReason.VERIFIER_FAILED,
                          origin="quarantine")
                core.emit("quarantine", "forced-miss", key=key)
                return self._continue_miss(
                    reference, key, started_ms,
                    stale=(content, entry.created_at_ms),
                )
            for verifier in verifiers:
                verifier_started_ms = clock.now_ms
                core.ctx.charge(verifier.cost_ms)
                # Hot event, accumulated directly (see _record): one
                # "verifier"/"executed" StageEvent per hit-side verifier
                # run is the single largest allocation site on the path.
                stats.verifier_executions += 1
                stats.verifier_cost_ms += verifier.cost_ms
                self._record(
                    "verifier", "executed",
                    clock.now_ms - verifier_started_ms,
                )
                try:
                    result = verifier.run(clock.now_ms, content)
                except Exception:
                    self._note_failure(entry, verifier)
                    core.drop(entry, InvalidationReason.VERIFIER_FAILED,
                              origin="verifier")
                    core.emit("verifier", "invalidated", key=key)
                    core.note_verifier_caught_lost(entry)
                    return self._continue_miss(
                        reference, key, started_ms,
                        stale=(content, entry.created_at_ms),
                    )
                core.degradation.note_verifier_success(
                    core.verifier_fault_key(entry, verifier)
                )
                if result.verdict is Verdict.INVALID:
                    reason = (
                        InvalidationReason.SOURCE_UPDATED_OUT_OF_BAND
                        if verifier.invalidation_label == "source"
                        else InvalidationReason.EXTERNAL_CHANGED
                    )
                    core.drop(entry, reason, origin="verifier")
                    core.emit("verifier", "invalidated", key=key)
                    core.note_verifier_caught_lost(entry)
                    return self._continue_miss(
                        reference, key, started_ms,
                        stale=(content, entry.created_at_ms),
                    )
                if result.verdict is Verdict.REVALIDATED:
                    content = result.patched_content or b""
                    core.replace_content(entry, content)
                    core.emit("verifier", "revalidated", key=key)
                    disposition = "revalidated"

        if entry.cacheability.requires_event_forwarding:
            core.forward_read(reference)

        entry.touch(clock.now_ms)
        core.policy.on_access(entry)
        elapsed = clock.now_ms - started_ms
        # The terminal "read" event, accumulated directly.
        stats.hits += 1
        stats.hit_latency_ms += elapsed
        stats.bytes_served_from_cache += len(content)
        self._record("read", disposition, elapsed)
        if entry.policy_state.get("prefetched"):
            core.emit("prefetch", "hit", key=key)
            entry.policy_state["prefetched"] = False
        return CacheReadOutcome(
            content=content, hit=True, elapsed_ms=elapsed,
            disposition=disposition,
        )

    # -- rare-path helpers ---------------------------------------------------

    def _continue_miss(
        self,
        reference: "DocumentReference",
        key: EntryKey,
        started_ms: float,
        *,
        stale: tuple[bytes, float] | None,
    ) -> CacheReadOutcome:
        """Run the post-gate stages after a mid-lane invalidation.

        Matches the staged pipeline exactly: the read keeps its original
        ``started_ms`` (the hop charge already happened) and carries the
        invalidated bytes for bounded serve-stale-on-error.  With the
        lane's eligibility holding (sequential scheduler, no concurrency
        policy) no stage suspends, so a plain loop is the whole drive.
        """
        ctx = ReadContext(
            reference=reference,
            key=key,
            started_ms=started_ms,
            scheduler=self.core.scheduler,
            stale=stale,
        )
        for stage in self._miss_stages:
            result = stage.run(ctx)
            if result is not None:
                return result
        raise CacheError(
            "read pipeline ended without a terminal stage result"
        )  # pragma: no cover - AdmissionStage always terminates

    def _entry_quarantined(self, entry) -> bool:
        core = self.core
        degradation = core.degradation
        for verifier in entry.verifiers:
            if degradation.is_quarantined(
                core.verifier_fault_key(entry, verifier)
            ):
                return True
        return False

    def _note_failure(self, entry, verifier) -> None:
        core = self.core
        newly = core.degradation.note_verifier_failure(
            core.verifier_fault_key(entry, verifier)
        )
        if newly:
            core.emit("quarantine", "added", key=entry.key)

    def _record(self, stage: str, outcome: str, elapsed_ms: float) -> None:
        """One :class:`StageRecorder` cell update, sans StageEvent."""
        cells = self.recorder.cells
        cell = cells.get((stage, outcome))
        if cell is None:
            cell = cells[(stage, outcome)] = StageCell()
        cell.count += 1
        cell.elapsed_ms += elapsed_ms
