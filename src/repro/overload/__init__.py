"""Overload robustness: deadlines, admission control, hedging, health.

The paper's QoS property states targets like "access time < .25
seconds" (§3); A12–A14 made individual failures survivable, but under
the ROADMAP's "millions of users" north star the dominant failure mode
is *overload* — every component healthy, yet queues growing without
bound and p99 exploding.  This package turns the QoS promise into
enforcement machinery, all off by default behind
:class:`~repro.cache.policies.OverloadPolicy`:

* :class:`DeadlineBudget` (:mod:`repro.overload.budget`) — an absolute
  virtual-time deadline carried in the read context and consulted at
  every expensive seam; expiry routes through the existing A12
  degradation ladder (bounded serve-stale) before surfacing as
  :class:`~repro.errors.DeadlineExceededError`.
* :class:`AdmissionController` (:mod:`repro.overload.admission`) — a
  token-bucket + queue-depth gate with CoDel-style sojourn shedding,
  sacrificing the lowest :func:`priority_class` first so goodput stays
  flat past saturation instead of metastably collapsing.
* :class:`HealthTracker` (:mod:`repro.overload.health`) — per-shard
  EWMA latency and error counters fed from the instrumentation bus,
  marking gray-failing shards for hedging and hard-failing shards for
  placement failover.
* :func:`hedged_iterate` (:mod:`repro.overload.hedge`) — the hedged
  cross-shard read combinator: after a p95-based delay a backup read
  runs on the replica shard and the loser is cancelled.
* :class:`OverloadGate` (:mod:`repro.overload.gate`) — the per-cache
  facade the pipeline consults: builds budgets, admits or sheds reads,
  and tracks the decisions.
"""

from __future__ import annotations

from repro.overload.admission import (
    PRIORITY_BULK,
    PRIORITY_CRITICAL,
    PRIORITY_QOS,
    AdmissionController,
    AdmissionDecision,
    priority_class,
)
from repro.overload.budget import DeadlineBudget
from repro.overload.gate import OverloadGate
from repro.overload.health import HealthTracker, ShardHealth
from repro.overload.hedge import hedged_iterate

__all__ = [
    "DeadlineBudget",
    "AdmissionController",
    "AdmissionDecision",
    "priority_class",
    "PRIORITY_CRITICAL",
    "PRIORITY_QOS",
    "PRIORITY_BULK",
    "HealthTracker",
    "ShardHealth",
    "hedged_iterate",
    "OverloadGate",
]
