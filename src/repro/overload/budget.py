"""End-to-end deadline budgets charged against the virtual clock.

A :class:`DeadlineBudget` is created when a read enters the pipeline
and rides the read context through every stage.  It holds an *absolute*
virtual-time deadline, so any work charged to the clock anywhere on the
read path — fetch latency, chain execution, verifier runs, retry
backoff, L2 promotion probes, shard hops, single-flight follower waits
— counts against it automatically; stages only need to *consult* the
budget at the seams where giving up early is cheaper than finishing
late.  The paper's QoS property ("access time < .25 seconds", §3)
supplies the per-document target; documents without one fall back to
the policy's default.
"""

from __future__ import annotations

import typing

from repro.errors import DeadlineExceededError, WorkloadError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.clock import VirtualClock

__all__ = ["DeadlineBudget"]


class DeadlineBudget:
    """An absolute virtual-time deadline for one read.

    Parameters
    ----------
    clock:
        The run's virtual clock; :attr:`remaining_ms` and
        :attr:`expired` read it directly, so *every* charge on the read
        path draws the budget down without explicit bookkeeping.
    budget_ms:
        Total end-to-end allowance, measured from ``started_ms``.
        Must be positive (``inf`` is allowed and never expires — the
        ``AlwaysAvailableProperty`` case).
    started_ms:
        When the allowance began.  ``None`` (the default) means
        construction time; ``read_many`` batches pass their enqueue
        instant so queueing delay counts against the deadline too.
        May not lie in the future.
    """

    __slots__ = ("clock", "budget_ms", "started_ms", "deadline_ms")

    def __init__(
        self,
        clock: "VirtualClock",
        budget_ms: float,
        started_ms: float | None = None,
    ) -> None:
        if budget_ms <= 0:
            raise WorkloadError(
                f"deadline budget must be positive: {budget_ms}"
            )
        if started_ms is not None and started_ms > clock.now_ms:
            raise WorkloadError(
                f"deadline budget cannot start in the future: {started_ms}"
            )
        self.clock = clock
        self.budget_ms = budget_ms
        self.started_ms = clock.now_ms if started_ms is None else started_ms
        self.deadline_ms = self.started_ms + budget_ms

    @property
    def remaining_ms(self) -> float:
        """Virtual milliseconds left before the deadline (≥ 0)."""
        return max(0.0, self.deadline_ms - self.clock.now_ms)

    @property
    def expired(self) -> bool:
        """True once the clock has reached or passed the deadline."""
        return self.clock.now_ms >= self.deadline_ms

    @property
    def elapsed_ms(self) -> float:
        """Virtual milliseconds consumed since the budget started."""
        return self.clock.now_ms - self.started_ms

    def check(self, site: str) -> None:
        """Raise :class:`DeadlineExceededError` if the deadline passed.

        ``site`` names the seam performing the check, so the error (and
        the degradation ladder it lands in) can say *where* the budget
        ran out.
        """
        if self.expired:
            raise DeadlineExceededError(
                f"deadline budget of {self.budget_ms:.1f}ms exhausted at "
                f"the {site} seam ({self.elapsed_ms:.1f}ms elapsed)"
            )

    def exceeded(self, site: str) -> DeadlineExceededError:
        """Build (without raising) the typed error for this budget."""
        return DeadlineExceededError(
            f"deadline budget of {self.budget_ms:.1f}ms exhausted at "
            f"the {site} seam ({self.elapsed_ms:.1f}ms elapsed)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeadlineBudget(budget_ms={self.budget_ms!r}, "
            f"remaining_ms={self.remaining_ms!r})"
        )
