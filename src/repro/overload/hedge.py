"""Hedged reads: a backup on the replica shard, loser cancelled.

A hedge only pays off on the *miss* path — a hit never reaches the
fetch seam, so the combinator wraps the primary shard's pipeline
generator and does nothing until the primary suspends at
:data:`~repro.sim.scheduler.FETCH_SEAM`, the yield point immediately
before the expensive fetch.  There it charges the hedge delay (the
healthy fleet's p95, clamped by policy — hedge sooner and you double
load for nothing, later and you save nothing), then runs the backup
read on the replica shard to completion:

* backup succeeds → it wins; the primary generator is ``close()``d.
  Cancellation rides the pipeline's normal teardown: ``GeneratorExit``
  reaches ``ReadPipeline._iterate``'s ``BaseException`` handler, which
  closes any single-flight the primary was leading as *failed*, so
  followers are promoted rather than stranded.
* backup fails (any cache error) → the primary resumes exactly where
  it paused; the hedge cost is only the charged delay.

The combinator is a generator that forwards every other suspension
(verifier seams, single-flight waits) to whichever scheduler is
driving it, so the same code serves ``CacheCluster.read`` (driven
sequentially) and ``read_many`` (driven by the deterministic
``AsyncScheduler``).  Everything is charged to one global virtual
clock, which keeps hedge outcomes seed-deterministic.
"""

from __future__ import annotations

import typing

from repro.errors import CacheError
from repro.sim.scheduler import FETCH_SEAM

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from typing import Callable, Generator

    from repro.sim.clock import VirtualClock

__all__ = ["hedged_iterate"]


def hedged_iterate(
    primary: "Generator",
    backup_call: "Callable[[], object]",
    *,
    clock: "VirtualClock",
    delay_ms: float,
    on_outcome: "Callable[[str], None] | None" = None,
):
    """Wrap *primary* (a pipeline generator) with a fetch-seam hedge.

    ``backup_call`` runs the replica read synchronously and returns its
    outcome (or raises a :class:`~repro.errors.CacheError`).
    ``on_outcome`` receives ``"launched"`` / ``"won"`` / ``"lost"`` for
    instrumentation.  At most one hedge fires per read.
    """

    def note(outcome: str) -> None:
        if on_outcome is not None:
            on_outcome(outcome)

    hedged = False
    try:
        step = next(primary)
    except StopIteration as stop:
        return stop.value
    while True:
        if (
            not hedged
            and step is not None
            and step.flight is None
            and step.seam == FETCH_SEAM.seam
        ):
            hedged = True
            if delay_ms > 0.0:
                clock.charge(delay_ms)
            note("launched")
            try:
                outcome = backup_call()
            except CacheError:
                outcome = None
            if outcome is not None:
                note("won")
                primary.close()
                return outcome
            note("lost")
            try:
                step = primary.send(None)
            except StopIteration as stop:
                return stop.value
            continue
        payload = yield step
        try:
            step = primary.send(payload)
        except StopIteration as stop:
            return stop.value
