"""Admission control: token bucket + CoDel-style sojourn shedding.

The controller sits *in front of* the read pipeline.  Every read asks
for admission before any fetch or chain work happens; past saturation
the controller sheds the lowest priority class first, so the reads that
are admitted finish inside their deadlines — goodput stays flat instead
of metastably collapsing when every queued read times out together.

Three priority classes, derived from the paper's QoS property:

* :data:`PRIORITY_CRITICAL` — the chain carries a pinning QoS property
  (§5's "always available"); never shed.
* :data:`PRIORITY_QOS` — the chain carries a finite access-time target;
  shed only under sustained overload (double the sojourn threshold).
* :data:`PRIORITY_BULK` — no QoS promise at all; first to go.

Two signals gate a read:

* **tokens** — a bucket refilled from the *virtual* clock at
  ``rate_per_s`` with capacity ``burst``; the bucket may overdraw (the
  overdraft models queue depth) down to ``-queue_limit``, past which
  non-critical reads are shed outright.
* **sojourn** — how long the read has already waited between enqueue
  (batch start) and admission, CoDel's insight that queue *residence
  time*, not length, is the robust overload signal.  With the bucket
  empty, a bulk read is shed once its sojourn passes
  ``sojourn_threshold_ms`` and a QoS read at twice that.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.properties.qos import QoSProperty
from repro.streams.chain import read_chain_properties

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.clock import VirtualClock

__all__ = [
    "PRIORITY_CRITICAL",
    "PRIORITY_QOS",
    "PRIORITY_BULK",
    "PRIORITY_NAMES",
    "priority_class",
    "AdmissionDecision",
    "AdmissionController",
]

#: Highest class: a property on the chain pins the entry ("always
#: available"); these reads are never shed.
PRIORITY_CRITICAL = 0
#: Middle class: a finite QoS access-time target is attached.
PRIORITY_QOS = 1
#: Lowest class: no QoS promise; first sacrificed under overload.
PRIORITY_BULK = 2

PRIORITY_NAMES = ("critical", "qos", "bulk")


def priority_class(reference) -> int:
    """Derive a read's priority class from its property chain."""
    best = PRIORITY_BULK
    for prop in read_chain_properties(reference):
        if prop.requests_pinning():
            return PRIORITY_CRITICAL
        if (
            isinstance(prop, QoSProperty)
            and prop.max_access_time_ms != float("inf")
        ):
            best = min(best, PRIORITY_QOS)
    return best


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """One admission verdict, with the signals that produced it."""

    admitted: bool
    priority: int
    sojourn_ms: float
    queue_depth: float
    #: ``None`` when admitted; otherwise ``"queue-full"`` or
    #: ``"sojourn"`` — which gate shed the read.
    reason: str | None = None


class AdmissionController:
    """Token-bucket + sojourn admission gate over the virtual clock."""

    def __init__(
        self,
        clock: "VirtualClock",
        *,
        rate_per_s: float = 200.0,
        burst: float = 16.0,
        queue_limit: float = 32.0,
        sojourn_threshold_ms: float = 100.0,
    ) -> None:
        if rate_per_s <= 0:
            raise WorkloadError(f"rate_per_s must be positive: {rate_per_s}")
        if burst < 1:
            raise WorkloadError(f"burst must be >= 1: {burst}")
        if queue_limit < 0:
            raise WorkloadError(
                f"queue_limit must be non-negative: {queue_limit}"
            )
        if sojourn_threshold_ms < 0:
            raise WorkloadError(
                "sojourn_threshold_ms must be non-negative: "
                f"{sojourn_threshold_ms}"
            )
        self.clock = clock
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.queue_limit = queue_limit
        self.sojourn_threshold_ms = sojourn_threshold_ms
        self._tokens = burst
        self._refilled_ms = clock.now_ms

    def _refill(self, now_ms: float) -> None:
        elapsed_ms = now_ms - self._refilled_ms
        if elapsed_ms > 0:
            self._tokens = min(
                self.burst,
                self._tokens + elapsed_ms * (self.rate_per_s / 1_000.0),
            )
            self._refilled_ms = now_ms

    @property
    def tokens(self) -> float:
        """Current bucket level (negative = overdraft = queue depth)."""
        self._refill(self.clock.now_ms)
        return self._tokens

    def admit(
        self, priority: int, enqueued_ms: float | None = None
    ) -> AdmissionDecision:
        """Decide one read.  Never raises; the caller sheds on refusal.

        ``enqueued_ms`` is when the read entered the system (a batch's
        start instant for ``read_many``); the gap to *now* is its
        sojourn.  ``None`` means it just arrived (sojourn 0).
        """
        now = self.clock.now_ms
        self._refill(now)
        sojourn = 0.0 if enqueued_ms is None else max(0.0, now - enqueued_ms)
        depth = max(0.0, -self._tokens)
        if priority != PRIORITY_CRITICAL:
            if depth >= self.queue_limit:
                return AdmissionDecision(
                    False, priority, sojourn, depth, "queue-full"
                )
            threshold = self.sojourn_threshold_ms * (
                2.0 if priority == PRIORITY_QOS else 1.0
            )
            if self._tokens < 1.0 and sojourn >= threshold:
                return AdmissionDecision(
                    False, priority, sojourn, depth, "sojourn"
                )
        self._tokens -= 1.0
        return AdmissionDecision(True, priority, sojourn, depth)
