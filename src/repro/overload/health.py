"""Per-shard health: EWMA latency, error streaks, gray detection.

A gray-failing shard is the nastiest overload case: it answers — so
nothing trips a breaker — but slowly, so every read routed to it blows
its deadline.  The tracker watches each shard's instrumentation bus
(terminal ``read`` events for latency, ``fetch failed`` events for
errors) and classifies shards three ways:

* **healthy** — the default;
* **gray** — EWMA *fetch-path* latency at least
  ``gray_latency_factor`` times the healthiest peer's, with at least
  ``min_samples`` fetch-path observations: the hedge trigger.  Only
  reads that actually went through a provider fetch feed the latency
  signals — hits (and signature-only adoptions) are local and fast on
  *every* shard, gray or not, so mixing them in would both mask a
  slow shard behind its fast hits and make a healthy shard's normal
  miss tail look gray next to a peer serving only hits;
* **unhealthy** — ``error_threshold`` consecutive failed reads: the
  placement-failover trigger.  ``recovery_successes`` consecutive
  clean reads restore the shard (and its placement stickiness).

The tracker also keeps a bounded ring of recent latencies per shard so
the hedge delay can be set from the healthy fleet's p95 — hedging too
early doubles load for nothing, too late saves nothing.
"""

from __future__ import annotations

import typing
from collections import deque
from dataclasses import dataclass, field

from repro.errors import WorkloadError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.instrumentation import StageEvent

__all__ = ["ShardHealth", "HealthTracker"]


@dataclass
class ShardHealth:
    """Rolling health state for one shard.

    ``ewma_ms`` and the ``samples`` ring carry *fetch-path* latencies
    only (reads that went through a provider fetch); ``reads`` counts
    every completed read and ``fetches`` the subset that fed latency.
    """

    name: str
    ewma_ms: float | None = None
    samples: "deque[float]" = field(default_factory=lambda: deque(maxlen=128))
    reads: int = 0
    fetches: int = 0
    errors: int = 0
    consecutive_errors: int = 0
    consecutive_successes: int = 0
    #: True while placement routes around this shard.
    failed_over: bool = False

    def p95_ms(self) -> float | None:
        """Nearest-rank p95 over the recent fetch-latency ring."""
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, round(0.95 * len(ordered)) - 1))
        return ordered[rank]


class HealthTracker:
    """Classifies shards as healthy / gray / unhealthy from bus events."""

    def __init__(
        self,
        *,
        ewma_alpha: float = 0.2,
        gray_latency_factor: float = 3.0,
        min_samples: int = 8,
        error_threshold: int = 3,
        recovery_successes: int = 3,
        window: int = 128,
    ) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise WorkloadError(f"ewma_alpha must be in (0, 1]: {ewma_alpha}")
        if gray_latency_factor <= 1.0:
            raise WorkloadError(
                f"gray_latency_factor must be > 1: {gray_latency_factor}"
            )
        if min_samples < 1 or error_threshold < 1 or recovery_successes < 1:
            raise WorkloadError(
                "min_samples, error_threshold and recovery_successes "
                "must be >= 1"
            )
        if window < 2:
            raise WorkloadError(f"window must be >= 2: {window}")
        self.ewma_alpha = ewma_alpha
        self.gray_latency_factor = gray_latency_factor
        self.min_samples = min_samples
        self.error_threshold = error_threshold
        self.recovery_successes = recovery_successes
        self.window = window
        self._shards: dict[str, ShardHealth] = {}
        self.failovers = 0
        self.recoveries = 0

    # -- registration / feeds ------------------------------------------------

    def track(self, name: str) -> ShardHealth:
        """Register *name* (idempotent) and return its health record."""
        health = self._shards.get(name)
        if health is None:
            health = ShardHealth(name=name)
            health.samples = deque(maxlen=self.window)
            self._shards[name] = health
        return health

    def forget(self, name: str) -> None:
        """Drop a departed shard's state."""
        self._shards.pop(name, None)

    def observe_read(
        self, name: str, elapsed_ms: float, *, fetched: bool = True
    ) -> None:
        """Feed one completed read; latency counts only when *fetched*."""
        health = self.track(name)
        health.reads += 1
        if fetched:
            health.fetches += 1
            health.samples.append(elapsed_ms)
            if health.ewma_ms is None:
                health.ewma_ms = elapsed_ms
            else:
                health.ewma_ms += self.ewma_alpha * (
                    elapsed_ms - health.ewma_ms
                )
        health.consecutive_errors = 0
        if health.failed_over:
            health.consecutive_successes += 1
            if health.consecutive_successes >= self.recovery_successes:
                health.failed_over = False
                health.consecutive_successes = 0
                self.recoveries += 1

    def observe_error(self, name: str) -> None:
        """Feed one failed read (fetch error, degradation raise)."""
        health = self.track(name)
        health.errors += 1
        health.consecutive_errors += 1
        health.consecutive_successes = 0
        if (
            not health.failed_over
            and health.consecutive_errors >= self.error_threshold
        ):
            health.failed_over = True
            self.failovers += 1

    #: Terminal read dispositions answered without a provider fetch —
    #: local work that is fast on every shard, excluded from the
    #: latency signals (see the module docstring).
    _FAST_PATHS = frozenset({
        "hit", "revalidated", "miss-adopted", "miss-memoized",
        "miss-promoted",
    })

    def on_event(self, name: str, event: "StageEvent") -> None:
        """Instrumentation-bus subscriber seam for one shard."""
        if event.stage == "read":
            self.observe_read(
                name,
                event.elapsed_ms,
                fetched=event.outcome not in self._FAST_PATHS,
            )
        elif event.stage == "fetch" and event.outcome == "failed":
            self.observe_error(name)

    # -- classification ------------------------------------------------------

    def _healthy_floor_ms(self, excluding: str) -> float | None:
        """Lowest peer fetch EWMA with enough samples (the baseline)."""
        floor: float | None = None
        for name, health in self._shards.items():
            if name == excluding or health.ewma_ms is None:
                continue
            if health.fetches < self.min_samples:
                continue
            if floor is None or health.ewma_ms < floor:
                floor = health.ewma_ms
        return floor

    def is_gray(self, name: str) -> bool:
        """True when *name*'s fetches run far slower than a peer's.

        Both sides of the comparison are fetch-path EWMAs, so the
        classification is like-for-like: a shard serving mostly hits
        neither hides a slow fetch path nor makes a peer's ordinary
        miss tail look gray.  Because hedged (cancelled) fetches feed
        no samples, the EWMA freezes while a shard is gray — the
        cluster's probe-refills supply the fresh samples that let a
        recovered shard's EWMA decay back under the threshold.
        """
        health = self._shards.get(name)
        if health is None or health.ewma_ms is None:
            return False
        if health.fetches < self.min_samples:
            return False
        floor = self._healthy_floor_ms(excluding=name)
        if floor is None or floor <= 0.0:
            return False
        return health.ewma_ms >= self.gray_latency_factor * floor

    def is_unhealthy(self, name: str) -> bool:
        """True while placement should route around *name*."""
        health = self._shards.get(name)
        return health is not None and health.failed_over

    def p95_healthy_ms(self, excluding: str | None = None) -> float | None:
        """Fetch-path p95 pooled over the non-gray, non-failed shards."""
        pooled: list[float] = []
        for name, health in self._shards.items():
            if name == excluding or health.failed_over:
                continue
            if self.is_gray(name):
                continue
            pooled.extend(health.samples)
        if not pooled:
            return None
        pooled.sort()
        rank = max(0, min(len(pooled) - 1, round(0.95 * len(pooled)) - 1))
        return pooled[rank]

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Per-shard health table for introspection (the doctor)."""
        table: dict[str, dict[str, object]] = {}
        for name, health in sorted(self._shards.items()):
            if health.failed_over:
                state = "unhealthy"
            elif self.is_gray(name):
                state = "gray"
            else:
                state = "healthy"
            table[name] = {
                "state": state,
                "reads": health.reads,
                "fetches": health.fetches,
                "errors": health.errors,
                "consecutive_errors": health.consecutive_errors,
                "ewma_ms": health.ewma_ms,
                "p95_ms": health.p95_ms(),
            }
        return table
