"""The per-cache overload facade the read pipeline consults.

One :class:`OverloadGate` is wired onto each cache core that carries an
:class:`~repro.cache.policies.OverloadPolicy`.  It owns the cache's
:class:`~repro.overload.admission.AdmissionController` and builds the
:class:`~repro.overload.budget.DeadlineBudget` for each read — from the
chain's QoS access-time target when one is attached (the paper's
"access time < .25 seconds" promise, §3), else the policy default.
"""

from __future__ import annotations

import typing

from repro.overload.admission import AdmissionController, priority_class
from repro.overload.budget import DeadlineBudget
from repro.properties.qos import QoSProperty
from repro.streams.chain import read_chain_properties

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.policies import OverloadPolicy
    from repro.overload.admission import AdmissionDecision
    from repro.sim.clock import VirtualClock

__all__ = ["OverloadGate"]


class OverloadGate:
    """Deadline + admission decisions for one cache."""

    def __init__(self, clock: "VirtualClock", policy: "OverloadPolicy") -> None:
        self.clock = clock
        self.policy = policy
        self.admission: AdmissionController | None = None
        if policy.shedding_enabled:
            self.admission = AdmissionController(
                clock,
                rate_per_s=policy.admission_rate_per_s,
                burst=policy.admission_burst,
                queue_limit=policy.queue_limit,
                sojourn_threshold_ms=policy.sojourn_threshold_ms,
            )

    def deadline_ms_for(self, reference) -> float | None:
        """The read's end-to-end allowance, or ``None`` for no deadline."""
        if not self.policy.deadlines_enabled:
            return None
        budget_ms = self.policy.default_deadline_ms
        if self.policy.deadline_from_qos:
            for prop in read_chain_properties(reference):
                if (
                    isinstance(prop, QoSProperty)
                    and prop.max_access_time_ms != float("inf")
                ):
                    budget_ms = min(budget_ms, prop.max_access_time_ms)
        return budget_ms

    def budget_for(
        self, reference, enqueued_ms: float | None = None
    ) -> DeadlineBudget | None:
        """Build the read's deadline budget (``None`` = deadlines off).

        ``enqueued_ms`` back-dates the allowance to the read's arrival
        instant so time already spent queueing counts against it.
        """
        budget_ms = self.deadline_ms_for(reference)
        if budget_ms is None:
            return None
        return DeadlineBudget(self.clock, budget_ms, started_ms=enqueued_ms)

    def admit(
        self, reference, enqueued_ms: float | None = None
    ) -> "AdmissionDecision | None":
        """Ask admission for one read; ``None`` when shedding is off."""
        if self.admission is None:
            return None
        return self.admission.admit(
            priority_class(reference), enqueued_ms=enqueued_ms
        )
