"""The cluster layer's opt-in configuration seam.

Mirrors the cache's policy idiom (:mod:`repro.cache.policies`): a
``runtime_checkable`` protocol plus a validating default.  A
:class:`~repro.cluster.coordinator.CacheCluster` built with
``cluster_policy=None`` wires N fully isolated shards — private memo
tables, private flight tables, no cross-shard traffic — which is both
the A17 baseline arm and the guarantee that single-cache golden digests
are untouched (a one-shard cluster with no policy is byte-identical to
a plain :class:`~repro.cache.manager.DocumentCache`).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.errors import CacheError

__all__ = ["ClusterPolicy", "DefaultClusterPolicy"]


@runtime_checkable
class ClusterPolicy(Protocol):
    """What the shards of one cluster are allowed to share."""

    #: One :class:`~repro.cluster.memo_share.SharedTransformMemo` across
    #: every shard: a chain execution recorded by any shard answers
    #: every other shard's miss as a signature-only adopt, importing
    #: the output bytes over the shard link when necessary.
    share_memo: bool
    #: One :class:`~repro.sim.scheduler.FlightTable` across every
    #: shard: single-flight coalescing on the ``(source signature,
    #: chain fingerprint)`` memo plane spans shard boundaries, so a
    #: 32-way cross-shard stampede still runs one chain.
    share_flights: bool
    #: Capacity of the shared memo table; ``None`` scales the shard
    #: memo policy's capacity by the shard count.
    shared_memo_capacity: int | None


class DefaultClusterPolicy:
    """Everything shared — the configuration A17's treatment arm runs."""

    def __init__(
        self,
        share_memo: bool = True,
        share_flights: bool = True,
        shared_memo_capacity: int | None = None,
    ) -> None:
        if shared_memo_capacity is not None and shared_memo_capacity < 1:
            raise CacheError(
                "shared_memo_capacity must be >= 1: "
                f"{shared_memo_capacity}"
            )
        self.share_memo = share_memo
        self.share_flights = share_flights
        self.shared_memo_capacity = shared_memo_capacity
