"""The cluster layer: sharded multi-cache topology over one kernel.

The paper's notifier model (AFS-style callbacks from document servers,
§3) was designed for *many* caches; this package finally runs many.
:class:`~repro.cluster.coordinator.CacheCluster` owns N fully wired
:class:`~repro.cache.manager.DocumentCache` shards behind a pluggable
consistent-hash placement (:mod:`repro.cluster.placement`), shares the
transform-memo plane across them
(:mod:`repro.cluster.memo_share` — one shard's chain execution becomes
every shard's signature-only adopt), fans ``read_many`` batches across
shards on one deterministic scheduler with single-flight coalescing
spanning shard boundaries, and repairs topology changes (rebalance,
shard loss) by reusing the A13 anti-entropy resync.  Everything is
opt-in behind :class:`~repro.cluster.policy.ClusterPolicy`; a one-shard
cluster with no policy is byte-identical to a plain ``DocumentCache``.
"""

from repro.cluster.coordinator import CacheCluster
from repro.cluster.memo_share import SharedTransformMemo
from repro.cluster.placement import (
    HashRingPolicy,
    PlacementPolicy,
    PlacementRing,
    ReinforcedCounterPolicy,
)
from repro.cluster.policy import ClusterPolicy, DefaultClusterPolicy

__all__ = [
    "CacheCluster",
    "SharedTransformMemo",
    "PlacementRing",
    "PlacementPolicy",
    "HashRingPolicy",
    "ReinforcedCounterPolicy",
    "ClusterPolicy",
    "DefaultClusterPolicy",
]
