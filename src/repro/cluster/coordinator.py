"""The cluster coordinator: N cache shards behind one read/write API.

:class:`CacheCluster` owns N :class:`~repro.cache.manager.DocumentCache`
shards and routes every ``(document, user)`` entry key to one of them
through a pluggable :class:`~repro.cluster.placement.PlacementPolicy`
(consistent hashing by default).  The shards are real, fully wired
caches — each with its own content store, entry table, projections and
(optionally) recovery manager — built through the manager's injection
seams rather than a parallel construction path:

* one :class:`~repro.cache.notifiers.InvalidationBus` is shared, each
  shard registering its own cache id, so the paper's notifier model
  (AFS-style callbacks to *many* caches) finally has many caches;
* with a :class:`~repro.cluster.policy.ClusterPolicy`, one
  :class:`~repro.cluster.memo_share.SharedTransformMemo` is installed
  as every shard's memo (cross-shard memo sharing) and one
  :class:`~repro.sim.scheduler.FlightTable` as every shard's flight
  table (single-flight coalescing spanning shard boundaries);
* :meth:`read_many` fans a batch across shards on *one* deterministic
  :class:`~repro.sim.scheduler.AsyncScheduler`, so cross-shard batches
  interleave and coalesce exactly like same-shard ones;
* ring rebalancing and shard loss reuse the A13 anti-entropy resync —
  :meth:`~repro.cache.recovery.ConsistencyRecoveryManager.resync` with
  a *doomed* predicate condemning entries whose keys no longer place on
  the shard — instead of a second repair path.

With ``cluster_policy=None`` the shards are fully isolated (private
memos, private flights): the A17 baseline arm, and — at one shard —
byte-identical to a plain ``DocumentCache``.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.cache.consistency import InvalidationReason
from repro.cache.entry import EntryKey
from repro.cache.manager import CacheReadOutcome, DocumentCache
from repro.cache.memo import MemoStats
from repro.cache.notifiers import InvalidationBus
from repro.cache.stats import CacheStats
from repro.cluster.memo_share import SharedTransformMemo
from repro.cluster.placement import HashRingPolicy, PlacementPolicy
from repro.cluster.policy import ClusterPolicy
from repro.errors import CacheError
from repro.sim.scheduler import AsyncScheduler, FlightTable
from repro.sim.topology import ClusterTopology

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.entry import CacheEntry
    from repro.cache.instrumentation import ConcurrencyStats
    from repro.cache.policies import (
        ConcurrencyPolicy,
        MemoPolicy,
        RecoveryPolicy,
    )
    from repro.ids import DocumentId, UserId
    from repro.placeless.kernel import PlacelessKernel
    from repro.placeless.reference import DocumentReference

__all__ = ["CacheCluster"]


class CacheCluster:
    """A consistent-hash cluster of document caches.

    Parameters
    ----------
    kernel, shard_count, capacity_bytes:
        The shared Placeless kernel, how many shards to build, and the
        physical content-store capacity *per shard*.
    cluster_policy:
        What the shards may share (:class:`~repro.cluster.policy
        .ClusterPolicy`); ``None`` builds fully isolated shards.
        ``share_memo`` requires a ``memo_policy``.
    placement_policy:
        The ``entry key → shard`` decision; defaults to
        :class:`~repro.cluster.placement.HashRingPolicy` over the
        initial shards.  A policy supplied with shards already
        registered is used as-is; missing shard names are added.
    topology:
        Per-shard link costs (:class:`~repro.sim.topology
        .ClusterTopology`); a default all-pairs ``shard-to-shard``
        topology is built when omitted.  Installed into the kernel's
        latency model either way so cross-shard transfers charge the
        virtual clock.
    memo_policy, concurrency_policy, recovery_policy:
        Forwarded to every shard.  A recovery policy is required for
        :meth:`rebalance`, :meth:`add_shard` and :meth:`lose_shard`
        (topology repair *is* an anti-entropy resync).
    name:
        Prefix for shard names (``{name}-0`` … ``{name}-{N-1}``).
    shard_kwargs:
        Extra keyword arguments forwarded verbatim to every
        ``DocumentCache`` (write mode, feature flags, …).  Must not
        contain stateful per-cache objects — every shard receives the
        same mapping.
    """

    def __init__(
        self,
        kernel: "PlacelessKernel",
        shard_count: int,
        capacity_bytes: int,
        *,
        cluster_policy: ClusterPolicy | None = None,
        placement_policy: PlacementPolicy | None = None,
        topology: ClusterTopology | None = None,
        memo_policy: "MemoPolicy | None" = None,
        concurrency_policy: "ConcurrencyPolicy | None" = None,
        recovery_policy: "RecoveryPolicy | None" = None,
        name: str = "cluster",
        shard_kwargs: dict | None = None,
    ) -> None:
        if shard_count < 1:
            raise CacheError(f"shard_count must be >= 1: {shard_count}")
        if (
            cluster_policy is not None
            and cluster_policy.share_memo
            and memo_policy is None
        ):
            raise CacheError(
                "cluster_policy.share_memo requires a memo_policy"
            )
        self.kernel = kernel
        self.ctx = kernel.ctx
        self.name = name
        self.cluster_policy = cluster_policy
        self.capacity_bytes = capacity_bytes
        self._memo_policy = memo_policy
        self._concurrency = concurrency_policy
        self._recovery_policy = recovery_policy
        self._shard_kwargs = dict(shard_kwargs or {})
        self._next_index = 0
        names = [self._next_name() for _ in range(shard_count)]
        self._placement = placement_policy or HashRingPolicy(names)
        for shard_name in names:
            if shard_name not in self._placement.shards():
                self._placement.add_shard(shard_name)
        self.topology = topology or ClusterTopology(shards=list(names))
        for shard_name in names:
            if shard_name not in self.topology.shards:
                self.topology.add_shard(shard_name)
        self.topology.install(self.ctx.latency)
        self.bus = InvalidationBus(self.ctx)
        self.shared_memo: SharedTransformMemo | None = None
        self.shared_flights: FlightTable | None = None
        if cluster_policy is not None and cluster_policy.share_memo:
            assert memo_policy is not None
            capacity = (
                cluster_policy.shared_memo_capacity
                if cluster_policy.shared_memo_capacity is not None
                else memo_policy.capacity * shard_count
            )
            self.shared_memo = SharedTransformMemo(
                capacity, topology=self.topology
            )
        if cluster_policy is not None and cluster_policy.share_flights:
            self.shared_flights = FlightTable()
        self._shards: dict[str, DocumentCache] = {}
        for shard_name in names:
            self._build_shard(shard_name)
        #: Cluster-level invalidation bookkeeping (A17's fan-out metric).
        self.invalidations = 0
        self.invalidation_shard_touches = 0
        #: Entries repaired by every :meth:`rebalance` so far, including
        #: the passes :meth:`add_shard`/:meth:`lose_shard` run
        #: internally (A17's topology-churn metric).
        self.rebalance_repairs = 0

    # -- construction ---------------------------------------------------------

    def _next_name(self) -> str:
        shard_name = f"{self.name}-{self._next_index}"
        self._next_index += 1
        return shard_name

    def _build_shard(self, shard_name: str) -> DocumentCache:
        shard = DocumentCache(
            self.kernel,
            capacity_bytes=self.capacity_bytes,
            bus=self.bus,
            name=shard_name,
            memo_policy=self._memo_policy,
            concurrency_policy=self._concurrency,
            recovery_policy=self._recovery_policy,
            memo=self.shared_memo,
            flights=self.shared_flights,
            **self._shard_kwargs,
        )
        if self.shared_memo is not None:
            self.shared_memo.attach(shard_name, shard.core)
        self._shards[shard_name] = shard
        return shard

    # -- introspection --------------------------------------------------------

    @property
    def shards(self) -> dict[str, DocumentCache]:
        """Live shards by name (insertion order)."""
        return dict(self._shards)

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_for(self, reference: "DocumentReference") -> DocumentCache:
        """The shard a reference's entry key currently places on."""
        return self._shards[
            self._placement.place(EntryKey.for_reference(reference))
        ]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards.values())

    def describe(self) -> str:
        """One line per shard plus the placement summary."""
        lines = [
            f"{self.name}: {len(self._shards)} shards, "
            f"{len(self)} entries, policy="
            f"{type(self._placement).__name__}"
        ]
        for shard_name, shard in self._shards.items():
            lines.append(
                f"  {shard_name}: {len(shard)} entries, "
                f"{shard.used_bytes}/{shard.capacity_bytes} bytes"
            )
        return "\n".join(lines)

    # -- aggregated statistics ------------------------------------------------

    @staticmethod
    def _sum_counters(total, parts) -> None:
        """Sum dataclass counter fields of *parts* into *total*."""
        for part in parts:
            for field in dataclasses.fields(part):
                setattr(
                    total, field.name,
                    getattr(total, field.name) + getattr(part, field.name),
                )

    def aggregate_stats(self) -> CacheStats:
        """Numeric cache counters summed across every live shard."""
        total = CacheStats()
        self._sum_counters(
            total, (shard.stats for shard in self._shards.values())
        )
        return total

    @property
    def hit_ratio(self) -> float:
        """Hits over reads, cluster-wide (0.0 when nothing was read)."""
        stats = self.aggregate_stats()
        reads = stats.hits + stats.misses
        return stats.hits / reads if reads else 0.0

    @property
    def memo_stats(self) -> MemoStats | None:
        """Memo counters summed across shards (``None`` without memo)."""
        per_shard = [
            shard.memo_stats
            for shard in self._shards.values()
            if shard.memo_stats is not None
        ]
        if not per_shard:
            return None
        total = MemoStats()
        self._sum_counters(total, per_shard)
        return total

    @property
    def concurrency_stats(self) -> "ConcurrencyStats | None":
        """Single-flight counters summed across shards."""
        per_shard = [
            shard.concurrency_stats
            for shard in self._shards.values()
            if shard.concurrency_stats is not None
        ]
        if not per_shard:
            return None
        total = type(per_shard[0])()
        self._sum_counters(total, per_shard)
        return total

    # -- read/write routing ---------------------------------------------------

    def _route(self, reference: "DocumentReference") -> DocumentCache:
        key = EntryKey.for_reference(reference)
        self._placement.note_access(key)
        return self._shards[self._placement.place(key)]

    def read(self, reference: "DocumentReference") -> CacheReadOutcome:
        """Read through the owning shard."""
        return self._route(reference).read(reference)

    def write(self, reference: "DocumentReference", content: bytes) -> float:
        """Write through the owning shard; returns elapsed virtual ms."""
        return self._route(reference).write(reference, content)

    def read_many(
        self,
        references: typing.Sequence["DocumentReference"],
        *,
        return_exceptions: bool = False,
    ) -> list[CacheReadOutcome]:
        """Read a batch across shards; outcomes in submission order.

        With a ``concurrency_policy`` the whole batch — regardless of
        how many shards it touches — runs on one deterministic
        :class:`~repro.sim.scheduler.AsyncScheduler`: each reference's
        pipeline generator comes from its owning shard via
        :meth:`~repro.cache.manager.DocumentCache.iterate_read`, and
        with shared flights a miss on shard A parks followers from
        shard B on the same leader.  Without one, the batch degenerates
        to sequential routed reads (the byte-equivalence baseline).
        """
        if self._concurrency is None:
            if not return_exceptions:
                return [self.read(reference) for reference in references]
            outcomes: list = []
            for reference in references:
                try:
                    outcomes.append(self.read(reference))
                except Exception as error:
                    outcomes.append(error)
            return outcomes
        scheduler = AsyncScheduler()
        touched: dict[str, DocumentCache] = {}
        generators = []
        for reference in references:
            shard = self._route(reference)
            touched[shard.cache_id] = shard
            generators.append(
                shard.iterate_read(reference, scheduler=scheduler)
            )
        results = scheduler.run(
            generators, return_exceptions=return_exceptions
        )
        for shard in touched.values():
            shard.drain_prefetch()
        return results

    def flush_all(self) -> int:
        """Flush buffered write-backs on every shard."""
        return sum(shard.flush_all() for shard in self._shards.values())

    # -- invalidation ---------------------------------------------------------

    def invalidate_document(
        self, document_id: "DocumentId", user_id: "UserId | None" = None
    ) -> int:
        """Drop a document's entries on every shard; returns the count.

        Explicit invalidation cannot trust placement — older entries
        may predate a rebalance — so it fans out to every shard.  The
        fan-out bookkeeping (how many shards actually held entries)
        feeds A17's invalidation fan-out metric.
        """
        dropped_total = 0
        shards_touched = 0
        for shard in self._shards.values():
            dropped = shard.invalidate_document(document_id, user_id)
            dropped_total += dropped
            if dropped:
                shards_touched += 1
        self.invalidations += 1
        self.invalidation_shard_touches += shards_touched
        return dropped_total

    def clear(self) -> None:
        """Drop every entry on every shard."""
        for shard in self._shards.values():
            shard.clear()

    # -- topology changes: rebalance-as-resync --------------------------------

    def _misplacement(
        self, shard_name: str
    ) -> "typing.Callable[[CacheEntry], InvalidationReason | None]":
        """Doom predicate: entries whose key no longer places here."""

        def doomed(entry: "CacheEntry") -> InvalidationReason | None:
            if self._placement.place(entry.key) != shard_name:
                return InvalidationReason.EXPLICIT
            return None

        return doomed

    def rebalance(self) -> int:
        """Anti-entropy resync of every shard against the current ring.

        Each shard's :class:`~repro.cache.recovery
        .ConsistencyRecoveryManager` runs its normal resync with a
        doom predicate condemning re-placed entries — the A13 repair
        path, reused verbatim for topology repair.  Returns total
        entries repaired (dropped) across the cluster.
        """
        repairs = 0
        for shard_name, shard in self._shards.items():
            if shard.recovery is None:
                raise CacheError(
                    "rebalance reuses anti-entropy resync: every shard "
                    "needs a recovery_policy"
                )
            repairs += shard.recovery.resync(
                doomed=self._misplacement(shard_name)
            )
        self.rebalance_repairs += repairs
        return repairs

    def add_shard(self) -> str:
        """Grow the cluster by one shard and rebalance onto it.

        Returns the new shard's name.  Consistent hashing moves only
        ≈ ``K / (N+1)`` keys; the survivors' re-placed entries are
        dropped through the reused resync, and — with cross-shard memo
        sharing — the new shard warms those keys as signature-only
        adoptions instead of cold chain executions.
        """
        shard_name = self._next_name()
        self._placement.add_shard(shard_name)
        self.topology.add_shard(shard_name)
        self._build_shard(shard_name)
        self.rebalance()
        return shard_name

    def lose_shard(self, shard_name: str) -> int:
        """Simulate one shard's failure; survivors repair via resync.

        The dead shard's volatile state vanishes (a crash), its bus
        registration and leases are torn down, and it leaves the ring
        — with the shared memo plane *detached first*, because the
        cluster-wide memo view outlives any one member (records whose
        bytes died with the shard self-heal at consult time).  The
        survivors then run the same rebalance-as-resync pass, after
        which the dead shard's keys place on them.  Returns the
        survivors' repair count.
        """
        try:
            shard = self._shards.pop(shard_name)
        except KeyError:
            raise CacheError(f"unknown shard: {shard_name!r}") from None
        self._placement.remove_shard(shard_name)
        self.topology.remove_shard(shard_name)
        if self.shared_memo is not None:
            self.shared_memo.detach(shard_name)
            # The dead process's view dies with it; the shared plane
            # must not be purged by this one member's crash.
            shard.core.memo = None
        shard.crash()
        if shard.recovery is not None:
            shard.recovery.stop()
        self.bus.unregister(shard.cache_id)
        return self.rebalance()

    def crash_shard(self, shard_name: str) -> None:
        """Crash one shard *in place*: volatile state vanishes, but the
        shard keeps its ring position and bus registration for
        :meth:`restart_shard` to recover — the rolling-restart shape,
        as opposed to :meth:`lose_shard`'s permanent departure.
        """
        try:
            shard = self._shards[shard_name]
        except KeyError:
            raise CacheError(f"unknown shard: {shard_name!r}") from None
        shard.crash()

    def restart_shard(self, shard_name: str) -> int:
        """Restart a :meth:`crash_shard`-crashed shard in place.

        Replays its write-back journal, re-grants its lease and — when
        the shard has a durable L2 tier — recovers the demotion
        catalog, so the shard comes back warm instead of empty.
        Returns the replayed dirty-write count.
        """
        try:
            shard = self._shards[shard_name]
        except KeyError:
            raise CacheError(f"unknown shard: {shard_name!r}") from None
        return shard.restart()
