"""The cluster coordinator: N cache shards behind one read/write API.

:class:`CacheCluster` owns N :class:`~repro.cache.manager.DocumentCache`
shards and routes every ``(document, user)`` entry key to one of them
through a pluggable :class:`~repro.cluster.placement.PlacementPolicy`
(consistent hashing by default).  The shards are real, fully wired
caches — each with its own content store, entry table, projections and
(optionally) recovery manager — built through the manager's injection
seams rather than a parallel construction path:

* one :class:`~repro.cache.notifiers.InvalidationBus` is shared, each
  shard registering its own cache id, so the paper's notifier model
  (AFS-style callbacks to *many* caches) finally has many caches;
* with a :class:`~repro.cluster.policy.ClusterPolicy`, one
  :class:`~repro.cluster.memo_share.SharedTransformMemo` is installed
  as every shard's memo (cross-shard memo sharing) and one
  :class:`~repro.sim.scheduler.FlightTable` as every shard's flight
  table (single-flight coalescing spanning shard boundaries);
* :meth:`read_many` fans a batch across shards on *one* deterministic
  :class:`~repro.sim.scheduler.AsyncScheduler`, so cross-shard batches
  interleave and coalesce exactly like same-shard ones;
* ring rebalancing and shard loss reuse the A13 anti-entropy resync —
  :meth:`~repro.cache.recovery.ConsistencyRecoveryManager.resync` with
  a *doomed* predicate condemning entries whose keys no longer place on
  the shard — instead of a second repair path.

With ``cluster_policy=None`` the shards are fully isolated (private
memos, private flights): the A17 baseline arm, and — at one shard —
byte-identical to a plain ``DocumentCache``.
"""

from __future__ import annotations

import dataclasses
import functools
import typing

from repro.cache.consistency import InvalidationReason
from repro.cache.entry import EntryKey
from repro.cache.instrumentation import OverloadStats
from repro.cache.manager import CacheReadOutcome, DocumentCache
from repro.cache.memo import MemoStats
from repro.cache.notifiers import InvalidationBus
from repro.cache.stats import CacheStats
from repro.cluster.memo_share import SharedTransformMemo
from repro.cluster.placement import HashRingPolicy, PlacementPolicy
from repro.cluster.policy import ClusterPolicy
from repro.errors import CacheError, DeadlineExceededError, OverloadShedError
from repro.overload.health import HealthTracker
from repro.overload.hedge import hedged_iterate
from repro.sim.scheduler import AsyncScheduler, FlightTable, InlineScheduler
from repro.sim.topology import ClusterTopology

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.entry import CacheEntry
    from repro.cache.instrumentation import ConcurrencyStats
    from repro.cache.policies import (
        ConcurrencyPolicy,
        MemoPolicy,
        OverloadPolicy,
        RecoveryPolicy,
    )
    from repro.ids import DocumentId, UserId
    from repro.placeless.kernel import PlacelessKernel
    from repro.placeless.reference import DocumentReference

__all__ = ["CacheCluster"]


class CacheCluster:
    """A consistent-hash cluster of document caches.

    Parameters
    ----------
    kernel, shard_count, capacity_bytes:
        The shared Placeless kernel, how many shards to build, and the
        physical content-store capacity *per shard*.
    cluster_policy:
        What the shards may share (:class:`~repro.cluster.policy
        .ClusterPolicy`); ``None`` builds fully isolated shards.
        ``share_memo`` requires a ``memo_policy``.
    placement_policy:
        The ``entry key → shard`` decision; defaults to
        :class:`~repro.cluster.placement.HashRingPolicy` over the
        initial shards.  A policy supplied with shards already
        registered is used as-is; missing shard names are added.
    topology:
        Per-shard link costs (:class:`~repro.sim.topology
        .ClusterTopology`); a default all-pairs ``shard-to-shard``
        topology is built when omitted.  Installed into the kernel's
        latency model either way so cross-shard transfers charge the
        virtual clock.
    memo_policy, concurrency_policy, recovery_policy:
        Forwarded to every shard.  A recovery policy is required for
        :meth:`rebalance`, :meth:`add_shard` and :meth:`lose_shard`
        (topology repair *is* an anti-entropy resync).
    overload_policy:
        Opt-in overload robustness (:class:`~repro.cache.policies
        .OverloadPolicy`), forwarded to every shard (deadline budgets +
        admission control per shard) and additionally activating the
        cluster-level machinery: a :class:`~repro.overload.health
        .HealthTracker` fed from every shard's instrumentation bus,
        hedged reads that launch a backup on the replica shard once a
        miss stalls at the fetch seam for the healthy fleet's p95
        (loser cancelled), and placement failover that routes around a
        shard with ``unhealthy_error_threshold`` consecutive failed
        reads — sending every fourth read through as a canary so
        ``recovery_successes`` clean responses restore stickiness.
        ``None`` (the default) keeps routing, reads and digests
        byte-identical to the pre-overload cluster.
    name:
        Prefix for shard names (``{name}-0`` … ``{name}-{N-1}``).
    shard_kwargs:
        Extra keyword arguments forwarded verbatim to every
        ``DocumentCache`` (write mode, feature flags, …).  Must not
        contain stateful per-cache objects — every shard receives the
        same mapping.
    """

    def __init__(
        self,
        kernel: "PlacelessKernel",
        shard_count: int,
        capacity_bytes: int,
        *,
        cluster_policy: ClusterPolicy | None = None,
        placement_policy: PlacementPolicy | None = None,
        topology: ClusterTopology | None = None,
        memo_policy: "MemoPolicy | None" = None,
        concurrency_policy: "ConcurrencyPolicy | None" = None,
        recovery_policy: "RecoveryPolicy | None" = None,
        overload_policy: "OverloadPolicy | None" = None,
        name: str = "cluster",
        shard_kwargs: dict | None = None,
    ) -> None:
        if shard_count < 1:
            raise CacheError(f"shard_count must be >= 1: {shard_count}")
        if (
            cluster_policy is not None
            and cluster_policy.share_memo
            and memo_policy is None
        ):
            raise CacheError(
                "cluster_policy.share_memo requires a memo_policy"
            )
        self.kernel = kernel
        self.ctx = kernel.ctx
        self.name = name
        self.cluster_policy = cluster_policy
        self.capacity_bytes = capacity_bytes
        self._memo_policy = memo_policy
        self._concurrency = concurrency_policy
        self._recovery_policy = recovery_policy
        self._shard_kwargs = dict(shard_kwargs or {})
        self._overload_policy = overload_policy
        #: Shard-health classification (``None`` without an overload
        #: policy): EWMA latency + error streaks per shard, fed from
        #: every shard's instrumentation bus.
        self.health: HealthTracker | None = None
        self._failed_over: set[str] = set()
        self._probes: dict[str, int] = {}
        self._hedge_wins: dict[str, int] = {}
        self._probe_queue: list[tuple[str, "DocumentReference"]] = []
        self._draining_probes = False
        if overload_policy is not None:
            self.health = HealthTracker(
                ewma_alpha=overload_policy.health_ewma_alpha,
                gray_latency_factor=overload_policy.gray_latency_factor,
                min_samples=overload_policy.health_min_samples,
                error_threshold=overload_policy.unhealthy_error_threshold,
                recovery_successes=overload_policy.recovery_successes,
            )
        self._next_index = 0
        names = [self._next_name() for _ in range(shard_count)]
        self._placement = placement_policy or HashRingPolicy(names)
        for shard_name in names:
            if shard_name not in self._placement.shards():
                self._placement.add_shard(shard_name)
        self.topology = topology or ClusterTopology(shards=list(names))
        for shard_name in names:
            if shard_name not in self.topology.shards:
                self.topology.add_shard(shard_name)
        self.topology.install(self.ctx.latency)
        self.bus = InvalidationBus(self.ctx)
        self.shared_memo: SharedTransformMemo | None = None
        self.shared_flights: FlightTable | None = None
        if cluster_policy is not None and cluster_policy.share_memo:
            assert memo_policy is not None
            capacity = (
                cluster_policy.shared_memo_capacity
                if cluster_policy.shared_memo_capacity is not None
                else memo_policy.capacity * shard_count
            )
            self.shared_memo = SharedTransformMemo(
                capacity, topology=self.topology
            )
        if cluster_policy is not None and cluster_policy.share_flights:
            self.shared_flights = FlightTable()
        self._shards: dict[str, DocumentCache] = {}
        for shard_name in names:
            self._build_shard(shard_name)
        #: Cluster-level invalidation bookkeeping (A17's fan-out metric).
        self.invalidations = 0
        self.invalidation_shard_touches = 0
        #: Entries repaired by every :meth:`rebalance` so far, including
        #: the passes :meth:`add_shard`/:meth:`lose_shard` run
        #: internally (A17's topology-churn metric).
        self.rebalance_repairs = 0

    # -- construction ---------------------------------------------------------

    def _next_name(self) -> str:
        shard_name = f"{self.name}-{self._next_index}"
        self._next_index += 1
        return shard_name

    def _build_shard(self, shard_name: str) -> DocumentCache:
        shard = DocumentCache(
            self.kernel,
            capacity_bytes=self.capacity_bytes,
            bus=self.bus,
            name=shard_name,
            memo_policy=self._memo_policy,
            concurrency_policy=self._concurrency,
            recovery_policy=self._recovery_policy,
            overload_policy=self._overload_policy,
            memo=self.shared_memo,
            flights=self.shared_flights,
            **self._shard_kwargs,
        )
        if self.shared_memo is not None:
            self.shared_memo.attach(shard_name, shard.core)
        if self.health is not None:
            self.health.track(shard_name)
            shard.instrumentation.subscribe(
                functools.partial(self.health.on_event, shard_name)
            )
        self._shards[shard_name] = shard
        return shard

    # -- introspection --------------------------------------------------------

    @property
    def shards(self) -> dict[str, DocumentCache]:
        """Live shards by name (insertion order)."""
        return dict(self._shards)

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_for(self, reference: "DocumentReference") -> DocumentCache:
        """The shard a reference's entry key currently places on."""
        return self._shards[
            self._placement.place(EntryKey.for_reference(reference))
        ]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards.values())

    def describe(self) -> str:
        """One line per shard plus the placement summary."""
        lines = [
            f"{self.name}: {len(self._shards)} shards, "
            f"{len(self)} entries, policy="
            f"{type(self._placement).__name__}"
        ]
        for shard_name, shard in self._shards.items():
            lines.append(
                f"  {shard_name}: {len(shard)} entries, "
                f"{shard.used_bytes}/{shard.capacity_bytes} bytes"
            )
        return "\n".join(lines)

    # -- aggregated statistics ------------------------------------------------

    @staticmethod
    def _sum_counters(total, parts) -> None:
        """Sum dataclass counter fields of *parts* into *total*."""
        for part in parts:
            for field in dataclasses.fields(part):
                setattr(
                    total, field.name,
                    getattr(total, field.name) + getattr(part, field.name),
                )

    def aggregate_stats(self) -> CacheStats:
        """Numeric cache counters summed across every live shard."""
        total = CacheStats()
        self._sum_counters(
            total, (shard.stats for shard in self._shards.values())
        )
        return total

    @property
    def hit_ratio(self) -> float:
        """Hits over reads, cluster-wide (0.0 when nothing was read)."""
        stats = self.aggregate_stats()
        reads = stats.hits + stats.misses
        return stats.hits / reads if reads else 0.0

    @property
    def memo_stats(self) -> MemoStats | None:
        """Memo counters summed across shards (``None`` without memo)."""
        per_shard = [
            shard.memo_stats
            for shard in self._shards.values()
            if shard.memo_stats is not None
        ]
        if not per_shard:
            return None
        total = MemoStats()
        self._sum_counters(total, per_shard)
        return total

    @property
    def concurrency_stats(self) -> "ConcurrencyStats | None":
        """Single-flight counters summed across shards."""
        per_shard = [
            shard.concurrency_stats
            for shard in self._shards.values()
            if shard.concurrency_stats is not None
        ]
        if not per_shard:
            return None
        total = type(per_shard[0])()
        self._sum_counters(total, per_shard)
        return total

    @property
    def overload_stats(self) -> OverloadStats | None:
        """Overload counters summed across shards (``None`` without an
        overload policy) — admission sheds, deadline outcomes, hedge
        launches/wins and health failovers/recoveries."""
        per_shard = [
            shard.overload_stats
            for shard in self._shards.values()
            if shard.overload_stats is not None
        ]
        if not per_shard:
            return None
        total = OverloadStats()
        self._sum_counters(total, per_shard)
        return total

    def health_snapshot(self) -> dict[str, dict[str, object]]:
        """Per-shard health table (empty without an overload policy)."""
        return self.health.snapshot() if self.health is not None else {}

    # -- read/write routing ---------------------------------------------------

    #: Every Nth read routed at a failed-over primary goes through as a
    #: canary, so ``recovery_successes`` clean responses can restore
    #: its placement stickiness (routing *everything* around a shard
    #: would starve the health tracker of recovery evidence).
    _PROBE_INTERVAL = 4

    def _route(self, reference: "DocumentReference") -> DocumentCache:
        key = EntryKey.for_reference(reference)
        self._placement.note_access(key)
        shard_name = self._placement.place(key)
        if self.health is not None:
            shard_name = self._failover(key, shard_name)
        return self._shards[shard_name]

    def _failover(self, key: EntryKey, primary: str) -> str:
        """Route around an unhealthy primary, probing for recovery."""
        health = self.health
        assert health is not None
        unhealthy = health.is_unhealthy(primary)
        if unhealthy and primary not in self._failed_over:
            self._failed_over.add(primary)
            self._shards[primary].core.emit(
                "health", "failover", shard=primary
            )
        elif not unhealthy and primary in self._failed_over:
            self._failed_over.discard(primary)
            self._probes.pop(primary, None)
            self._shards[primary].core.emit(
                "health", "recovered", shard=primary
            )
        if not unhealthy or len(self._shards) < 2:
            return primary
        count = self._probes.get(primary, 0) + 1
        self._probes[primary] = count
        if count % self._PROBE_INTERVAL == 0:
            return primary
        replica = self._replica_name(key, primary)
        return replica if replica is not None else primary

    def _replica_name(self, key: EntryKey, primary: str) -> str | None:
        """The backup shard for *key*: ring-adjacent when the policy
        can say (``replica_for``), else the first other live shard."""
        replica_for = getattr(self._placement, "replica_for", None)
        if replica_for is not None:
            replica = replica_for(key, primary)
            if replica is not None and replica in self._shards:
                return replica
            return None
        for shard_name in self._shards:
            if shard_name != primary:
                return shard_name
        return None

    # -- hedged reads ---------------------------------------------------------

    def _hedging_active(self) -> bool:
        policy = self._overload_policy
        return (
            policy is not None
            and policy.hedging_enabled
            and len(self._shards) >= 2
        )

    def _hedge_delay_ms(self, primary: str) -> float:
        """How long a miss may stall at the fetch seam before hedging.

        The healthy fleet's p95 read latency (excluding the primary),
        scaled by the policy's ``hedge_delay_factor`` and clamped to
        its [min, max] window; before the tracker has samples the max
        is used, so cold clusters hedge conservatively.
        """
        policy = self._overload_policy
        assert policy is not None and self.health is not None
        p95 = self.health.p95_healthy_ms(excluding=primary)
        base = p95 if p95 is not None else policy.hedge_delay_max_ms
        delay = base * policy.hedge_delay_factor
        return min(
            max(delay, policy.hedge_delay_min_ms), policy.hedge_delay_max_ms
        )

    def _hedged_generator(
        self,
        shard: DocumentCache,
        reference: "DocumentReference",
        *,
        scheduler,
        enqueued_ms: float | None = None,
    ):
        """The shard's pipeline generator, hedge-wrapped when warranted.

        A hedge is armed only when the health tracker classifies the
        primary as *gray* — hedging a healthy shard's misses would not
        just double load for nothing: in the synchronous simulator the
        backup always lands first, so the cancelled primary never fills
        and every future read of the key would miss-and-hedge forever.
        Gray-gated, fills land on the primary in the healthy steady
        state and only a genuinely slow shard's misses divert.

        The backup is a plain sequential read on the replica shard —
        its core scheduler cannot suspend, so it can never park on the
        flight the primary may be leading.  A backup win ``close()``\\ s
        the primary; its led flight fails over to follower promotion.
        """
        primary_name = shard.core.name
        primary = shard.iterate_read(
            reference, scheduler=scheduler, enqueued_ms=enqueued_ms
        )
        assert self.health is not None
        if not self.health.is_gray(primary_name):
            return primary
        backup_name = self._replica_name(
            EntryKey.for_reference(reference), primary_name
        )
        if backup_name is None:
            return primary
        backup = self._shards[backup_name]

        def note(outcome: str) -> None:
            shard.core.emit(
                "hedge", outcome, shard=primary_name, backup=backup_name
            )
            if outcome == "won":
                self._note_hedge_win(primary_name, reference)

        return hedged_iterate(
            primary,
            lambda: backup.read(reference),
            clock=self.ctx.clock,
            delay_ms=self._hedge_delay_ms(primary_name),
            on_outcome=note,
        )

    #: Every Nth hedge win against one shard queues a probe-refill
    #: (see :meth:`_drain_probes`).
    _HEDGE_PROBE_INTERVAL = 4

    def _note_hedge_win(
        self, primary_name: str, reference: "DocumentReference"
    ) -> None:
        """Queue an off-path probe-refill every Nth win against a shard."""
        count = self._hedge_wins.get(primary_name, 0) + 1
        self._hedge_wins[primary_name] = count
        if count % self._HEDGE_PROBE_INTERVAL == 0:
            self._probe_queue.append((primary_name, reference))

    def _drain_probes(self) -> None:
        """Run queued probe-refills against gray shards, off-path.

        A hedge win cancels the primary's fetch, which starves the
        health tracker of the fresh samples it needs to ever declare
        the shard healthy again — and leaves the primary unfilled, so
        the key keeps missing there.  The probe re-reads the cancelled
        reference directly on the primary *after* the user-facing
        outcome is computed (the drain-prefetch shape): its latency
        charges the shared virtual clock but no user read's
        ``elapsed_ms``, its terminal read event refreshes the shard's
        fetch EWMA, and its fill restores placement locality.  Probe
        failures (sheds, fetch errors) are swallowed — the error feed
        into the tracker is signal enough.
        """
        if self._draining_probes:
            return
        self._draining_probes = True
        try:
            while self._probe_queue:
                shard_name, reference = self._probe_queue.pop(0)
                shard = self._shards.get(shard_name)
                if shard is None:
                    continue
                try:
                    shard.read(reference)
                except CacheError:
                    pass
        finally:
            self._draining_probes = False

    def read(self, reference: "DocumentReference") -> CacheReadOutcome:
        """Read through the owning shard (hedged when the overload
        policy enables hedging and a replica shard exists)."""
        shard = self._route(reference)
        if not self._hedging_active():
            return shard.read(reference)
        scheduler = InlineScheduler()
        outcome = scheduler.drive(
            self._hedged_generator(shard, reference, scheduler=scheduler)
        )
        shard.drain_prefetch()
        self._drain_probes()
        return outcome

    def write(self, reference: "DocumentReference", content: bytes) -> float:
        """Write through the owning shard; returns elapsed virtual ms."""
        return self._route(reference).write(reference, content)

    def read_many(
        self,
        references: typing.Sequence["DocumentReference"],
        *,
        return_exceptions: bool = False,
    ) -> list[CacheReadOutcome]:
        """Read a batch across shards; outcomes in submission order.

        With a ``concurrency_policy`` the whole batch — regardless of
        how many shards it touches — runs on one deterministic
        :class:`~repro.sim.scheduler.AsyncScheduler`: each reference's
        pipeline generator comes from its owning shard via
        :meth:`~repro.cache.manager.DocumentCache.iterate_read`, and
        with shared flights a miss on shard A parks followers from
        shard B on the same leader.  Without one, the batch degenerates
        to sequential routed reads (the byte-equivalence baseline).

        With an ``overload_policy`` the batch mirrors
        :meth:`~repro.cache.manager.DocumentCache.read_many` exactly:
        every read shares the batch-start enqueue instant (sojourn and
        deadlines accrue while earlier reads hold the clock), each
        generator is hedge-wrapped when hedging is on, and shed /
        deadline-failed reads are *always* returned in-place as typed
        :class:`~repro.errors.OverloadShedError` /
        :class:`~repro.errors.DeadlineExceededError` entries,
        regardless of ``return_exceptions``.
        """
        overload = self._overload_policy
        if self._concurrency is None:
            if overload is None:
                # The historical sequential arm, byte-identical.
                if not return_exceptions:
                    return [self.read(reference) for reference in references]
                outcomes: list = []
                for reference in references:
                    try:
                        outcomes.append(self.read(reference))
                    except Exception as error:
                        outcomes.append(error)
                return outcomes
            enqueued_ms = self.ctx.clock.now_ms
            gated: list = []
            for reference in references:
                try:
                    gated.append(
                        self._read_budgeted(reference, enqueued_ms)
                    )
                except (OverloadShedError, DeadlineExceededError) as error:
                    gated.append(error)
                except Exception as error:
                    if not return_exceptions:
                        raise
                    gated.append(error)
            return gated
        scheduler = AsyncScheduler()
        hedging = self._hedging_active()
        enqueued_ms = self.ctx.clock.now_ms if overload is not None else None
        touched: dict[str, DocumentCache] = {}
        generators = []
        for reference in references:
            shard = self._route(reference)
            touched[shard.cache_id] = shard
            if hedging:
                generators.append(
                    self._hedged_generator(
                        shard,
                        reference,
                        scheduler=scheduler,
                        enqueued_ms=enqueued_ms,
                    )
                )
            else:
                generators.append(
                    shard.iterate_read(
                        reference,
                        scheduler=scheduler,
                        enqueued_ms=enqueued_ms,
                    )
                )
        results = scheduler.run(
            generators,
            return_exceptions=return_exceptions or overload is not None,
        )
        if overload is not None and not return_exceptions:
            for result in results:
                if isinstance(result, BaseException) and not isinstance(
                    result, (OverloadShedError, DeadlineExceededError)
                ):
                    raise result
        for shard in touched.values():
            shard.drain_prefetch()
        self._drain_probes()
        return results

    def _read_budgeted(
        self, reference: "DocumentReference", enqueued_ms: float
    ) -> CacheReadOutcome:
        """One routed read carrying the batch's enqueue instant."""
        shard = self._route(reference)
        if self._hedging_active():
            scheduler = InlineScheduler()
            outcome = scheduler.drive(
                self._hedged_generator(
                    shard,
                    reference,
                    scheduler=scheduler,
                    enqueued_ms=enqueued_ms,
                )
            )
        else:
            scheduler = shard.core.scheduler
            outcome = scheduler.drive(
                shard.iterate_read(
                    reference, scheduler=scheduler, enqueued_ms=enqueued_ms
                )
            )
        shard.drain_prefetch()
        self._drain_probes()
        return outcome

    def flush_all(self) -> int:
        """Flush buffered write-backs on every shard."""
        return sum(shard.flush_all() for shard in self._shards.values())

    # -- invalidation ---------------------------------------------------------

    def invalidate_document(
        self, document_id: "DocumentId", user_id: "UserId | None" = None
    ) -> int:
        """Drop a document's entries on every shard; returns the count.

        Explicit invalidation cannot trust placement — older entries
        may predate a rebalance — so it fans out to every shard.  The
        fan-out bookkeeping (how many shards actually held entries)
        feeds A17's invalidation fan-out metric.
        """
        dropped_total = 0
        shards_touched = 0
        for shard in self._shards.values():
            dropped = shard.invalidate_document(document_id, user_id)
            dropped_total += dropped
            if dropped:
                shards_touched += 1
        self.invalidations += 1
        self.invalidation_shard_touches += shards_touched
        return dropped_total

    def clear(self) -> None:
        """Drop every entry on every shard."""
        for shard in self._shards.values():
            shard.clear()

    # -- topology changes: rebalance-as-resync --------------------------------

    def _misplacement(
        self, shard_name: str
    ) -> "typing.Callable[[CacheEntry], InvalidationReason | None]":
        """Doom predicate: entries whose key no longer places here."""

        def doomed(entry: "CacheEntry") -> InvalidationReason | None:
            if self._placement.place(entry.key) != shard_name:
                return InvalidationReason.EXPLICIT
            return None

        return doomed

    def rebalance(self) -> int:
        """Anti-entropy resync of every shard against the current ring.

        Each shard's :class:`~repro.cache.recovery
        .ConsistencyRecoveryManager` runs its normal resync with a
        doom predicate condemning re-placed entries — the A13 repair
        path, reused verbatim for topology repair.  Returns total
        entries repaired (dropped) across the cluster.
        """
        repairs = 0
        for shard_name, shard in self._shards.items():
            if shard.recovery is None:
                raise CacheError(
                    "rebalance reuses anti-entropy resync: every shard "
                    "needs a recovery_policy"
                )
            repairs += shard.recovery.resync(
                doomed=self._misplacement(shard_name)
            )
        self.rebalance_repairs += repairs
        return repairs

    def add_shard(self) -> str:
        """Grow the cluster by one shard and rebalance onto it.

        Returns the new shard's name.  Consistent hashing moves only
        ≈ ``K / (N+1)`` keys; the survivors' re-placed entries are
        dropped through the reused resync, and — with cross-shard memo
        sharing — the new shard warms those keys as signature-only
        adoptions instead of cold chain executions.
        """
        shard_name = self._next_name()
        self._placement.add_shard(shard_name)
        self.topology.add_shard(shard_name)
        self._build_shard(shard_name)
        self.rebalance()
        return shard_name

    def lose_shard(self, shard_name: str) -> int:
        """Simulate one shard's failure; survivors repair via resync.

        The dead shard's volatile state vanishes (a crash), its bus
        registration and leases are torn down, and it leaves the ring
        — with the shared memo plane *detached first*, because the
        cluster-wide memo view outlives any one member (records whose
        bytes died with the shard self-heal at consult time).  The
        survivors then run the same rebalance-as-resync pass, after
        which the dead shard's keys place on them.  Returns the
        survivors' repair count.
        """
        try:
            shard = self._shards.pop(shard_name)
        except KeyError:
            raise CacheError(f"unknown shard: {shard_name!r}") from None
        self._placement.remove_shard(shard_name)
        self.topology.remove_shard(shard_name)
        if self.health is not None:
            self.health.forget(shard_name)
        self._failed_over.discard(shard_name)
        self._probes.pop(shard_name, None)
        self._hedge_wins.pop(shard_name, None)
        if self.shared_memo is not None:
            self.shared_memo.detach(shard_name)
            # The dead process's view dies with it; the shared plane
            # must not be purged by this one member's crash.
            shard.core.memo = None
        shard.crash()
        if shard.recovery is not None:
            shard.recovery.stop()
        self.bus.unregister(shard.cache_id)
        return self.rebalance()

    def crash_shard(self, shard_name: str) -> None:
        """Crash one shard *in place*: volatile state vanishes, but the
        shard keeps its ring position and bus registration for
        :meth:`restart_shard` to recover — the rolling-restart shape,
        as opposed to :meth:`lose_shard`'s permanent departure.
        """
        try:
            shard = self._shards[shard_name]
        except KeyError:
            raise CacheError(f"unknown shard: {shard_name!r}") from None
        shard.crash()

    def restart_shard(self, shard_name: str) -> int:
        """Restart a :meth:`crash_shard`-crashed shard in place.

        Replays its write-back journal, re-grants its lease and — when
        the shard has a durable L2 tier — recovers the demotion
        catalog, so the shard comes back warm instead of empty.
        Returns the replayed dirty-write count.
        """
        try:
            shard = self._shards[shard_name]
        except KeyError:
            raise CacheError(f"unknown shard: {shard_name!r}") from None
        return shard.restart()
